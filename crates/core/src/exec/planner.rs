//! Physical planning: logical plan → operator tree.
//!
//! This is where federation strategy is decided:
//!
//! * every `TableScan` becomes a [`FragmentExec`] scoped to what its
//!   source can run (predicates re-checked against the adapter's
//!   structural pushability),
//! * an `Aggregate` directly over a scan of a capable source becomes
//!   a [`RemoteAggExec`] — the whole aggregation runs remotely,
//! * an equi-join whose inner side is a remote scan picks among
//!   **ship-whole**, **semijoin** and **bind-join** by estimated
//!   virtual network time on the actual link conditions (the F1/F3
//!   crossover experiments sweep exactly this decision),
//! * `ORDER BY`/`LIMIT` directly over a fully-pushed scan ride along
//!   in the fragment when the source is capable.

use crate::cost::{estimate, Estimate};
use crate::exec::fragment::{
    build_fragment, build_lookup_fragment, key_export_ordinals, FragmentExec,
};
use crate::exec::options::{ExecOptions, JoinStrategy};
use crate::exec::physical::{BindJoinExec, PhysicalPlan, PhysicalSortKey, RemoteAggExec};
use crate::expr::ScalarExpr;
use crate::plan::logical::{LogicalPlan, TableScanNode};
use gis_adapters::{AggSpec, SortSpec, SourceGroup, SourceRequest};
use gis_catalog::Transform;
use gis_net::NetworkConditions;
use gis_sql::ast::JoinKind;
use gis_types::{GisError, Result};
use std::collections::HashMap;

/// Compiles an optimized logical plan into a physical plan.
pub fn create_physical_plan(
    plan: &LogicalPlan,
    sources: &HashMap<String, SourceGroup>,
    options: &ExecOptions,
) -> Result<PhysicalPlan> {
    let planner = Planner { sources, options };
    planner.create(plan)
}

struct Planner<'a> {
    sources: &'a HashMap<String, SourceGroup>,
    options: &'a ExecOptions,
}

impl Planner<'_> {
    fn remote(&self, source: &str) -> Result<&SourceGroup> {
        self.sources
            .get(&source.to_ascii_lowercase())
            .ok_or_else(|| {
                GisError::Internal(format!("no adapter registered for source '{source}'"))
            })
    }

    fn create(&self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        match plan {
            LogicalPlan::TableScan(t) => {
                let remote = self.remote(&t.resolved.source.name)?;
                Ok(PhysicalPlan::Fragment(build_fragment(t, remote)?))
            }
            LogicalPlan::Filter { input, predicate } => Ok(PhysicalPlan::Filter {
                input: Box::new(self.create(input)?),
                predicate: predicate.clone(),
            }),
            LogicalPlan::Projection {
                input,
                exprs,
                schema,
            } => Ok(PhysicalPlan::Project {
                input: Box::new(self.create(input)?),
                exprs: exprs.clone(),
                schema: schema.clone(),
            }),
            LogicalPlan::Join(j) => self.create_join(j),
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggregates,
                schema,
            } => {
                if self.options.aggregate_pushdown {
                    if let LogicalPlan::TableScan(t) = input.as_ref() {
                        if let Some(remote_agg) =
                            self.try_remote_aggregate(t, group_exprs, aggregates, schema)?
                        {
                            return Ok(PhysicalPlan::RemoteAggregate(remote_agg));
                        }
                    }
                }
                Ok(PhysicalPlan::HashAggregate {
                    input: Box::new(self.create(input)?),
                    group_exprs: group_exprs.clone(),
                    aggregates: aggregates.clone(),
                    schema: schema.clone(),
                })
            }
            LogicalPlan::Sort { input, keys } => {
                // Sort pushdown: Sort directly over a fully-pushed
                // scan of a sort-capable source rides in the fragment.
                if self.options.sort_pushdown {
                    if let LogicalPlan::TableScan(t) = input.as_ref() {
                        if let Some(frag) = self.try_pushed_sort(t, keys)? {
                            return Ok(PhysicalPlan::Fragment(frag));
                        }
                    }
                }
                Ok(PhysicalPlan::Sort {
                    input: Box::new(self.create(input)?),
                    keys: keys
                        .iter()
                        .map(|k| PhysicalSortKey {
                            expr: k.expr.clone(),
                            asc: k.asc,
                            nulls_first: k.nulls_first,
                        })
                        .collect(),
                })
            }
            LogicalPlan::Limit { input, skip, fetch } => {
                // Top-k pushdown: Limit(Sort(scan)) on a sort-capable
                // source ships only skip+fetch rows, pre-sorted.
                if self.options.sort_pushdown {
                    if let (
                        Some(f),
                        LogicalPlan::Sort {
                            input: sort_in,
                            keys,
                        },
                    ) = (fetch, input.as_ref())
                    {
                        if let LogicalPlan::TableScan(t) = sort_in.as_ref() {
                            let bound = f.saturating_add(*skip);
                            if let Some(frag) =
                                self.try_pushed_sort_with_limit(t, keys, Some(bound))?
                            {
                                return Ok(PhysicalPlan::Limit {
                                    input: Box::new(PhysicalPlan::Fragment(frag)),
                                    skip: *skip,
                                    fetch: *fetch,
                                });
                            }
                        }
                    }
                }
                Ok(PhysicalPlan::Limit {
                    input: Box::new(self.create(input)?),
                    skip: *skip,
                    fetch: *fetch,
                })
            }
            LogicalPlan::Union { inputs, schema } => Ok(PhysicalPlan::Union {
                inputs: inputs
                    .iter()
                    .map(|i| self.create(i))
                    .collect::<Result<_>>()?,
                schema: schema.clone(),
            }),
            LogicalPlan::Distinct { input } => Ok(PhysicalPlan::Distinct {
                input: Box::new(self.create(input)?),
            }),
            LogicalPlan::Values { schema, rows } => Ok(PhysicalPlan::Values {
                schema: schema.clone(),
                rows: rows.clone(),
            }),
            LogicalPlan::ViewScan {
                name,
                schema,
                batch,
            } => Ok(PhysicalPlan::ViewScan {
                name: name.clone(),
                schema: schema.clone(),
                batch: batch.clone(),
            }),
        }
    }

    fn create_join(&self, j: &crate::plan::logical::JoinNode) -> Result<PhysicalPlan> {
        let (left_keys, right_keys, residual) = j.equi_keys();
        // Co-located inner equi-join: both sides scan tables on the
        // same source, which can join natively — the whole join ships
        // as one fragment.
        if self.options.colocated_join && j.kind == JoinKind::Inner && !left_keys.is_empty() {
            if let (LogicalPlan::TableScan(l), LogicalPlan::TableScan(r)) =
                (j.left.as_ref(), j.right.as_ref())
            {
                if let Some(plan) =
                    self.try_colocated_join(j, l, r, &left_keys, &right_keys, residual.as_ref())?
                {
                    return Ok(plan);
                }
            }
        }
        // Candidate for a key-shipping strategy: equi-join whose
        // right side is a remote scan, with a kind where the right
        // side only needs matching rows.
        let bindable_kind = matches!(
            j.kind,
            JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti
        );
        if !left_keys.is_empty() && bindable_kind {
            if let LogicalPlan::TableScan(t) = j.right.as_ref() {
                if let Some(plan) =
                    self.try_key_shipping(j, t, &left_keys, &right_keys, residual.as_ref())?
                {
                    return Ok(plan);
                }
            }
        }
        let left = Box::new(self.create(&j.left)?);
        let right = Box::new(self.create(&j.right)?);
        if left_keys.is_empty() {
            return Ok(PhysicalPlan::NestedLoop {
                left,
                right,
                kind: j.kind,
                condition: j.on.clone(),
                schema: j.schema.clone(),
            });
        }
        Ok(PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind: j.kind,
            residual,
            schema: j.schema.clone(),
        })
    }

    /// Attempts to push the whole inner equi-join to the common
    /// source. `None` when the sources differ, the source cannot
    /// join, key transforms are not passthrough, or a scan carries a
    /// fetch limit (limit-then-join differs from join-then-limit).
    fn try_colocated_join(
        &self,
        j: &crate::plan::logical::JoinNode,
        left: &TableScanNode,
        right: &TableScanNode,
        left_keys: &[usize],
        right_keys: &[usize],
        on_residual: Option<&ScalarExpr>,
    ) -> Result<Option<PhysicalPlan>> {
        if left.resolved.source.name != right.resolved.source.name
            || !left.resolved.source.capabilities.join
            || left.fetch.is_some()
            || right.fetch.is_some()
        {
            return Ok(None);
        }
        let remote = self.remote(&left.resolved.source.name)?;
        // Cost gate: joining at the source ships the join *output*;
        // declining ships both (filtered, projected) inputs and joins
        // at the mediator. A fan-out join can make the output larger
        // than the inputs — measured in experiment F5 — so push only
        // when the estimate favors it.
        let out_est = estimate(&LogicalPlan::Join(j.clone()));
        let in_est = estimate(&j.left).total_bytes() + estimate(&j.right).total_bytes();
        if out_est.total_bytes() > in_est {
            return Ok(None);
        }
        // Key transforms must be passthrough so export-side equality
        // coincides with global equality.
        let passthrough = |scan: &TableScanNode, out_ord: usize| -> Option<usize> {
            let g = scan.output_ordinals()[out_ord];
            match scan.resolved.mapping.columns[g].transform {
                Transform::Identity | Transform::Cast(_) => Some(g),
                _ => None,
            }
        };
        let mut lk_export = Vec::with_capacity(left_keys.len());
        let mut rk_export = Vec::with_capacity(right_keys.len());
        for (&lo, &ro) in left_keys.iter().zip(right_keys) {
            let (Some(lg), Some(rg)) = (passthrough(left, lo), passthrough(right, ro)) else {
                return Ok(None);
            };
            lk_export.push(
                left.resolved
                    .table
                    .export_schema
                    .index_of(None, &left.resolved.mapping.columns[lg].source_column)?,
            );
            rk_export.push(
                right
                    .resolved
                    .table
                    .export_schema
                    .index_of(None, &right.resolved.mapping.columns[rg].source_column)?,
            );
        }
        // Per-side fragments give us the predicate split and fetch
        // sets; reuse the scan fragment builder.
        let lf = build_fragment(left, remote)?;
        let rf = build_fragment(right, remote)?;
        let (
            SourceRequest::Scan {
                predicates: lpreds, ..
            },
            SourceRequest::Scan {
                predicates: rpreds, ..
            },
        ) = (&lf.request, &rf.request)
        else {
            return Ok(None);
        };
        // Response layout: left fetched globals then right fetched
        // globals, each shipped 1:1 (duplicates allowed) so transforms
        // apply positionally.
        let side_projection = |scan: &TableScanNode, fetched: &[usize]| -> Result<Vec<usize>> {
            fetched
                .iter()
                .map(|&g| {
                    scan.resolved
                        .table
                        .export_schema
                        .index_of(None, &scan.resolved.mapping.columns[g].source_column)
                })
                .collect()
        };
        let left_projection = side_projection(left, &lf.fetched_global)?;
        let right_projection = side_projection(right, &rf.fetched_global)?;
        let request = SourceRequest::Join {
            left_table: left.resolved.mapping.source_table.clone(),
            right_table: right.resolved.mapping.source_table.clone(),
            left_keys: lk_export,
            right_keys: rk_export,
            left_predicates: lpreds.clone(),
            right_predicates: rpreds.clone(),
            left_projection,
            right_projection,
        };
        if request
            .check_capabilities(&left.resolved.source.capabilities)
            .is_err()
        {
            return Ok(None);
        }
        // Positional transform columns.
        let mut columns: Vec<gis_catalog::ColumnMapping> = lf
            .fetched_global
            .iter()
            .map(|&g| left.resolved.mapping.columns[g].clone())
            .collect();
        columns.extend(
            rf.fetched_global
                .iter()
                .map(|&g| right.resolved.mapping.columns[g].clone()),
        );
        // Residuals: per-side scan residuals are already remapped to
        // their fetched layouts; shift the right side. The ON
        // residual is over the logical combined schema (left output
        // ++ right output) and needs remapping to fetched positions.
        let left_width = lf.fetched_global.len();
        let mut residuals: Vec<ScalarExpr> = Vec::new();
        if let Some(rsd) = &lf.residual {
            residuals.push(rsd.clone());
        }
        if let Some(rsd) = &rf.residual {
            let map: HashMap<usize, usize> = (0..rf.fetched_global.len())
                .map(|i| (i, left_width + i))
                .collect();
            residuals.push(rsd.clone().remap_columns(&map)?);
        }
        if let Some(on) = on_residual {
            let left_out = left.output_ordinals();
            let right_out = right.output_ordinals();
            let mut map: HashMap<usize, usize> = HashMap::new();
            for (c, &g) in left_out.iter().enumerate() {
                let pos = lf
                    .fetched_global
                    .iter()
                    .position(|&f| f == g)
                    .expect("output is fetched");
                map.insert(c, pos);
            }
            for (c, &g) in right_out.iter().enumerate() {
                let pos = rf
                    .fetched_global
                    .iter()
                    .position(|&f| f == g)
                    .expect("output is fetched");
                map.insert(left_out.len() + c, left_width + pos);
            }
            residuals.push(on.clone().remap_columns(&map)?);
        }
        // Output positions: left scan output then right scan output.
        let mut output_positions: Vec<usize> = left
            .output_ordinals()
            .iter()
            .map(|g| {
                lf.fetched_global
                    .iter()
                    .position(|f| f == g)
                    .expect("output is fetched")
            })
            .collect();
        output_positions.extend(right.output_ordinals().iter().map(|g| {
            left_width
                + rf.fetched_global
                    .iter()
                    .position(|f| f == g)
                    .expect("output is fetched")
        }));
        Ok(Some(PhysicalPlan::RemoteJoin(
            crate::exec::physical::RemoteJoinExec {
                source: left.resolved.source.name.clone(),
                request,
                left_export: left.resolved.table.export_schema.clone(),
                right_export: right.resolved.table.export_schema.clone(),
                columns,
                residual: ScalarExpr::conjunction(residuals),
                output_positions,
                schema: j.schema.clone(),
            },
        )))
    }

    /// Attempts a semijoin / bind-join against the remote inner scan;
    /// `None` means ship-whole (plain hash join) wins or the strategy
    /// is inapplicable.
    fn try_key_shipping(
        &self,
        j: &crate::plan::logical::JoinNode,
        inner: &TableScanNode,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&ScalarExpr>,
    ) -> Result<Option<PhysicalPlan>> {
        let remote = self.remote(&inner.resolved.source.name)?;
        let caps = inner.resolved.source.capabilities;
        if !caps.bind_lookup {
            return Ok(None);
        }
        // The right-side key ordinals are over the scan's *output*;
        // convert to global ordinals of the table.
        let out_ords = inner.output_ordinals();
        let key_global: Vec<usize> = right_keys.iter().map(|&k| out_ords[k]).collect();
        // Key transforms must be invertible kinds.
        for &g in &key_global {
            match &inner.resolved.mapping.columns[g].transform {
                Transform::Identity | Transform::Cast(_) => {}
                _ => return Ok(None),
            }
        }
        // KV sources only serve lookups on a key prefix.
        let key_export = key_export_ordinals(
            &inner.resolved.mapping,
            &inner.resolved.table.export_schema,
            &key_global,
        )?;
        if inner.resolved.source.kind == "kv" {
            let is_prefix = key_export.iter().enumerate().all(|(i, &c)| c == i);
            if !is_prefix || key_export.is_empty() {
                return Ok(None);
            }
        }
        // Cost the strategies on the actual link conditions.
        let outer_est = estimate(&j.left);
        let inner_est = estimate(&j.right);
        let conditions = remote.best_conditions();
        let chosen = self.choose_strategy(&outer_est, &inner_est, left_keys.len(), conditions);
        let (batch_size, label) = match chosen {
            JoinStrategy::ShipWhole => return Ok(None),
            JoinStrategy::SemiJoin => (usize::MAX, "semijoin"),
            JoinStrategy::BindJoin => (self.options.bind_batch_size, "bind-join"),
            JoinStrategy::Auto => unreachable!("choose_strategy resolves Auto"),
        };
        let fragment = build_lookup_fragment(inner, &key_global)?;
        // Positions of key globals within the fetched layout.
        let inner_key_positions: Vec<usize> = key_global
            .iter()
            .map(|g| {
                fragment
                    .fetched_global
                    .iter()
                    .position(|f| f == g)
                    .expect("keys are fetched")
            })
            .collect();
        let outer_plan = self.create(&j.left)?;
        Ok(Some(PhysicalPlan::BindJoin(BindJoinExec {
            outer: Box::new(outer_plan),
            outer_keys: left_keys.to_vec(),
            inner: fragment,
            inner_key_positions,
            kind: j.kind,
            residual: residual.cloned(),
            batch_size,
            schema: j.schema.clone(),
            label,
            filter_capable: caps.filter_lookup,
            inner_rows_est: inner_est.rows.max(0.0) as u64,
            inner_row_bytes: inner_est.row_bytes.max(0.0) as u64,
        })))
    }

    /// Picks a strategy from estimates and link conditions (resolving
    /// `Auto` to a concrete choice).
    fn choose_strategy(
        &self,
        outer: &Estimate,
        inner: &Estimate,
        key_width: usize,
        conditions: NetworkConditions,
    ) -> JoinStrategy {
        match self.options.join_strategy {
            JoinStrategy::Auto => {}
            forced => return forced,
        }
        let chunk = self.options.chunk_rows.max(1) as f64;
        let key_bytes_per_row = 9.0 * key_width as f64;
        // Ship-whole: fetch the entire inner relation.
        let ship_msgs = 1.0 + (inner.rows / chunk).ceil();
        let ship_cost = virtual_cost(conditions, ship_msgs, inner.total_bytes());
        // Key shipping: distinct outer keys out, matching rows back.
        let keys = outer.rows;
        let matched = outer.rows.min(inner.rows);
        let fetch_bytes = keys * key_bytes_per_row + matched * inner.row_bytes;
        // Semijoin: one lookup message (plus response chunks).
        let semi_msgs = 1.0 + (matched / chunk).ceil();
        let semi_cost = virtual_cost(conditions, semi_msgs, fetch_bytes);
        // Bind-join: one message pair per key batch.
        let bind_batches = (keys / self.options.bind_batch_size.max(1) as f64)
            .ceil()
            .max(1.0);
        let bind_msgs = bind_batches + (matched / chunk).ceil().max(bind_batches);
        let bind_cost = virtual_cost(conditions, bind_msgs, fetch_bytes);
        let min = ship_cost.min(semi_cost).min(bind_cost);
        if min == ship_cost {
            JoinStrategy::ShipWhole
        } else if min == semi_cost {
            JoinStrategy::SemiJoin
        } else {
            JoinStrategy::BindJoin
        }
    }

    fn try_remote_aggregate(
        &self,
        scan: &TableScanNode,
        group_exprs: &[ScalarExpr],
        aggregates: &[crate::plan::logical::AggregateExpr],
        schema: &gis_types::SchemaRef,
    ) -> Result<Option<RemoteAggExec>> {
        let caps = scan.resolved.source.capabilities;
        if !caps.aggregate || scan.fetch.is_some() {
            return Ok(None);
        }
        let mapping = &scan.resolved.mapping;
        let export = &scan.resolved.table.export_schema;
        let out_ords = scan.output_ordinals();
        // Group keys and aggregate args must be bare columns with
        // passthrough transforms (Identity / lossless Cast).
        let passthrough = |g: usize| {
            matches!(
                mapping.columns[g].transform,
                Transform::Identity | Transform::Cast(_)
            )
        };
        let mut group_global = Vec::with_capacity(group_exprs.len());
        for g in group_exprs {
            let ScalarExpr::Column(c) = g else {
                return Ok(None);
            };
            let global = out_ords[*c];
            if !passthrough(global) {
                return Ok(None);
            }
            group_global.push(global);
        }
        let mut specs = Vec::with_capacity(aggregates.len());
        for a in aggregates {
            if a.distinct {
                return Ok(None);
            }
            let column = match &a.arg {
                None => None,
                Some(ScalarExpr::Column(c)) => {
                    let global = out_ords[*c];
                    if !matches!(mapping.columns[global].transform, Transform::Identity) {
                        return Ok(None);
                    }
                    Some(export.index_of(None, &mapping.columns[global].source_column)?)
                }
                Some(_) => return Ok(None),
            };
            specs.push(AggSpec {
                func: a.func,
                column,
            });
        }
        // Every scan filter must ship (no residual allowed — the
        // aggregate would otherwise see unfiltered rows).
        let remote = self.remote(&scan.resolved.source.name)?;
        let probe = build_fragment(scan, remote)?;
        let SourceRequest::Scan { predicates, .. } = &probe.request else {
            return Ok(None);
        };
        if probe.residual.is_some() {
            return Ok(None);
        }
        let group_by: Vec<usize> = group_global
            .iter()
            .map(|&g| export.index_of(None, &mapping.columns[g].source_column))
            .collect::<Result<_>>()?;
        let request = SourceRequest::Aggregate {
            table: mapping.source_table.clone(),
            predicates: predicates.clone(),
            group_by,
            aggregates: specs,
        };
        // Dry-run the capability check so planning errors early.
        if request.check_capabilities(&caps).is_err() {
            return Ok(None);
        }
        Ok(Some(RemoteAggExec {
            source: scan.resolved.source.name.clone(),
            request,
            export_schema: export.clone(),
            mapping: mapping.clone(),
            group_global,
            schema: schema.clone(),
        }))
    }

    /// Sort over a scan: push when the source sorts and nothing stays
    /// residual.
    fn try_pushed_sort(
        &self,
        scan: &TableScanNode,
        keys: &[crate::plan::logical::SortExpr],
    ) -> Result<Option<FragmentExec>> {
        self.try_pushed_sort_with_limit(scan, keys, None)
    }

    /// Like [`Planner::try_pushed_sort`], optionally installing a
    /// top-k row bound in the same request (the source sorts, then
    /// limits).
    fn try_pushed_sort_with_limit(
        &self,
        scan: &TableScanNode,
        keys: &[crate::plan::logical::SortExpr],
        top_k: Option<usize>,
    ) -> Result<Option<FragmentExec>> {
        let caps = scan.resolved.source.capabilities;
        if !caps.sort {
            return Ok(None);
        }
        // Keys must be bare output columns with monotonic transforms.
        let out_ords = scan.output_ordinals();
        let mut specs = Vec::with_capacity(keys.len());
        for k in keys {
            let ScalarExpr::Column(c) = &k.expr else {
                return Ok(None);
            };
            let global = out_ords[*c];
            if !scan.resolved.mapping.columns[global]
                .transform
                .is_monotonic()
            {
                return Ok(None);
            }
            specs.push(SortSpec {
                column: *c,
                asc: k.asc,
                nulls_first: k.nulls_first,
            });
        }
        let remote = self.remote(&scan.resolved.source.name)?;
        let mut fragment = build_fragment(scan, remote)?;
        if fragment.residual.is_some() {
            // Residual filtering would destroy the source order's
            // completeness guarantee with a fetch limit; keep simple:
            // only push sorts over fully-shipped scans.
            return Ok(None);
        }
        // The SortSpec ordinals refer to the request's output schema;
        // fragment output ordering equals scan output ordering only
        // when projection kept all key columns — they are output
        // columns by construction (bare Column over scan output).
        // However the *request* projection is in export order; map
        // output ordinal -> position in the request's response.
        let SourceRequest::Scan {
            table,
            predicates,
            projection,
            limit,
            ..
        } = &fragment.request
        else {
            return Ok(None);
        };
        let mapping = &scan.resolved.mapping;
        let export = &scan.resolved.table.export_schema;
        let mut remapped = Vec::with_capacity(specs.len());
        for s in &specs {
            let global = out_ords[s.column];
            let export_ord = export.index_of(None, &mapping.columns[global].source_column)?;
            let resp_pos = if projection.is_empty() {
                export_ord
            } else {
                match projection.iter().position(|&p| p == export_ord) {
                    Some(p) => p,
                    None => return Ok(None),
                }
            };
            remapped.push(SortSpec {
                column: resp_pos,
                ..*s
            });
        }
        let effective_limit = match (top_k, *limit) {
            (Some(k), Some(l)) => Some((k as u64).min(l)),
            (Some(k), None) => Some(k as u64),
            (None, l) => l,
        };
        if top_k.is_some() && !caps.limit {
            return Ok(None);
        }
        fragment.request = SourceRequest::Scan {
            table: table.clone(),
            predicates: predicates.clone(),
            projection: projection.clone(),
            sort: remapped,
            limit: effective_limit,
        };
        if fragment.request.check_capabilities(&caps).is_err() {
            return Ok(None);
        }
        Ok(Some(fragment))
    }
}

/// Virtual network time (µs) for `msgs` messages carrying `bytes`.
fn virtual_cost(conditions: NetworkConditions, msgs: f64, bytes: f64) -> f64 {
    let bw = conditions.bandwidth_bytes_per_sec;
    let transfer = if bw == 0 {
        0.0
    } else {
        bytes * 1e6 / bw as f64
    };
    msgs * conditions.latency_us as f64 + transfer
}
