//! The physical operator tree.

use crate::exec::aggregate::{distinct_kernel, hash_aggregate_kernel};
use crate::exec::fragment::FragmentExec;
use crate::exec::join::{hash_join_kernel, nested_loop_join};
use crate::exec::keys::{KernelGov, KernelOptions, MemScope};
use crate::expr::eval::{evaluate, evaluate_predicate};
use crate::expr::ScalarExpr;
use crate::metrics::{DegradedReport, DegradedSource};
use crate::plan::logical::AggregateExpr;
use gis_adapters::{is_availability_error, SourceGroup, SourceRequest};
use gis_catalog::TableMapping;
use gis_net::KeyBloom;
use gis_observe::Span;
use gis_sql::ast::JoinKind;
use gis_types::mem::{MemBudget, UNLIMITED};
use gis_types::{Batch, GisError, Result, Row, Schema, SchemaRef, SortKey, SortOrder, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Everything execution needs: the registry of metered source groups,
/// the execution options, and the runtime envelope (query id +
/// deadline), plus the collector for degraded-source reports when
/// `partial_results` is on.
pub struct ExecContext<'a> {
    sources: &'a HashMap<String, SourceGroup>,
    options: crate::exec::options::ExecOptions,
    query_id: u64,
    deadline: Option<std::time::Instant>,
    budget: &'a MemBudget,
    degraded: Mutex<Vec<DegradedSource>>,
}

impl<'a> ExecContext<'a> {
    /// A context over a source registry with default options.
    pub fn new(sources: &'a HashMap<String, SourceGroup>) -> Self {
        ExecContext::with_options(sources, crate::exec::options::ExecOptions::default())
    }

    /// A context with explicit options.
    pub fn with_options(
        sources: &'a HashMap<String, SourceGroup>,
        options: crate::exec::options::ExecOptions,
    ) -> Self {
        ExecContext {
            sources,
            options,
            query_id: 0,
            deadline: None,
            budget: &UNLIMITED,
            degraded: Mutex::new(Vec::new()),
        }
    }

    /// Tags the context with a runtime-assigned query id (threaded
    /// into [`crate::metrics::QueryMetrics`]).
    pub fn with_query_id(mut self, query_id: u64) -> Self {
        self.query_id = query_id;
        self
    }

    /// Sets a host-time deadline. Operators poll it between fragment
    /// fetches; an expired deadline cancels the query with
    /// [`GisError::Deadline`] instead of letting it keep shipping
    /// bytes from slow autonomous sources.
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Attaches the query's memory budget. Hash kernels and sort
    /// buffers account their allocations against it, degrade to
    /// spilled execution when the soft limit is hit, and cancel the
    /// query with [`GisError::ResourceExhausted`] past the hard
    /// limit. Defaults to the process-wide unlimited budget.
    pub fn with_budget(mut self, budget: &'a MemBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The query's memory budget.
    pub fn budget(&self) -> &'a MemBudget {
        self.budget
    }

    /// The kernel governor for this query: budget + deadline +
    /// query id, handed to every hash kernel so cancellation checks
    /// fire *inside* partitioned loops, not only between operators.
    pub fn kernel_gov(&self) -> KernelGov<'a> {
        KernelGov::new(self.budget, self.deadline, self.query_id)
    }

    /// The runtime-assigned query id (0 when ad-hoc).
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Errors with [`GisError::Deadline`] when past the deadline.
    pub fn check_deadline(&self) -> Result<()> {
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => Err(GisError::Deadline(format!(
                "query {} exceeded its deadline; fragment fetches cancelled",
                self.query_id
            ))),
            _ => Ok(()),
        }
    }

    /// The execution options.
    pub fn options(&self) -> &crate::exec::options::ExecOptions {
        &self.options
    }

    /// The query deadline, if any (threaded into fragment retries so
    /// an expired query stops burning round trips).
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// Looks up a source group by name.
    pub fn source(&self, name: &str) -> Result<&SourceGroup> {
        self.sources
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| GisError::Internal(format!("no adapter registered for source '{name}'")))
    }

    /// Records that `source` could not be reached and its fragments
    /// were answered with zero rows (partial-results mode). One entry
    /// per source, whichever fragment hit it first.
    pub fn record_degraded(&self, source: &str, error: &GisError) {
        let mut degraded = self.degraded.lock();
        if degraded.iter().all(|d| d.source != source) {
            degraded.push(DegradedSource {
                source: source.to_string(),
                error: error.to_string(),
            });
        }
    }

    /// The degraded-source report accumulated during execution, if
    /// any — sorted by source name for stable output.
    pub fn take_degraded(&self) -> Option<DegradedReport> {
        let mut missing = std::mem::take(&mut *self.degraded.lock());
        if missing.is_empty() {
            return None;
        }
        missing.sort_by(|a, b| a.source.cmp(&b.source));
        Some(DegradedReport { missing })
    }
}

/// Applies partial-results degradation to a remote operator's
/// outcome: an availability failure (every replica unreachable, or
/// fail-fast from an open breaker) becomes an empty batch plus a
/// degraded-source record — but only when the session opted in; any
/// other error propagates untouched.
fn degrade_on_unavailable(
    result: Result<(Batch, Option<Span>)>,
    ctx: &ExecContext<'_>,
    source: &str,
    schema: &SchemaRef,
    trace: bool,
) -> Result<(Batch, Option<Span>)> {
    match result {
        Err(e) if ctx.options().partial_results && is_availability_error(&e) => {
            ctx.record_degraded(source, &e);
            let span = trace.then(|| Span::leaf(format!("degraded[{source}]: {}", e.code())));
            Ok((Batch::empty(schema.clone()), span))
        }
        other => other,
    }
}

/// A pushed-down whole aggregation executed at the source.
#[derive(Debug, Clone)]
pub struct RemoteAggExec {
    /// Source name.
    pub source: String,
    /// The aggregate request.
    pub request: SourceRequest,
    /// Full export schema of the table.
    pub export_schema: SchemaRef,
    /// Export→global mapping (for group-column transforms).
    pub mapping: TableMapping,
    /// Global ordinals of the group columns, in request order.
    pub group_global: Vec<usize>,
    /// Output schema (matches the logical Aggregate node).
    pub schema: SchemaRef,
}

/// A co-located join evaluated entirely at one source: both tables
/// live there, only the joined (filtered, projected) result ships.
#[derive(Debug, Clone)]
pub struct RemoteJoinExec {
    /// Source name.
    pub source: String,
    /// The [`SourceRequest::Join`] shipped.
    pub request: SourceRequest,
    /// Full export schema of the left table.
    pub left_export: SchemaRef,
    /// Full export schema of the right table.
    pub right_export: SchemaRef,
    /// Positional mapping columns: `columns[i]` transforms response
    /// column `i` to its global form.
    pub columns: Vec<gis_catalog::ColumnMapping>,
    /// Mediator-side residual over the transformed response layout.
    pub residual: Option<ScalarExpr>,
    /// Positions into the transformed response forming the output.
    pub output_positions: Vec<usize>,
    /// Final output schema (the logical join's schema).
    pub schema: SchemaRef,
}

impl RemoteJoinExec {
    fn execute(&self, ctx: &ExecContext<'_>, trace: bool) -> Result<(Batch, Option<Span>)> {
        let started = trace.then(std::time::Instant::now);
        let remote = ctx.source(&self.source)?;
        let resp_schema = self
            .request
            .join_output_schema(&self.left_export, &self.right_export)?;
        let (raw, recv) = if trace {
            let (b, s) = remote.execute_all_traced(&self.request, resp_schema, ctx.deadline())?;
            (b, Some(s))
        } else {
            (
                remote.execute_all(&self.request, resp_schema, ctx.deadline())?,
                None,
            )
        };
        let rows_in = raw.num_rows() as u64;
        // Apply per-column transforms positionally.
        let mut cols = Vec::with_capacity(self.columns.len());
        let mut fields = Vec::with_capacity(self.columns.len());
        for (i, cm) in self.columns.iter().enumerate() {
            let transformed = cm.transform.apply_array(raw.column(i))?;
            cols.push(transformed.cast_to(cm.global.data_type)?);
            fields.push(cm.global.clone());
        }
        let mapped = Batch::try_new(Arc::new(Schema::new(fields)), cols)?;
        let filtered = match &self.residual {
            Some(pred) => {
                let keep = evaluate_predicate(pred, &mapped)?;
                mapped.filter(&keep)?
            }
            None => mapped,
        };
        let projected = filtered.project(&self.output_positions)?;
        let batch = Batch::try_new(self.schema.clone(), projected.columns().to_vec())?;
        let span = started.map(|t| {
            let mut s = Span::leaf(format!("RemoteJoin[{}]", self.source))
                .with_rows_in(rows_in)
                .with_rows_out(batch.num_rows() as u64)
                .with_wall_us(t.elapsed().as_micros() as u64);
            s.children.extend(recv);
            s
        });
        Ok((batch, span))
    }
}

/// A bind-join: outer rows' keys shipped to the inner source, which
/// returns only matching rows.
#[derive(Debug, Clone)]
pub struct BindJoinExec {
    /// Mediator-side (outer) input.
    pub outer: Box<PhysicalPlan>,
    /// Key ordinals in the outer output.
    pub outer_keys: Vec<usize>,
    /// The inner fragment (request field holds the Lookup template).
    pub inner: FragmentExec,
    /// Positions of the key columns within the inner fragment output.
    pub inner_key_positions: Vec<usize>,
    /// Join kind (Inner, Left, Semi or Anti).
    pub kind: JoinKind,
    /// Residual join condition over `outer ++ inner` layout.
    pub residual: Option<ScalarExpr>,
    /// Keys per Lookup message (`usize::MAX` = classic semijoin:
    /// one message with the whole distinct key set).
    pub batch_size: usize,
    /// Output schema.
    pub schema: SchemaRef,
    /// Strategy label for EXPLAIN (`semijoin` / `bind-join`).
    pub label: &'static str,
    /// The inner source can evaluate a shipped Bloom filter
    /// (capability `filter_lookup`), making the bloom-semijoin wire
    /// format an option on the classic-semijoin path.
    pub filter_capable: bool,
    /// Planner's estimate of the inner table's row count — prices the
    /// false-positive rows a Bloom filter would fetch back.
    pub inner_rows_est: u64,
    /// Planner's estimate of the inner table's wire bytes per row.
    pub inner_row_bytes: u64,
}

/// One resolved sort key.
#[derive(Debug, Clone)]
pub struct PhysicalSortKey {
    /// Key expression over the input.
    pub expr: ScalarExpr,
    /// Ascending?
    pub asc: bool,
    /// NULLs first?
    pub nulls_first: bool,
}

/// The physical plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Remote scan fragment.
    Fragment(FragmentExec),
    /// Remote aggregation fragment.
    RemoteAggregate(RemoteAggExec),
    /// Co-located join fragment.
    RemoteJoin(RemoteJoinExec),
    /// Mediator filter.
    Filter {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Predicate.
        predicate: ScalarExpr,
    },
    /// Mediator projection.
    Project {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Output expressions.
        exprs: Vec<ScalarExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Mediator hash join.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Probe key ordinals.
        left_keys: Vec<usize>,
        /// Build key ordinals.
        right_keys: Vec<usize>,
        /// Join kind.
        kind: JoinKind,
        /// Residual ON condition over `left ++ right`.
        residual: Option<ScalarExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Mediator nested-loop join (cross / non-equi).
    NestedLoop {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join kind.
        kind: JoinKind,
        /// Condition over `left ++ right`.
        condition: Option<ScalarExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Bind-join / semijoin reduction.
    BindJoin(BindJoinExec),
    /// Mediator hash aggregation.
    HashAggregate {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Group expressions.
        group_exprs: Vec<ScalarExpr>,
        /// Aggregates.
        aggregates: Vec<AggregateExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Mediator sort.
    Sort {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Keys.
        keys: Vec<PhysicalSortKey>,
    },
    /// Skip/fetch.
    Limit {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Rows to skip.
        skip: usize,
        /// Max rows.
        fetch: Option<usize>,
    },
    /// Bag union.
    Union {
        /// Inputs.
        inputs: Vec<PhysicalPlan>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input.
        input: Box<PhysicalPlan>,
    },
    /// Constant rows.
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// Rows.
        rows: Vec<Vec<Value>>,
    },
    /// Rows served from a mediator-side materialized view: zero wire
    /// traffic, zero source work.
    ViewScan {
        /// The view's name (shown as `view[name]` in span trees).
        name: String,
        /// Output schema (from the replaced logical subtree).
        schema: SchemaRef,
        /// The materialized rows.
        batch: Batch,
    },
}

impl PhysicalPlan {
    /// Output schema.
    pub fn schema(&self) -> &SchemaRef {
        match self {
            PhysicalPlan::Fragment(f) => &f.schema,
            PhysicalPlan::RemoteAggregate(r) => &r.schema,
            PhysicalPlan::RemoteJoin(r) => &r.schema,
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::Project { schema, .. } => schema,
            PhysicalPlan::HashJoin { schema, .. } => schema,
            PhysicalPlan::NestedLoop { schema, .. } => schema,
            PhysicalPlan::BindJoin(b) => &b.schema,
            PhysicalPlan::HashAggregate { schema, .. } => schema,
            PhysicalPlan::Sort { input, .. } => input.schema(),
            PhysicalPlan::Limit { input, .. } => input.schema(),
            PhysicalPlan::Union { schema, .. } => schema,
            PhysicalPlan::Distinct { input } => input.schema(),
            PhysicalPlan::Values { schema, .. } => schema,
            PhysicalPlan::ViewScan { schema, .. } => schema,
        }
    }

    /// Number of source fragments in the tree (shipped requests).
    pub fn fragment_count(&self) -> usize {
        let own = match self {
            PhysicalPlan::Fragment(_)
            | PhysicalPlan::RemoteAggregate(_)
            | PhysicalPlan::RemoteJoin(_) => 1,
            PhysicalPlan::BindJoin(_) => 1,
            _ => 0,
        };
        own + self
            .children()
            .iter()
            .map(|c| c.fragment_count())
            .sum::<usize>()
    }

    fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Fragment(_)
            | PhysicalPlan::RemoteAggregate(_)
            | PhysicalPlan::RemoteJoin(_)
            | PhysicalPlan::Values { .. }
            | PhysicalPlan::ViewScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoop { left, right, .. } => vec![left, right],
            PhysicalPlan::BindJoin(b) => vec![&b.outer],
            PhysicalPlan::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Executes the plan to a single batch.
    pub fn execute(&self, ctx: &ExecContext<'_>) -> Result<Batch> {
        Ok(self.execute_traced(ctx)?.0)
    }

    /// Executes the plan, additionally producing a per-operator
    /// [`Span`] tree when `ctx.options().tracing` is on. Every node
    /// records rows in/out and wall time; remote exchanges add bytes
    /// and messages plus the span the *source itself* reported over
    /// the wire — the mediator stitches, it never guesses.
    pub fn execute_traced(&self, ctx: &ExecContext<'_>) -> Result<(Batch, Option<Span>)> {
        // One choke point cancels the whole tree: every operator
        // (including each fragment fetch and bind-join batch, which
        // recurse through here) re-checks the deadline on entry.
        ctx.check_deadline()?;
        let trace = ctx.options.tracing;
        // Remote operators build their own spans: they know the wire
        // bytes and carry the source-reported subtree.
        match self {
            PhysicalPlan::Fragment(f) => {
                let result = f.execute_traced(ctx.source(&f.source)?, trace, ctx.deadline());
                return degrade_on_unavailable(result, ctx, &f.source, &f.schema, trace);
            }
            PhysicalPlan::RemoteAggregate(r) => {
                let result = execute_remote_agg(r, ctx, trace);
                return degrade_on_unavailable(result, ctx, &r.source, &r.schema, trace);
            }
            PhysicalPlan::RemoteJoin(r) => {
                let result = r.execute(ctx, trace);
                return degrade_on_unavailable(result, ctx, &r.source, &r.schema, trace);
            }
            // Bind joins degrade *inside* the operator (at the lookup
            // loop) so a left join keeps its reachable outer rows.
            PhysicalPlan::BindJoin(b) => return execute_bind_join(b, ctx, trace),
            _ => {}
        }
        // Mediator operators share the generic wrap-up below: run the
        // children (collecting their spans and row counts), produce
        // the output, then stamp one span for this node.
        let started = trace.then(std::time::Instant::now);
        let mut children: Vec<Span> = Vec::new();
        let mut rows_in: u64 = 0;
        let batch = match self {
            PhysicalPlan::Fragment(_)
            | PhysicalPlan::RemoteAggregate(_)
            | PhysicalPlan::RemoteJoin(_)
            | PhysicalPlan::BindJoin(_) => unreachable!("remote operators returned above"),
            PhysicalPlan::Filter { input, predicate } => {
                let batch = run_child(input, ctx, &mut children, &mut rows_in)?;
                let keep = evaluate_predicate(predicate, &batch)?;
                batch.filter(&keep)?
            }
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let batch = run_child(input, ctx, &mut children, &mut rows_in)?;
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, f) in exprs.iter().zip(schema.fields()) {
                    let col = evaluate(e, &batch)?;
                    columns.push(col.cast_to(f.data_type)?);
                }
                Batch::try_new(schema.clone(), columns)?
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                residual,
                schema,
            } => {
                let ((l, ls), (r, rs)) = execute_pair(left, right, ctx)?;
                rows_in += (l.num_rows() + r.num_rows()) as u64;
                children.extend(ls);
                children.extend(rs);
                let (batch, kstats) = hash_join_kernel(
                    &l,
                    &r,
                    left_keys,
                    right_keys,
                    *kind,
                    residual.as_ref(),
                    schema.clone(),
                    &KernelOptions::from_exec(&ctx.options),
                    &ctx.kernel_gov(),
                )?;
                if trace {
                    children.push(kstats.to_span());
                    children.extend(kstats.governor_spans());
                }
                batch
            }
            PhysicalPlan::NestedLoop {
                left,
                right,
                kind,
                condition,
                schema,
            } => {
                let ((l, ls), (r, rs)) = execute_pair(left, right, ctx)?;
                rows_in += (l.num_rows() + r.num_rows()) as u64;
                children.extend(ls);
                children.extend(rs);
                nested_loop_join(&l, &r, *kind, condition.as_ref(), schema.clone())?
            }
            PhysicalPlan::HashAggregate {
                input,
                group_exprs,
                aggregates,
                schema,
            } => {
                let batch = run_child(input, ctx, &mut children, &mut rows_in)?;
                let (out, kstats) = hash_aggregate_kernel(
                    &batch,
                    group_exprs,
                    aggregates,
                    schema.clone(),
                    &KernelOptions::from_exec(&ctx.options),
                    &ctx.kernel_gov(),
                )?;
                if trace {
                    children.push(kstats.to_span());
                    children.extend(kstats.governor_spans());
                }
                out
            }
            PhysicalPlan::Sort { input, keys } => {
                let batch = run_child(input, ctx, &mut children, &mut rows_in)?;
                sort_batch(&batch, keys, &ctx.kernel_gov())?
            }
            PhysicalPlan::Limit { input, skip, fetch } => {
                let batch = run_child(input, ctx, &mut children, &mut rows_in)?;
                let start = (*skip).min(batch.num_rows());
                let len = fetch.unwrap_or(usize::MAX);
                batch.slice(start, len)
            }
            PhysicalPlan::Union { inputs, schema } => {
                let raw: Vec<Batch> = if ctx.options.parallel_fetch && inputs.len() > 1 {
                    let parts = execute_all_parallel(inputs, ctx)?;
                    let mut raw = Vec::with_capacity(parts.len());
                    for (b, s) in parts {
                        rows_in += b.num_rows() as u64;
                        children.extend(s);
                        raw.push(b);
                    }
                    raw
                } else {
                    inputs
                        .iter()
                        .map(|i| run_child(i, ctx, &mut children, &mut rows_in))
                        .collect::<Result<_>>()?
                };
                // Re-install the union schema (names may differ).
                let parts: Vec<Batch> = raw
                    .into_iter()
                    .map(|b| Batch::try_new(schema.clone(), b.columns().to_vec()))
                    .collect::<Result<_>>()?;
                Batch::concat(schema.clone(), &parts)?
            }
            PhysicalPlan::Distinct { input } => {
                let batch = run_child(input, ctx, &mut children, &mut rows_in)?;
                let (out, kstats) = distinct_kernel(
                    &batch,
                    &KernelOptions::from_exec(&ctx.options),
                    &ctx.kernel_gov(),
                )?;
                if trace {
                    children.push(kstats.to_span());
                    children.extend(kstats.governor_spans());
                }
                out
            }
            PhysicalPlan::Values { schema, rows } => {
                if schema.is_empty() {
                    // Zero-column relations still carry a row count
                    // (`SELECT 1` evaluates over one empty row).
                    Batch::placeholder(rows.len())
                } else {
                    Batch::from_rows(schema.clone(), rows)?
                }
            }
            // The rows live at the mediator; re-stamp them with the
            // consumer-side schema (names positionally match).
            PhysicalPlan::ViewScan { schema, batch, .. } => {
                Batch::try_new(schema.clone(), batch.columns().to_vec())?
            }
        };
        let span = started.map(|t| {
            let mut s = Span::leaf(self.span_label())
                .with_rows_in(rows_in)
                .with_rows_out(batch.num_rows() as u64)
                .with_wall_us(t.elapsed().as_micros() as u64);
            s.children = children;
            s
        });
        Ok((batch, span))
    }

    /// One-line operator label used for span trees; matches the
    /// head line `EXPLAIN` renders for the same node.
    fn span_label(&self) -> String {
        match self {
            PhysicalPlan::Fragment(f) => format!("Fragment[{}]", f.source),
            PhysicalPlan::RemoteAggregate(r) => format!("RemoteAggregate[{}]", r.source),
            PhysicalPlan::RemoteJoin(r) => format!("RemoteJoin[{}]", r.source),
            PhysicalPlan::BindJoin(b) => {
                format!("BindJoin[{}→{} {}]", b.label, b.inner.source, b.kind)
            }
            PhysicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            PhysicalPlan::Project { exprs, .. } => {
                let items: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Project: {}", items.join(", "))
            }
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                kind,
                ..
            } => format!("HashJoin[{kind}]: left{left_keys:?} = right{right_keys:?}"),
            PhysicalPlan::NestedLoop { kind, .. } => format!("NestedLoop[{kind}]"),
            PhysicalPlan::HashAggregate {
                group_exprs,
                aggregates,
                ..
            } => {
                let gs: Vec<String> = group_exprs.iter().map(|g| g.to_string()).collect();
                let asx: Vec<String> = aggregates.iter().map(|a| a.display_name()).collect();
                format!(
                    "HashAggregate: group=[{}] aggs=[{}]",
                    gs.join(", "),
                    asx.join(", ")
                )
            }
            PhysicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.expr, if k.asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort: {}", ks.join(", "))
            }
            PhysicalPlan::Limit { skip, fetch, .. } => {
                format!("Limit: skip={skip} fetch={fetch:?}")
            }
            PhysicalPlan::Union { .. } => "UnionAll".into(),
            PhysicalPlan::Distinct { .. } => "Distinct".into(),
            PhysicalPlan::Values { rows, .. } => format!("Values: {} row(s)", rows.len()),
            PhysicalPlan::ViewScan { name, .. } => format!("view[{name}]"),
        }
    }

    /// Renders the physical tree for `EXPLAIN`.
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::Fragment(f) => {
                let _ = writeln!(
                    out,
                    "{pad}Fragment[{}]: {:?} residual={}",
                    f.source,
                    request_summary(&f.request),
                    f.residual
                        .as_ref()
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "none".into()),
                );
            }
            PhysicalPlan::RemoteAggregate(r) => {
                let _ = writeln!(
                    out,
                    "{pad}RemoteAggregate[{}]: {:?}",
                    r.source,
                    request_summary(&r.request)
                );
            }
            PhysicalPlan::RemoteJoin(r) => {
                let _ = writeln!(
                    out,
                    "{pad}RemoteJoin[{}]: {:?}",
                    r.source,
                    request_summary(&r.request)
                );
            }
            PhysicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter: {predicate}");
                input.render(depth + 1, out);
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let items: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                let _ = writeln!(out, "{pad}Project: {}", items.join(", "));
                input.render(depth + 1, out);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin[{kind}]: left{left_keys:?} = right{right_keys:?}"
                );
                left.render(depth + 1, out);
                right.render(depth + 1, out);
            }
            PhysicalPlan::NestedLoop {
                left, right, kind, ..
            } => {
                let _ = writeln!(out, "{pad}NestedLoop[{kind}]");
                left.render(depth + 1, out);
                right.render(depth + 1, out);
            }
            PhysicalPlan::BindJoin(b) => {
                let _ = writeln!(
                    out,
                    "{pad}BindJoin[{}→{} {}]: outer{:?}, batch={}",
                    b.label,
                    b.inner.source,
                    b.kind,
                    b.outer_keys,
                    if b.batch_size == usize::MAX {
                        "all".to_string()
                    } else {
                        b.batch_size.to_string()
                    }
                );
                b.outer.render(depth + 1, out);
            }
            PhysicalPlan::HashAggregate {
                input,
                group_exprs,
                aggregates,
                ..
            } => {
                let gs: Vec<String> = group_exprs.iter().map(|g| g.to_string()).collect();
                let asx: Vec<String> = aggregates.iter().map(|a| a.display_name()).collect();
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate: group=[{}] aggs=[{}]",
                    gs.join(", "),
                    asx.join(", ")
                );
                input.render(depth + 1, out);
            }
            PhysicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.expr, if k.asc { "ASC" } else { "DESC" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort: {}", ks.join(", "));
                input.render(depth + 1, out);
            }
            PhysicalPlan::Limit { input, skip, fetch } => {
                let _ = writeln!(out, "{pad}Limit: skip={skip} fetch={fetch:?}");
                input.render(depth + 1, out);
            }
            PhysicalPlan::Union { inputs, .. } => {
                let _ = writeln!(out, "{pad}UnionAll");
                for i in inputs {
                    i.render(depth + 1, out);
                }
            }
            PhysicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.render(depth + 1, out);
            }
            PhysicalPlan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values: {} row(s)", rows.len());
            }
            PhysicalPlan::ViewScan { name, batch, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}view[{name}]: {} materialized row(s)",
                    batch.num_rows()
                );
            }
        }
    }
}

/// Executes one child, folding its span and row count into the
/// parent's accumulators.
fn run_child(
    child: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    children: &mut Vec<Span>,
    rows_in: &mut u64,
) -> Result<Batch> {
    let (batch, span) = child.execute_traced(ctx)?;
    *rows_in += batch.num_rows() as u64;
    children.extend(span);
    Ok(batch)
}

/// Executes two subplans, concurrently when `parallel_fetch` is on.
type TracedBatch = (Batch, Option<Span>);

fn execute_pair(
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    ctx: &ExecContext<'_>,
) -> Result<(TracedBatch, TracedBatch)> {
    if !ctx.options.parallel_fetch {
        return Ok((left.execute_traced(ctx)?, right.execute_traced(ctx)?));
    }
    crossbeam::thread::scope(|s| {
        let lh = s.spawn(|_| left.execute_traced(ctx));
        let r = right.execute_traced(ctx);
        let l = lh.join().expect("left executor thread panicked");
        Ok((l?, r?))
    })
    .expect("crossbeam scope")
}

/// Executes many subplans on one thread each.
fn execute_all_parallel(plans: &[PhysicalPlan], ctx: &ExecContext<'_>) -> Result<Vec<TracedBatch>> {
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .map(|p| s.spawn(move |_| p.execute_traced(ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor thread panicked"))
            .collect::<Result<Vec<_>>>()
    })
    .expect("crossbeam scope")
}

fn request_summary(req: &SourceRequest) -> String {
    match req {
        SourceRequest::Scan {
            table,
            predicates,
            projection,
            sort,
            limit,
        } => format!(
            "scan {table} preds={} proj={} sort={} limit={limit:?}",
            predicates.len(),
            projection.len(),
            sort.len()
        ),
        SourceRequest::Aggregate {
            table,
            group_by,
            aggregates,
            ..
        } => format!(
            "agg {table} groups={} aggs={}",
            group_by.len(),
            aggregates.len()
        ),
        SourceRequest::Lookup {
            table,
            key_columns,
            keys,
            ..
        } => format!("lookup {table} keycols={key_columns:?} keys={}", keys.len()),
        SourceRequest::LookupFilter {
            table,
            key_columns,
            bloom,
            ..
        } => format!(
            "filter {table} keycols={key_columns:?} bloom={}B",
            bloom.size_bytes()
        ),
        SourceRequest::Join {
            left_table,
            right_table,
            left_keys,
            right_keys,
            left_predicates,
            right_predicates,
            ..
        } => format!(
            "join {left_table}{left_keys:?} = {right_table}{right_keys:?} preds={}+{}",
            left_predicates.len(),
            right_predicates.len()
        ),
    }
}

/// Estimated ORDER BY working set: one evaluated key cell per
/// (row, key) plus the 8-byte index vector the sort permutes.
const SORT_KEY_COST: u64 = 16;

fn sort_batch(batch: &Batch, keys: &[PhysicalSortKey], gov: &KernelGov<'_>) -> Result<Batch> {
    // The sort buffer (key batch + index vector) is a required
    // allocation: sorts don't spill, so a budget past its hard limit
    // cancels the query here rather than between operators.
    gov.checkpoint()?;
    let mem = MemScope::new(*gov);
    let n = batch.num_rows() as u64;
    mem.reserve_required(
        n * (keys.len() as u64 * SORT_KEY_COST + 8),
        "order-by sort buffer",
    )?;
    // Evaluate key expressions into a key-only batch, sort its row
    // indices, and gather.
    let mut key_cols = Vec::with_capacity(keys.len());
    let mut key_fields = Vec::with_capacity(keys.len());
    for (i, k) in keys.iter().enumerate() {
        let col = evaluate(&k.expr, batch)?;
        key_fields.push(gis_types::Field::new(format!("k{i}"), col.data_type()));
        key_cols.push(col);
    }
    let key_batch = Batch::try_new(Arc::new(Schema::new(key_fields)), key_cols)?;
    let sort_keys: Vec<SortKey> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| SortKey {
            column: i,
            order: if k.asc {
                SortOrder::Ascending
            } else {
                SortOrder::Descending
            },
            nulls_first: k.nulls_first,
        })
        .collect();
    let idx = gis_types::ordering::sorted_indices(&key_batch, &sort_keys);
    Ok(batch.take(&idx))
}

fn execute_remote_agg(
    r: &RemoteAggExec,
    ctx: &ExecContext<'_>,
    trace: bool,
) -> Result<(Batch, Option<Span>)> {
    let started = trace.then(std::time::Instant::now);
    let remote = ctx.source(&r.source)?;
    let resp_schema = r.request.output_schema(&r.export_schema)?;
    let (raw, recv) = if trace {
        let (b, s) = remote.execute_all_traced(&r.request, resp_schema, ctx.deadline())?;
        (b, Some(s))
    } else {
        (
            remote.execute_all(&r.request, resp_schema, ctx.deadline())?,
            None,
        )
    };
    // Group columns go through their mapping transforms; aggregate
    // outputs are cast to the declared output types.
    let mut columns = Vec::with_capacity(r.schema.len());
    for (i, field) in r.schema.fields().iter().enumerate() {
        let col = if i < r.group_global.len() {
            let cm = &r.mapping.columns[r.group_global[i]];
            cm.transform.apply_array(raw.column(i))?
        } else {
            raw.column(i).clone()
        };
        columns.push(col.cast_to(field.data_type)?);
    }
    let batch = Batch::try_new(r.schema.clone(), columns)?;
    let span = started.map(|t| {
        let mut s = Span::leaf(format!("RemoteAggregate[{}]", r.source))
            .with_rows_in(raw.num_rows() as u64)
            .with_rows_out(batch.num_rows() as u64)
            .with_wall_us(t.elapsed().as_micros() as u64);
        s.children.extend(recv);
        s
    });
    Ok((batch, span))
}

fn execute_bind_join(
    b: &BindJoinExec,
    ctx: &ExecContext<'_>,
    trace: bool,
) -> Result<(Batch, Option<Span>)> {
    let started = trace.then(std::time::Instant::now);
    let mut children: Vec<Span> = Vec::new();
    let (outer, outer_span) = b.outer.execute_traced(ctx)?;
    children.extend(outer_span);
    let remote = ctx.source(&b.inner.source)?;
    // Distinct non-null outer key tuples, inverted to export values.
    let SourceRequest::Lookup {
        table,
        key_columns,
        projection,
        ..
    } = &b.inner.request
    else {
        return Err(GisError::Internal(
            "bind join inner request must be a Lookup".into(),
        ));
    };
    // Bind joins push one receive span per key batch; a pathological
    // outer (millions of distinct keys at batch_size=1) must not turn
    // the trace itself into a memory hog. Spans past the cap are
    // dropped and summarized in one overflow leaf.
    const BIND_RECV_SPAN_CAP: usize = 64;
    let mut recv_spans: usize = 0;
    let mut recv_dropped: u64 = 0;
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    let mut export_keys: Vec<Vec<Value>> = Vec::new();
    for row in 0..outer.num_rows() {
        let key = Row::new(&outer, row).key(&b.outer_keys);
        if key.iter().any(Value::is_null) || !seen.insert(key.clone()) {
            continue;
        }
        // Invert each component through the mapping transform of the
        // inner key column; a non-invertible value matches nothing.
        let mut export_key = Vec::with_capacity(key.len());
        let mut ok = true;
        for (component, &kexp) in key.iter().zip(key_columns.iter()) {
            let export_type = b.inner.export_schema.field(kexp).data_type;
            // Find the mapping column feeding from this export col
            // among fetched key positions: use the global ordinal the
            // planner stored via inner_key_positions/fetched_global.
            let g = b.inner.fetched_global[b
                .inner_key_positions
                .get(export_key.len())
                .copied()
                .unwrap_or(0)];
            let cm = &b.inner.mapping.columns[g];
            match cm.transform.invert_literal(component, export_type) {
                Some(v) => export_key.push(v),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            export_keys.push(export_key);
        }
    }
    // A sorted, deduplicated key list is cheaper on the wire — the
    // request codec delta-compresses sorted integer key columns, and
    // distinct pre-image keys can invert to one export value, so
    // duplicates may exist here. Join results don't depend on order.
    export_keys.sort();
    export_keys.dedup();
    // Ship keys in batches, collect matching inner rows.
    let resp_schema = b.inner.request.output_schema(&b.inner.export_schema)?;
    let mut inner_rows: u64 = 0;
    let mut inner_parts: Vec<Batch> = Vec::new();
    // The classic-semijoin path (whole key set in one message) may
    // ship a Bloom filter of the keys instead of the keys themselves,
    // when the source can evaluate one and the filter plus its
    // expected false-positive rows prices below the explicit list.
    // False positives come back as extra inner rows and are dropped
    // by the mediator hash join below — both modes return identical
    // rows, only the bytes differ.
    const BLOOM_FPP: f64 = 0.01;
    let mut keyship = format!("keyship[mode=keys n={}]", export_keys.len());
    let mut requests: Vec<SourceRequest> = Vec::new();
    if b.batch_size == usize::MAX
        && ctx.options().bloom_semijoin
        && b.filter_capable
        && !export_keys.is_empty()
    {
        let key_list_bytes: usize = export_keys
            .iter()
            .map(|k| gis_net::wire::encode_values(k).len())
            .sum();
        let bloom_bytes = KeyBloom::predicted_bytes(export_keys.len(), BLOOM_FPP);
        let fp_bytes =
            (BLOOM_FPP * b.inner_rows_est as f64 * b.inner_row_bytes as f64).ceil() as usize;
        if bloom_bytes.saturating_add(fp_bytes) < key_list_bytes {
            let mut bloom = KeyBloom::sized_for(export_keys.len(), BLOOM_FPP);
            for key in &export_keys {
                bloom.insert(KeyBloom::hash_key(key));
            }
            keyship = format!(
                "keyship[mode=bloom n={} filter={}B keys={}B]",
                export_keys.len(),
                bloom.size_bytes(),
                key_list_bytes
            );
            requests.push(SourceRequest::LookupFilter {
                table: table.clone(),
                key_columns: key_columns.clone(),
                bloom,
                projection: projection.clone(),
            });
        }
    }
    if requests.is_empty() {
        let chunk = b.batch_size.max(1);
        let mut idx = 0;
        while idx < export_keys.len() {
            let end = export_keys.len().min(idx.saturating_add(chunk));
            requests.push(SourceRequest::Lookup {
                table: table.clone(),
                key_columns: key_columns.clone(),
                keys: export_keys[idx..end].to_vec(),
                projection: projection.clone(),
            });
            idx = end;
        }
    }
    if trace {
        children.push(Span::leaf(keyship));
    }
    for request in requests {
        // A bind join is the longest-running fragment shape (one
        // round trip per key batch) — poll the deadline per batch.
        ctx.check_deadline()?;
        let fetched = if trace {
            remote
                .execute_all_traced(&request, resp_schema.clone(), ctx.deadline())
                .map(|(raw, recv)| {
                    if recv_spans < BIND_RECV_SPAN_CAP {
                        recv_spans += 1;
                        children.push(recv);
                    } else {
                        recv_dropped += 1;
                    }
                    raw
                })
        } else {
            remote.execute_all(&request, resp_schema.clone(), ctx.deadline())
        };
        let raw = match fetched {
            Ok(raw) => raw,
            // Partial results: the inner source (every replica) is
            // unreachable — stop looking up, join against what we
            // have, and report the source as missing. Left joins keep
            // their outer rows this way.
            Err(e) if ctx.options().partial_results && is_availability_error(&e) => {
                ctx.record_degraded(&b.inner.source, &e);
                if trace {
                    children.push(Span::leaf(format!(
                        "degraded[{}]: {}",
                        b.inner.source,
                        e.code()
                    )));
                }
                break;
            }
            Err(e) => return Err(e),
        };
        inner_rows += raw.num_rows() as u64;
        let mapped = b.inner.map_response(&raw)?;
        let filtered = match &b.inner.residual {
            Some(pred) => {
                let keep = evaluate_predicate(pred, &mapped)?;
                mapped.filter(&keep)?
            }
            None => mapped,
        };
        inner_parts.push(filtered.project(&b.inner.output_positions)?);
    }
    if recv_dropped > 0 {
        children.push(Span::leaf(format!(
            "recv-overflow: capacity={BIND_RECV_SPAN_CAP} dropped={recv_dropped}"
        )));
    }
    let inner_all = if inner_parts.is_empty() {
        Batch::empty(b.inner.schema.clone())
    } else {
        let s = inner_parts[0].schema().clone();
        let joined = Batch::concat(s, &inner_parts)?;
        Batch::try_new(b.inner.schema.clone(), joined.columns().to_vec())?
    };
    let (batch, kstats) = hash_join_kernel(
        &outer,
        &inner_all,
        &b.outer_keys,
        &b.inner_key_positions_output(),
        b.kind,
        b.residual.as_ref(),
        b.schema.clone(),
        &KernelOptions::from_exec(ctx.options()),
        &ctx.kernel_gov(),
    )?;
    if trace {
        children.push(kstats.to_span());
        children.extend(kstats.governor_spans());
    }
    let span = started.map(|t| {
        let mut s = Span::leaf(format!(
            "BindJoin[{}→{} {}]",
            b.label, b.inner.source, b.kind
        ))
        .with_rows_in(outer.num_rows() as u64 + inner_rows)
        .with_rows_out(batch.num_rows() as u64)
        .with_wall_us(t.elapsed().as_micros() as u64);
        s.children = children;
        s
    });
    Ok((batch, span))
}

impl BindJoinExec {
    /// Key positions within the inner fragment's *output* layout.
    fn inner_key_positions_output(&self) -> Vec<usize> {
        self.inner_key_positions
            .iter()
            .map(|&fetched_pos| {
                self.inner
                    .output_positions
                    .iter()
                    .position(|&p| p == fetched_pos)
                    .expect("key columns are part of the inner output")
            })
            .collect()
    }
}
