//! Mediator-side join algorithms.
//!
//! [`hash_join`] covers every join kind over equi-keys (with an
//! optional residual condition); [`nested_loop_join`] covers the
//! rest. Both operate on materialized batches — the federation's
//! costs are on the wire, not here.

use crate::exec::keys::{equi_join_pairs_gov, KernelGov, KernelOptions, KernelStats};
use crate::expr::eval::evaluate_predicate;
use crate::expr::ScalarExpr;
use gis_sql::ast::JoinKind;
use gis_types::{Array, Batch, DataType, GisError, Result, Row, SchemaRef, Value};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

/// Hash join on equi-keys (serial vectorized kernel).
///
/// `residual` (if any) is evaluated over the combined
/// `left ++ right` layout and participates in *match* semantics
/// (i.e. it is part of the ON condition, which matters for outer
/// kinds).
pub fn hash_join(
    left: &Batch,
    right: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    residual: Option<&ScalarExpr>,
    out_schema: SchemaRef,
) -> Result<Batch> {
    hash_join_kernel(
        left,
        right,
        left_keys,
        right_keys,
        kind,
        residual,
        out_schema,
        &KernelOptions::serial(),
        &KernelGov::unbounded(),
    )
    .map(|(batch, _)| batch)
}

/// Key columns of both sides cast to a common type per position so
/// the vectorized hash/equality kernels see identical layouts. Only
/// numeric mismatches are reconcilable (matching the `Value` total
/// order, which widens cross-width numerics to f64 and never equates
/// any other cross-type pair); `None` means no key pair can ever
/// match.
#[allow(clippy::type_complexity)]
fn common_key_columns<'a>(
    left: &'a Batch,
    right: &'a Batch,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Option<(Vec<Cow<'a, Array>>, Vec<Cow<'a, Array>>)>> {
    let mut lcols = Vec::with_capacity(left_keys.len());
    let mut rcols = Vec::with_capacity(right_keys.len());
    for (&lk, &rk) in left_keys.iter().zip(right_keys) {
        let lc = left.column(lk);
        let rc = right.column(rk);
        let (lt, rt) = (lc.data_type(), rc.data_type());
        if lt == rt {
            lcols.push(Cow::Borrowed(lc));
            rcols.push(Cow::Borrowed(rc));
        } else if lt.is_numeric() && rt.is_numeric() {
            let common = if lt == DataType::Float64 || rt == DataType::Float64 {
                DataType::Float64
            } else {
                DataType::Int64
            };
            lcols.push(Cow::Owned(lc.cast_to(common)?));
            rcols.push(Cow::Owned(rc.cast_to(common)?));
        } else {
            // Distinct non-numeric types are never equal under the
            // engine's total order: the join produces no matches.
            return Ok(None);
        }
    }
    Ok(Some((lcols, rcols)))
}

/// [`hash_join`] with explicit kernel knobs and a memory governor,
/// reporting what the key kernel did (mode, partitions, build/probe
/// time, spill) for EXPLAIN ANALYZE.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_kernel(
    left: &Batch,
    right: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    residual: Option<&ScalarExpr>,
    out_schema: SchemaRef,
    opts: &KernelOptions,
    gov: &KernelGov<'_>,
) -> Result<(Batch, KernelStats)> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(GisError::Internal(
            "hash join requires at least one key pair".into(),
        ));
    }
    let (pairs, stats) = match common_key_columns(left, right, left_keys, right_keys)? {
        Some((lcols, rcols)) => {
            let lrefs: Vec<&Array> = lcols.iter().map(Cow::as_ref).collect();
            let rrefs: Vec<&Array> = rcols.iter().map(Cow::as_ref).collect();
            equi_join_pairs_gov(&lrefs, &rrefs, opts, gov)?
        }
        None => (
            Vec::new(),
            KernelStats {
                mode: "type-mismatch",
                partitions: 1,
                build_us: 0,
                probe_us: 0,
                mem_bytes: 0,
                spill_bytes: 0,
                spill_parts: 0,
            },
        ),
    };
    let pairs: Vec<(usize, usize)> = pairs
        .into_iter()
        .map(|(l, r)| (l as usize, r as usize))
        .collect();
    // Residual condition filters candidate pairs.
    let pairs = match residual {
        Some(cond) if !pairs.is_empty() => {
            let li: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ri: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let combined = left.take(&li).hstack(&right.take(&ri))?;
            let keep = evaluate_predicate(cond, &combined)?;
            pairs
                .into_iter()
                .zip(keep)
                .filter_map(|(p, k)| k.then_some(p))
                .collect()
        }
        _ => pairs,
    };
    let batch = assemble(left, right, pairs, kind, out_schema)?;
    Ok((batch, stats))
}

/// The retained `Vec<Value>`-per-row hash join, kept as the oracle
/// for the differential suite and the baseline the F8 experiment
/// measures speedups against.
pub fn hash_join_ref(
    left: &Batch,
    right: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    residual: Option<&ScalarExpr>,
    out_schema: SchemaRef,
) -> Result<Batch> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(GisError::Internal(
            "hash join requires at least one key pair".into(),
        ));
    }
    // Build side: right.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for r in 0..right.num_rows() {
        let key = Row::new(right, r).key(right_keys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(r);
    }
    // Probe: collect candidate pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for l in 0..left.num_rows() {
        let key = Row::new(left, l).key(left_keys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &r in matches {
                pairs.push((l, r));
            }
        }
    }
    // Residual condition filters candidate pairs.
    let pairs = match residual {
        Some(cond) if !pairs.is_empty() => {
            let li: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ri: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let combined = left.take(&li).hstack(&right.take(&ri))?;
            let keep = evaluate_predicate(cond, &combined)?;
            pairs
                .into_iter()
                .zip(keep)
                .filter_map(|(p, k)| k.then_some(p))
                .collect()
        }
        _ => pairs,
    };
    assemble(left, right, pairs, kind, out_schema)
}

/// Checked, capped preallocation for a cross-product pair vector:
/// `l * r` when it is small, else a fixed cap the vector grows past
/// on demand. Never overflows and never overcommits on huge inputs.
fn cross_capacity(l: usize, r: usize) -> usize {
    const CAP: usize = 1 << 20;
    l.checked_mul(r).map_or(CAP, |n| n.min(CAP))
}

/// Nested-loop join for joins without usable equi-keys (cross joins,
/// pure inequality conditions).
pub fn nested_loop_join(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    condition: Option<&ScalarExpr>,
    out_schema: SchemaRef,
) -> Result<Batch> {
    let mut pairs: Vec<(usize, usize)> =
        Vec::with_capacity(cross_capacity(left.num_rows(), right.num_rows()));
    for l in 0..left.num_rows() {
        for r in 0..right.num_rows() {
            pairs.push((l, r));
        }
    }
    let pairs = match condition {
        Some(cond) if !pairs.is_empty() => {
            let li: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ri: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let combined = left.take(&li).hstack(&right.take(&ri))?;
            let keep = evaluate_predicate(cond, &combined)?;
            pairs
                .into_iter()
                .zip(keep)
                .filter_map(|(p, k)| k.then_some(p))
                .collect()
        }
        _ => pairs,
    };
    assemble(left, right, pairs, kind, out_schema)
}

/// Turns matched `(left, right)` row pairs into the output batch for
/// each join kind.
fn assemble(
    left: &Batch,
    right: &Batch,
    pairs: Vec<(usize, usize)>,
    kind: JoinKind,
    out_schema: SchemaRef,
) -> Result<Batch> {
    match kind {
        JoinKind::Inner | JoinKind::Cross => {
            let li: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ri: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let combined = left.take(&li).hstack(&right.take(&ri))?;
            Batch::try_new(out_schema, combined.columns().to_vec())
        }
        JoinKind::Semi => {
            let mut seen: HashSet<usize> = HashSet::new();
            let mut keep: Vec<usize> = Vec::new();
            for (l, _) in pairs {
                if seen.insert(l) {
                    keep.push(l);
                }
            }
            keep.sort_unstable();
            let out = left.take(&keep);
            Batch::try_new(out_schema, out.columns().to_vec())
        }
        JoinKind::Anti => {
            let matched: HashSet<usize> = pairs.iter().map(|p| p.0).collect();
            let keep: Vec<usize> = (0..left.num_rows())
                .filter(|l| !matched.contains(l))
                .collect();
            let out = left.take(&keep);
            Batch::try_new(out_schema, out.columns().to_vec())
        }
        JoinKind::Left | JoinKind::Right | JoinKind::Full => {
            let matched_left: HashSet<usize> = pairs.iter().map(|p| p.0).collect();
            let matched_right: HashSet<usize> = pairs.iter().map(|p| p.1).collect();
            let mut li: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let mut ri: Vec<Option<usize>> = pairs.iter().map(|p| Some(p.1)).collect();
            if matches!(kind, JoinKind::Left | JoinKind::Full) {
                for l in 0..left.num_rows() {
                    if !matched_left.contains(&l) {
                        li.push(l);
                        ri.push(None);
                    }
                }
            }
            // Unmatched right rows (Right/Full): null left side.
            let mut extra_right: Vec<usize> = Vec::new();
            if matches!(kind, JoinKind::Right | JoinKind::Full) {
                for r in 0..right.num_rows() {
                    if !matched_right.contains(&r) {
                        extra_right.push(r);
                    }
                }
            }
            // Assemble matched + left-padded rows.
            let left_part = left.take(&li);
            let right_part = take_optional(right, &ri)?;
            let mut combined = left_part.hstack(&right_part)?;
            if !extra_right.is_empty() {
                let null_left = null_batch(left, extra_right.len())?;
                let right_rows = right.take(&extra_right);
                let pad = null_left.hstack(&right_rows)?;
                combined = Batch::concat(combined.schema().clone(), &[combined.clone(), pad])?;
            }
            Batch::try_new(out_schema, combined.columns().to_vec())
        }
    }
}

/// `take` allowing missing (NULL-padded) rows.
fn take_optional(batch: &Batch, indices: &[Option<usize>]) -> Result<Batch> {
    let rows: Vec<Vec<Value>> = indices
        .iter()
        .map(|i| match i {
            Some(r) => batch.row_values(*r),
            None => vec![Value::Null; batch.num_columns()],
        })
        .collect();
    // NULL padding requires a nullable view of the schema.
    let fields: Vec<gis_types::Field> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| f.clone().with_nullable(true))
        .collect();
    Batch::from_rows(std::sync::Arc::new(gis_types::Schema::new(fields)), &rows)
}

/// `len` all-NULL rows shaped like `batch`.
fn null_batch(batch: &Batch, len: usize) -> Result<Batch> {
    let rows: Vec<Vec<Value>> = (0..len)
        .map(|_| vec![Value::Null; batch.num_columns()])
        .collect();
    let fields: Vec<gis_types::Field> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| f.clone().with_nullable(true))
        .collect();
    Batch::from_rows(std::sync::Arc::new(gis_types::Schema::new(fields)), &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::logical::JoinNode;
    use gis_types::{DataType, Field, Schema};

    fn left() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ])
            .into_ref(),
            &[
                vec![Value::Int64(1), Value::Utf8("a".into())],
                vec![Value::Int64(2), Value::Utf8("b".into())],
                vec![Value::Int64(3), Value::Utf8("c".into())],
                vec![Value::Null, Value::Utf8("n".into())],
            ],
        )
        .unwrap()
    }

    fn right() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("rid", DataType::Int64),
                Field::new("amount", DataType::Float64),
            ])
            .into_ref(),
            &[
                vec![Value::Int64(1), Value::Float64(10.0)],
                vec![Value::Int64(1), Value::Float64(11.0)],
                vec![Value::Int64(3), Value::Float64(30.0)],
                vec![Value::Int64(9), Value::Float64(90.0)],
                vec![Value::Null, Value::Float64(0.0)],
            ],
        )
        .unwrap()
    }

    fn schema_for(kind: JoinKind) -> SchemaRef {
        JoinNode::compute_schema(left().schema(), right().schema(), kind)
    }

    #[test]
    fn inner_join_matches_and_skips_nulls() {
        let out = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Inner,
            None,
            schema_for(JoinKind::Inner),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3); // 1x2 + 3x1; NULLs never match
    }

    #[test]
    fn left_join_pads_unmatched() {
        let out = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Left,
            None,
            schema_for(JoinKind::Left),
        )
        .unwrap();
        // 3 matches + unmatched rows 2 and NULL
        assert_eq!(out.num_rows(), 5);
        let rows = out.to_rows();
        let padded: Vec<_> = rows.iter().filter(|r| r[2] == Value::Null).collect();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn right_and_full_joins() {
        let out = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Right,
            None,
            schema_for(JoinKind::Right),
        )
        .unwrap();
        // 3 matches + unmatched right rows (9 and NULL)
        assert_eq!(out.num_rows(), 5);
        let full = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Full,
            None,
            schema_for(JoinKind::Full),
        )
        .unwrap();
        // 3 matches + 2 left-unmatched + 2 right-unmatched
        assert_eq!(full.num_rows(), 7);
    }

    #[test]
    fn semi_and_anti() {
        let semi = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Semi,
            None,
            schema_for(JoinKind::Semi),
        )
        .unwrap();
        assert_eq!(semi.num_rows(), 2); // ids 1 and 3
        let anti = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Anti,
            None,
            schema_for(JoinKind::Anti),
        )
        .unwrap();
        assert_eq!(anti.num_rows(), 2); // id 2 and the NULL row
    }

    #[test]
    fn residual_condition_affects_matching() {
        // ON id = rid AND amount > 10.0
        let residual = ScalarExpr::col(3).binary(
            gis_sql::ast::BinaryOp::Gt,
            ScalarExpr::lit(Value::Float64(10.0)),
        );
        let inner = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Inner,
            Some(&residual),
            schema_for(JoinKind::Inner),
        )
        .unwrap();
        assert_eq!(inner.num_rows(), 2); // (1,11.0) and (3,30.0)
                                         // LEFT: non-matching due to residual still padded
        let left_join = hash_join(
            &left(),
            &right(),
            &[0],
            &[0],
            JoinKind::Left,
            Some(&residual),
            schema_for(JoinKind::Left),
        )
        .unwrap();
        assert_eq!(left_join.num_rows(), 2 + 2); // 2 matches + ids 2, NULL... and id 1? id1 matched (11.0) so not padded; id3 matched; id2+null padded
    }

    #[test]
    fn nested_loop_cross_and_inequality() {
        let cross = nested_loop_join(
            &left(),
            &right(),
            JoinKind::Cross,
            None,
            schema_for(JoinKind::Cross),
        )
        .unwrap();
        assert_eq!(cross.num_rows(), 20);
        let cond = ScalarExpr::col(0).binary(gis_sql::ast::BinaryOp::Lt, ScalarExpr::col(2));
        let ineq = nested_loop_join(
            &left(),
            &right(),
            JoinKind::Inner,
            Some(&cond),
            schema_for(JoinKind::Inner),
        )
        .unwrap();
        // id < rid pairs: 1<3, 1<9, 2<3, 2<9, 3<9 (x multiplicities: rid1 twice but 1<1 false)
        assert_eq!(ineq.num_rows(), 5);
    }

    #[test]
    fn cross_capacity_is_checked_and_capped() {
        assert_eq!(cross_capacity(3, 4), 12);
        assert_eq!(cross_capacity(0, usize::MAX), 0);
        // Overflowing product: fall back to the cap, don't panic.
        assert_eq!(cross_capacity(usize::MAX, usize::MAX), 1 << 20);
        assert_eq!(cross_capacity(usize::MAX, 2), 1 << 20);
        // Large but representable product: capped, not overcommitted.
        assert_eq!(cross_capacity(1 << 30, 1 << 30), 1 << 20);
    }

    #[test]
    fn large_cross_product_regression() {
        // 1500 x 1500 = 2.25M pairs: big enough that the old
        // uncapped `l * r.min(16)` preallocation was the only thing
        // standing between this test and an overcommit, small enough
        // to run in CI. Row count must be exact.
        let n = 1500;
        let mk = |name: &str| {
            let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int64(i as i64)]).collect();
            Batch::from_rows(
                Schema::new(vec![Field::new(name, DataType::Int64)]).into_ref(),
                &rows,
            )
            .unwrap()
        };
        let l = mk("a");
        let r = mk("b");
        let schema = JoinNode::compute_schema(l.schema(), r.schema(), JoinKind::Cross);
        let out = nested_loop_join(&l, &r, JoinKind::Cross, None, schema).unwrap();
        assert_eq!(out.num_rows(), n * n);
    }

    #[test]
    fn nan_join_keys_match_like_sql_groups() {
        // Pinned semantics: NaN == NaN for key matching (consistent
        // with GROUP BY), NULL never matches.
        let mk = |vals: &[Value]| {
            let rows: Vec<Vec<Value>> = vals.iter().map(|v| vec![v.clone()]).collect();
            Batch::from_rows(
                Schema::new(vec![Field::new("k", DataType::Float64)]).into_ref(),
                &rows,
            )
            .unwrap()
        };
        let l = mk(&[Value::Float64(f64::NAN), Value::Float64(1.0), Value::Null]);
        let r = mk(&[Value::Float64(-f64::NAN), Value::Null, Value::Float64(1.0)]);
        let schema = JoinNode::compute_schema(l.schema(), r.schema(), JoinKind::Inner);
        let out = hash_join(&l, &r, &[0], &[0], JoinKind::Inner, None, schema).unwrap();
        // NaN matches (either payload/sign), 1.0 matches, NULLs don't.
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn kernel_matches_reference_with_mixed_key_types() {
        // Int64 probe keys against Float64 build keys: the kernel
        // casts to a common type; the reference widens via the Value
        // total order. Same rows either way.
        let l = left(); // Int64 ids
        let rows: Vec<Vec<Value>> = [1.0, 1.0, 3.0, 9.5]
            .iter()
            .map(|&f| vec![Value::Float64(f)])
            .collect();
        let r = Batch::from_rows(
            Schema::new(vec![Field::new("fk", DataType::Float64)]).into_ref(),
            &rows,
        )
        .unwrap();
        let schema = JoinNode::compute_schema(l.schema(), r.schema(), JoinKind::Inner);
        let fast = hash_join(&l, &r, &[0], &[0], JoinKind::Inner, None, schema.clone()).unwrap();
        let slow = hash_join_ref(&l, &r, &[0], &[0], JoinKind::Inner, None, schema).unwrap();
        assert_eq!(fast.to_rows(), slow.to_rows());
        assert_eq!(fast.num_rows(), 3); // id 1 twice, id 3 once
    }

    #[test]
    fn empty_inputs() {
        let l = left().slice(0, 0);
        let out = hash_join(
            &l,
            &right(),
            &[0],
            &[0],
            JoinKind::Left,
            None,
            schema_for(JoinKind::Left),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
        let anti = hash_join(
            &left(),
            &right().slice(0, 0),
            &[0],
            &[0],
            JoinKind::Anti,
            None,
            schema_for(JoinKind::Anti),
        )
        .unwrap();
        assert_eq!(anti.num_rows(), 4);
    }
}
