//! Mediator-side hash aggregation (with DISTINCT support).
//!
//! The adapters have their own small aggregate evaluator (a component
//! system is a separate engine); this one is the mediator's and adds
//! what the sources never see: `DISTINCT` aggregates and arbitrary
//! expressions as arguments and group keys.

use crate::exec::keys::{group_rows_gov, KernelGov, KernelOptions, KernelStats};
use crate::expr::eval::evaluate;
use crate::expr::ScalarExpr;
use crate::plan::logical::AggregateExpr;
use gis_adapters::AggFunc;
use gis_types::{Array, Batch, GisError, Result, SchemaRef, Value};
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
struct Acc {
    count: i64,
    sum_i: Option<i64>,
    sum_f: Option<f64>,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<HashSet<Value>>,
    int_input: bool,
}

impl Acc {
    fn new(distinct: bool, int_input: bool) -> Acc {
        Acc {
            count: 0,
            sum_i: None,
            sum_f: None,
            min: None,
            max: None,
            distinct: distinct.then(HashSet::new),
            int_input,
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        // v = None means COUNT(*): count unconditionally.
        let Some(v) = v else {
            self.count += 1;
            return Ok(());
        };
        if v.is_null() {
            return Ok(());
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        if self.int_input {
            if let Ok(Some(i)) = v.as_i64() {
                self.sum_i = Some(self.sum_i.unwrap_or(0).wrapping_add(i));
            }
        }
        if let Ok(Some(f)) = v.as_f64() {
            self.sum_f = Some(self.sum_f.unwrap_or(0.0) + f);
        }
        match &self.min {
            Some(m) if m.total_cmp(v).is_le() => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v).is_ge() => {}
            _ => self.max = Some(v.clone()),
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int64(self.count),
            AggFunc::Sum => {
                if self.int_input {
                    self.sum_i.map_or(Value::Null, Value::Int64)
                } else {
                    self.sum_f.map_or(Value::Null, Value::Float64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => match (self.sum_f, self.count) {
                (Some(s), n) if n > 0 => Value::Float64(s / n as f64),
                _ => Value::Null,
            },
        }
    }
}

/// Evaluates group keys and aggregate arguments once, vectorized,
/// and resolves which aggregates take integer inputs.
#[allow(clippy::type_complexity)]
fn evaluate_inputs(
    input: &Batch,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggregateExpr],
) -> Result<(Vec<Array>, Vec<Option<Array>>, Vec<bool>)> {
    let group_arrays: Vec<Array> = group_exprs
        .iter()
        .map(|g| evaluate(g, input))
        .collect::<Result<_>>()?;
    let arg_arrays: Vec<Option<Array>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| evaluate(e, input)).transpose())
        .collect::<Result<_>>()?;
    let int_inputs: Vec<bool> = aggregates
        .iter()
        .map(|a| {
            a.arg
                .as_ref()
                .and_then(|e| e.data_type(input.schema()).ok())
                .map(|t| t.is_integer())
                .unwrap_or(false)
        })
        .collect();
    Ok((group_arrays, arg_arrays, int_inputs))
}

/// Executes a grouped aggregation over one input batch (serial
/// vectorized kernel).
pub fn hash_aggregate(
    input: &Batch,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggregateExpr],
    out_schema: SchemaRef,
) -> Result<Batch> {
    hash_aggregate_kernel(
        input,
        group_exprs,
        aggregates,
        out_schema,
        &KernelOptions::serial(),
        &KernelGov::unbounded(),
    )
    .map(|(batch, _)| batch)
}

/// [`hash_aggregate`] with explicit kernel knobs: group ids come from
/// the vectorized key pipeline (no `Vec<Value>` key per row), then
/// accumulators run column-at-a-time over dense group ids.
pub fn hash_aggregate_kernel(
    input: &Batch,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggregateExpr],
    out_schema: SchemaRef,
    opts: &KernelOptions,
    gov: &KernelGov<'_>,
) -> Result<(Batch, KernelStats)> {
    let (group_arrays, arg_arrays, int_inputs) = evaluate_inputs(input, group_exprs, aggregates)?;
    let n = input.num_rows();
    let group_refs: Vec<&Array> = group_arrays.iter().collect();
    let (grouping, stats) = group_rows_gov(&group_refs, n, opts, gov)?;
    let mut num_groups = grouping.num_groups();
    // A global aggregate over zero rows still yields one output row.
    let empty_global = group_exprs.is_empty() && num_groups == 0;
    if empty_global {
        num_groups = 1;
    }
    // Key columns: gather group representatives, cast to the declared
    // output type. Aggregate columns: one columnar accumulation pass
    // per aggregate over the dense group ids.
    let reps: Vec<usize> = grouping
        .representatives
        .iter()
        .map(|&r| r as usize)
        .collect();
    let mut columns: Vec<Array> = Vec::with_capacity(out_schema.len());
    for (k, garr) in group_arrays.iter().enumerate() {
        let target = out_schema.field(k).data_type;
        let col = garr
            .take(&reps)
            .cast_to(target)
            .map_err(|e| GisError::Execution(format!("aggregate output coercion: {e}")))?;
        columns.push(col);
    }
    for (j, a) in aggregates.iter().enumerate() {
        let target = out_schema.field(group_arrays.len() + j).data_type;
        let vals = accumulate_one(
            a,
            int_inputs[j],
            arg_arrays[j].as_ref(),
            &grouping.group_of_row,
            num_groups,
        )?;
        let col = Array::from_values(target, &vals)
            .map_err(|e| GisError::Execution(format!("aggregate output coercion: {e}")))?;
        columns.push(col);
    }
    let batch = Batch::try_new(out_schema, columns)?;
    Ok((batch, stats))
}

/// Accumulates one aggregate over all rows, returning its per-group
/// finished values. Non-DISTINCT aggregates over numeric columns run
/// typed columnar loops — no `Value` per row; everything else falls
/// back to the generic [`Acc`] machinery (identical semantics).
fn accumulate_one(
    a: &AggregateExpr,
    int_input: bool,
    arg: Option<&Array>,
    group_of_row: &[u32],
    num_groups: usize,
) -> Result<Vec<Value>> {
    if !a.distinct {
        if let Some(vals) = accumulate_fast(a.func, int_input, arg, group_of_row, num_groups) {
            return Ok(vals);
        }
    }
    let mut accs: Vec<Acc> = (0..num_groups)
        .map(|_| Acc::new(a.distinct, int_input))
        .collect();
    match arg {
        Some(arr) => {
            for (row, &g) in group_of_row.iter().enumerate() {
                accs[g as usize].update(Some(&arr.value_at(row)))?;
            }
        }
        None => {
            for &g in group_of_row {
                accs[g as usize].update(None)?;
            }
        }
    }
    Ok(accs.iter().map(|acc| acc.finish(a.func)).collect())
}

/// The typed columnar fast paths. Returns `None` when this
/// (function, column type) combination has no specialization.
///
/// Every loop reproduces [`Acc`] exactly: NULL inputs are skipped,
/// integer sums wrap, float sums add in row order, float min/max use
/// `f64::total_cmp` with first-wins ties — so the fast and generic
/// paths are bit-identical (the differential suite checks this
/// against the `Vec<Value>` reference).
fn accumulate_fast(
    func: AggFunc,
    int_input: bool,
    arg: Option<&Array>,
    group_of_row: &[u32],
    num_groups: usize,
) -> Option<Vec<Value>> {
    let ng = num_groups;
    // COUNT(*): every row counts, no argument involved.
    if arg.is_none() {
        if func != AggFunc::Count {
            return None;
        }
        let mut counts = vec![0i64; ng];
        for &g in group_of_row {
            counts[g as usize] += 1;
        }
        return Some(counts.into_iter().map(Value::Int64).collect());
    }
    let arr = arg?;
    // COUNT(col): non-null rows count, any column type.
    if func == AggFunc::Count {
        let mut counts = vec![0i64; ng];
        for (row, &g) in group_of_row.iter().enumerate() {
            if arr.is_valid(row) {
                counts[g as usize] += 1;
            }
        }
        return Some(counts.into_iter().map(Value::Int64).collect());
    }
    // Generic skeleton: fold valid slots into per-group state, then
    // finish groups that saw at least one value.
    macro_rules! fold {
        ($vals:expr, $m:expr, $init:expr, $step:expr, $fin:expr) => {{
            let mut state = vec![$init; ng];
            let mut seen = vec![false; ng];
            for (row, &g) in group_of_row.iter().enumerate() {
                if $m.get(row) {
                    let g = g as usize;
                    $step(&mut state[g], $vals[row], seen[g]);
                    seen[g] = true;
                }
            }
            Some(
                state
                    .into_iter()
                    .zip(seen)
                    .map(|(s, ok)| if ok { $fin(s) } else { Value::Null })
                    .collect(),
            )
        }};
    }
    match (func, arr) {
        (AggFunc::Sum, Array::Int64(v, m)) if int_input => fold!(
            v,
            m,
            0i64,
            |s: &mut i64, x: i64, _| *s = s.wrapping_add(x),
            Value::Int64
        ),
        (AggFunc::Sum, Array::Int32(v, m)) if int_input => fold!(
            v,
            m,
            0i64,
            |s: &mut i64, x: i32, _| *s = s.wrapping_add(x as i64),
            Value::Int64
        ),
        (AggFunc::Sum, Array::Float64(v, m)) if !int_input => fold!(
            v,
            m,
            0.0f64,
            |s: &mut f64, x: f64, _| *s += x,
            Value::Float64
        ),
        (AggFunc::Min, Array::Int64(v, m)) => fold!(
            v,
            m,
            i64::MAX,
            |s: &mut i64, x: i64, _| *s = (*s).min(x),
            Value::Int64
        ),
        (AggFunc::Max, Array::Int64(v, m)) => fold!(
            v,
            m,
            i64::MIN,
            |s: &mut i64, x: i64, _| *s = (*s).max(x),
            Value::Int64
        ),
        (AggFunc::Min, Array::Int32(v, m)) => fold!(
            v,
            m,
            i32::MAX,
            |s: &mut i32, x: i32, _| *s = (*s).min(x),
            Value::Int32
        ),
        (AggFunc::Max, Array::Int32(v, m)) => fold!(
            v,
            m,
            i32::MIN,
            |s: &mut i32, x: i32, _| *s = (*s).max(x),
            Value::Int32
        ),
        (AggFunc::Min, Array::Float64(v, m)) => fold!(
            v,
            m,
            f64::NAN,
            |s: &mut f64, x: f64, first_done: bool| {
                if !first_done || x.total_cmp(s) == std::cmp::Ordering::Less {
                    *s = x;
                }
            },
            Value::Float64
        ),
        (AggFunc::Max, Array::Float64(v, m)) => fold!(
            v,
            m,
            f64::NAN,
            |s: &mut f64, x: f64, first_done: bool| {
                if !first_done || x.total_cmp(s) == std::cmp::Ordering::Greater {
                    *s = x;
                }
            },
            Value::Float64
        ),
        // AVG sums as f64 in row order for ints and floats alike.
        (AggFunc::Avg, Array::Int64(v, m)) => {
            avg_fold(v.iter().map(|&x| x as f64), m, group_of_row, ng)
        }
        (AggFunc::Avg, Array::Int32(v, m)) => {
            avg_fold(v.iter().map(|&x| x as f64), m, group_of_row, ng)
        }
        (AggFunc::Avg, Array::Float64(v, m)) => avg_fold(v.iter().copied(), m, group_of_row, ng),
        _ => None,
    }
}

/// AVG fast path: per-group `(sum, count)` over an f64 view of the
/// column, additions in row order (matching the generic path).
fn avg_fold(
    vals: impl Iterator<Item = f64>,
    validity: &gis_types::Bitmap,
    group_of_row: &[u32],
    num_groups: usize,
) -> Option<Vec<Value>> {
    let mut sum = vec![0.0f64; num_groups];
    let mut count = vec![0i64; num_groups];
    for ((row, &g), x) in group_of_row.iter().enumerate().zip(vals) {
        if validity.get(row) {
            sum[g as usize] += x;
            count[g as usize] += 1;
        }
    }
    Some(
        sum.into_iter()
            .zip(count)
            .map(|(s, n)| {
                if n > 0 {
                    Value::Float64(s / n as f64)
                } else {
                    Value::Null
                }
            })
            .collect(),
    )
}

/// The retained `Vec<Value>`-keyed aggregation, kept as the oracle
/// for the differential suite and the F8 baseline.
pub fn hash_aggregate_ref(
    input: &Batch,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggregateExpr],
    out_schema: SchemaRef,
) -> Result<Batch> {
    let (group_arrays, arg_arrays, int_inputs) = evaluate_inputs(input, group_exprs, aggregates)?;
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in 0..input.num_rows() {
        let key: Vec<Value> = group_arrays.iter().map(|a| a.value_at(row)).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            aggregates
                .iter()
                .zip(&int_inputs)
                .map(|(a, &ii)| Acc::new(a.distinct, ii))
                .collect()
        });
        for ((acc, a), arg) in accs.iter_mut().zip(aggregates).zip(&arg_arrays) {
            let v = arg.as_ref().map(|arr| arr.value_at(row));
            if a.arg.is_some() {
                acc.update(Some(&v.expect("arg evaluated")))?;
            } else {
                acc.update(None)?;
            }
        }
    }
    if group_exprs.is_empty() && order.is_empty() {
        let accs: Vec<Acc> = aggregates
            .iter()
            .zip(&int_inputs)
            .map(|(a, &ii)| Acc::new(a.distinct, ii))
            .collect();
        order.push(vec![]);
        groups.insert(vec![], accs);
    }
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
    for key in &order {
        let accs = &groups[key];
        let mut row = key.clone();
        for (acc, a) in accs.iter().zip(aggregates) {
            let v = acc.finish(a.func);
            // Coerce to the declared output type.
            let target = out_schema.field(row.len()).data_type;
            row.push(
                v.cast_to(target)
                    .map_err(|e| GisError::Execution(format!("aggregate output coercion: {e}")))?,
            );
        }
        rows.push(row);
    }
    Batch::from_rows(out_schema, &rows)
}

/// Duplicate elimination over all columns (DISTINCT, serial
/// vectorized kernel). Keeps each row group's first occurrence, in
/// input order.
pub fn distinct(input: &Batch) -> Batch {
    distinct_kernel(input, &KernelOptions::serial(), &KernelGov::unbounded())
        .expect("unbounded kernel cannot fail")
        .0
}

/// [`distinct`] with explicit kernel knobs: the key pipeline's group
/// representatives *are* the distinct rows.
pub fn distinct_kernel(
    input: &Batch,
    opts: &KernelOptions,
    gov: &KernelGov<'_>,
) -> Result<(Batch, KernelStats)> {
    let cols: Vec<&Array> = input.columns().iter().collect();
    let (grouping, stats) = group_rows_gov(&cols, input.num_rows(), opts, gov)?;
    let keep: Vec<usize> = grouping
        .representatives
        .iter()
        .map(|&r| r as usize)
        .collect();
    Ok((input.take(&keep), stats))
}

/// The retained `Vec<Value>`-keyed DISTINCT, kept as the oracle for
/// the differential suite and the F8 baseline.
pub fn distinct_ref(input: &Batch) -> Batch {
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut keep: Vec<usize> = Vec::new();
    for r in 0..input.num_rows() {
        let key = input.row_values(r);
        if seen.insert(key) {
            keep.push(r);
        }
    }
    input.take(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema};

    fn batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            &[
                vec![Value::Utf8("a".into()), Value::Int64(1)],
                vec![Value::Utf8("a".into()), Value::Int64(1)],
                vec![Value::Utf8("a".into()), Value::Int64(2)],
                vec![Value::Utf8("b".into()), Value::Null],
            ],
        )
        .unwrap()
    }

    fn out_schema(aggs: &[AggregateExpr], groups: usize) -> SchemaRef {
        let mut fields = vec![Field::new("g", DataType::Utf8)];
        fields.truncate(groups);
        for a in aggs {
            let t = match a.func {
                AggFunc::Avg => DataType::Float64,
                AggFunc::Min | AggFunc::Max | AggFunc::Sum => DataType::Int64,
                AggFunc::Count => DataType::Int64,
            };
            fields.push(Field::new(a.display_name(), t));
        }
        Schema::new(fields).into_ref()
    }

    #[test]
    fn distinct_aggregates() {
        let aggs = vec![
            AggregateExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::col(1)),
                distinct: true,
            },
            AggregateExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::col(1)),
                distinct: true,
            },
            AggregateExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::col(1)),
                distinct: false,
            },
        ];
        let schema = out_schema(&aggs, 1);
        let out = hash_aggregate(&batch(), &[ScalarExpr::col(0)], &aggs, schema).unwrap();
        let rows = out.to_rows();
        let a = rows
            .iter()
            .find(|r| r[0] == Value::Utf8("a".into()))
            .unwrap();
        assert_eq!(a[1], Value::Int64(2)); // distinct {1,2}
        assert_eq!(a[2], Value::Int64(3)); // 1+2
        assert_eq!(a[3], Value::Int64(3)); // plain count
        let b = rows
            .iter()
            .find(|r| r[0] == Value::Utf8("b".into()))
            .unwrap();
        assert_eq!(b[1], Value::Int64(0));
        assert_eq!(b[2], Value::Null);
    }

    #[test]
    fn global_aggregate_on_empty() {
        let aggs = vec![AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }];
        let schema = out_schema(&aggs, 0);
        let empty = batch().slice(0, 0);
        let out = hash_aggregate(&empty, &[], &aggs, schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row_values(0)[0], Value::Int64(0));
    }

    #[test]
    fn distinct_rows() {
        let b = batch();
        let d = distinct(&b);
        assert_eq!(d.num_rows(), 3); // (a,1) appears twice
    }

    #[test]
    fn nan_group_keys_group_together() {
        // Pinned semantics (per SQL engines): every NaN belongs to
        // one group in GROUP BY and DISTINCT, regardless of payload
        // or sign bit. -0.0 and 0.0 stay distinct groups (the
        // engine's float total order separates them).
        let b = Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Float64),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            &[
                vec![Value::Float64(f64::NAN), Value::Int64(1)],
                vec![Value::Float64(-f64::NAN), Value::Int64(2)],
                vec![Value::Float64(0.0), Value::Int64(3)],
                vec![Value::Float64(-0.0), Value::Int64(4)],
                vec![Value::Float64(f64::NAN), Value::Int64(5)],
            ],
        )
        .unwrap();
        let aggs = vec![AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }];
        let fields = vec![
            Field::new("g", DataType::Float64),
            Field::new("count(*)", DataType::Int64),
        ];
        let out = hash_aggregate(
            &b,
            &[ScalarExpr::col(0)],
            &aggs,
            Schema::new(fields).into_ref(),
        )
        .unwrap();
        // Groups: {NaN x3}, {0.0}, {-0.0}
        assert_eq!(out.num_rows(), 3);
        let nan_count = out
            .to_rows()
            .iter()
            .find_map(|r| match (&r[0], &r[1]) {
                (Value::Float64(f), Value::Int64(c)) if f.is_nan() => Some(*c),
                _ => None,
            })
            .expect("NaN group present");
        assert_eq!(nan_count, 3);
        // DISTINCT agrees: one NaN row survives.
        let d = distinct(&b.project(&[0]).unwrap());
        assert_eq!(d.num_rows(), 3);
    }

    #[test]
    fn kernel_matches_reference_on_mixed_groups() {
        let b = batch();
        let aggs = vec![
            AggregateExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::col(1)),
                distinct: false,
            },
            AggregateExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
        ];
        let schema = out_schema(&aggs, 1);
        let fast = hash_aggregate(&b, &[ScalarExpr::col(0)], &aggs, schema.clone()).unwrap();
        let slow = hash_aggregate_ref(&b, &[ScalarExpr::col(0)], &aggs, schema).unwrap();
        assert_eq!(fast.to_rows(), slow.to_rows());
        assert_eq!(distinct(&b).to_rows(), distinct_ref(&b).to_rows());
    }

    #[test]
    fn null_group_keys_group_together() {
        let b = Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            &[
                vec![Value::Null, Value::Int64(1)],
                vec![Value::Null, Value::Int64(2)],
            ],
        )
        .unwrap();
        let aggs = vec![AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }];
        let mut fields = vec![Field::new("g", DataType::Utf8)];
        fields.push(Field::new("count(*)", DataType::Int64));
        let out = hash_aggregate(
            &b,
            &[ScalarExpr::col(0)],
            &aggs,
            Schema::new(fields).into_ref(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row_values(0)[1], Value::Int64(2));
    }
}
