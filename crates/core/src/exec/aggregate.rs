//! Mediator-side hash aggregation (with DISTINCT support).
//!
//! The adapters have their own small aggregate evaluator (a component
//! system is a separate engine); this one is the mediator's and adds
//! what the sources never see: `DISTINCT` aggregates and arbitrary
//! expressions as arguments and group keys.

use crate::expr::eval::evaluate;
use crate::expr::ScalarExpr;
use crate::plan::logical::AggregateExpr;
use gis_adapters::AggFunc;
use gis_types::{Batch, GisError, Result, SchemaRef, Value};
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
struct Acc {
    count: i64,
    sum_i: Option<i64>,
    sum_f: Option<f64>,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<HashSet<Value>>,
    int_input: bool,
}

impl Acc {
    fn new(distinct: bool, int_input: bool) -> Acc {
        Acc {
            count: 0,
            sum_i: None,
            sum_f: None,
            min: None,
            max: None,
            distinct: distinct.then(HashSet::new),
            int_input,
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        // v = None means COUNT(*): count unconditionally.
        let Some(v) = v else {
            self.count += 1;
            return Ok(());
        };
        if v.is_null() {
            return Ok(());
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        if self.int_input {
            if let Ok(Some(i)) = v.as_i64() {
                self.sum_i = Some(self.sum_i.unwrap_or(0).wrapping_add(i));
            }
        }
        if let Ok(Some(f)) = v.as_f64() {
            self.sum_f = Some(self.sum_f.unwrap_or(0.0) + f);
        }
        match &self.min {
            Some(m) if m.total_cmp(v).is_le() => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v).is_ge() => {}
            _ => self.max = Some(v.clone()),
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int64(self.count),
            AggFunc::Sum => {
                if self.int_input {
                    self.sum_i.map_or(Value::Null, Value::Int64)
                } else {
                    self.sum_f.map_or(Value::Null, Value::Float64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => match (self.sum_f, self.count) {
                (Some(s), n) if n > 0 => Value::Float64(s / n as f64),
                _ => Value::Null,
            },
        }
    }
}

/// Executes a grouped aggregation over one input batch.
pub fn hash_aggregate(
    input: &Batch,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggregateExpr],
    out_schema: SchemaRef,
) -> Result<Batch> {
    // Evaluate group keys and aggregate arguments once, vectorized.
    let group_arrays: Vec<_> = group_exprs
        .iter()
        .map(|g| evaluate(g, input))
        .collect::<Result<_>>()?;
    let arg_arrays: Vec<Option<gis_types::Array>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| evaluate(e, input)).transpose())
        .collect::<Result<_>>()?;
    let int_inputs: Vec<bool> = aggregates
        .iter()
        .map(|a| {
            a.arg
                .as_ref()
                .and_then(|e| e.data_type(input.schema()).ok())
                .map(|t| t.is_integer())
                .unwrap_or(false)
        })
        .collect();
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in 0..input.num_rows() {
        let key: Vec<Value> = group_arrays.iter().map(|a| a.value_at(row)).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            aggregates
                .iter()
                .zip(&int_inputs)
                .map(|(a, &ii)| Acc::new(a.distinct, ii))
                .collect()
        });
        for ((acc, a), arg) in accs.iter_mut().zip(aggregates).zip(&arg_arrays) {
            let v = arg.as_ref().map(|arr| arr.value_at(row));
            if a.arg.is_some() {
                acc.update(Some(&v.expect("arg evaluated")))?;
            } else {
                acc.update(None)?;
            }
        }
    }
    if group_exprs.is_empty() && order.is_empty() {
        let accs: Vec<Acc> = aggregates
            .iter()
            .zip(&int_inputs)
            .map(|(a, &ii)| Acc::new(a.distinct, ii))
            .collect();
        order.push(vec![]);
        groups.insert(vec![], accs);
    }
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
    for key in &order {
        let accs = &groups[key];
        let mut row = key.clone();
        for (acc, a) in accs.iter().zip(aggregates) {
            let v = acc.finish(a.func);
            // Coerce to the declared output type.
            let target = out_schema.field(row.len()).data_type;
            row.push(
                v.cast_to(target)
                    .map_err(|e| GisError::Execution(format!("aggregate output coercion: {e}")))?,
            );
        }
        rows.push(row);
    }
    Batch::from_rows(out_schema, &rows)
}

/// Duplicate elimination over all columns (DISTINCT).
pub fn distinct(input: &Batch) -> Batch {
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut keep: Vec<usize> = Vec::new();
    for r in 0..input.num_rows() {
        let key = input.row_values(r);
        if seen.insert(key) {
            keep.push(r);
        }
    }
    input.take(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema};

    fn batch() -> Batch {
        Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            &[
                vec![Value::Utf8("a".into()), Value::Int64(1)],
                vec![Value::Utf8("a".into()), Value::Int64(1)],
                vec![Value::Utf8("a".into()), Value::Int64(2)],
                vec![Value::Utf8("b".into()), Value::Null],
            ],
        )
        .unwrap()
    }

    fn out_schema(aggs: &[AggregateExpr], groups: usize) -> SchemaRef {
        let mut fields = vec![Field::new("g", DataType::Utf8)];
        fields.truncate(groups);
        for a in aggs {
            let t = match a.func {
                AggFunc::Avg => DataType::Float64,
                AggFunc::Min | AggFunc::Max | AggFunc::Sum => DataType::Int64,
                AggFunc::Count => DataType::Int64,
            };
            fields.push(Field::new(a.display_name(), t));
        }
        Schema::new(fields).into_ref()
    }

    #[test]
    fn distinct_aggregates() {
        let aggs = vec![
            AggregateExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::col(1)),
                distinct: true,
            },
            AggregateExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::col(1)),
                distinct: true,
            },
            AggregateExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::col(1)),
                distinct: false,
            },
        ];
        let schema = out_schema(&aggs, 1);
        let out = hash_aggregate(&batch(), &[ScalarExpr::col(0)], &aggs, schema).unwrap();
        let rows = out.to_rows();
        let a = rows
            .iter()
            .find(|r| r[0] == Value::Utf8("a".into()))
            .unwrap();
        assert_eq!(a[1], Value::Int64(2)); // distinct {1,2}
        assert_eq!(a[2], Value::Int64(3)); // 1+2
        assert_eq!(a[3], Value::Int64(3)); // plain count
        let b = rows
            .iter()
            .find(|r| r[0] == Value::Utf8("b".into()))
            .unwrap();
        assert_eq!(b[1], Value::Int64(0));
        assert_eq!(b[2], Value::Null);
    }

    #[test]
    fn global_aggregate_on_empty() {
        let aggs = vec![AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }];
        let schema = out_schema(&aggs, 0);
        let empty = batch().slice(0, 0);
        let out = hash_aggregate(&empty, &[], &aggs, schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row_values(0)[0], Value::Int64(0));
    }

    #[test]
    fn distinct_rows() {
        let b = batch();
        let d = distinct(&b);
        assert_eq!(d.num_rows(), 3); // (a,1) appears twice
    }

    #[test]
    fn null_group_keys_group_together() {
        let b = Batch::from_rows(
            Schema::new(vec![
                Field::new("g", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            &[
                vec![Value::Null, Value::Int64(1)],
                vec![Value::Null, Value::Int64(2)],
            ],
        )
        .unwrap();
        let aggs = vec![AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }];
        let mut fields = vec![Field::new("g", DataType::Utf8)];
        fields.push(Field::new("count(*)", DataType::Int64));
        let out = hash_aggregate(
            &b,
            &[ScalarExpr::col(0)],
            &aggs,
            Schema::new(fields).into_ref(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row_values(0)[1], Value::Int64(2));
    }
}
