//! Source fragments: the unit of work shipped to a component system.
//!
//! `FragmentExec` is the physical form of a `TableScan` after the
//! planner has decided what the source runs natively (predicates,
//! projection, limit — within its capability profile) and what stays
//! at the mediator (`residual`). It also owns the *mapping
//! application*: component systems answer in their export
//! representation; the fragment converts each returned column to its
//! global form (renames, casts, unit conversions) before the rest of
//! the plan sees it.

use crate::expr::{eval::evaluate_predicate, ScalarExpr};
use crate::plan::logical::TableScanNode;
use gis_adapters::{SourceGroup, SourceRequest};
use gis_catalog::TableMapping;
use gis_observe::Span;
use gis_sql::ast::BinaryOp;
use gis_storage::{CmpOp, ScanPredicate};
use gis_types::{Batch, Field, GisError, Result, Schema, SchemaRef, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A fragment executed at one source.
#[derive(Debug, Clone)]
pub struct FragmentExec {
    /// Source name (keys into the federation's adapter registry).
    pub source: String,
    /// The request shipped to the source.
    pub request: SourceRequest,
    /// Full export schema of the target table.
    pub export_schema: SchemaRef,
    /// Export→global mapping.
    pub mapping: TableMapping,
    /// Global ordinals present after mapping the response (sorted).
    pub fetched_global: Vec<usize>,
    /// Mediator-side filter over the fetched-global layout.
    pub residual: Option<ScalarExpr>,
    /// Positions within `fetched_global` forming the final output.
    pub output_positions: Vec<usize>,
    /// Limit to apply after residual filtering (when the source
    /// could not apply it exactly).
    pub post_fetch: Option<usize>,
    /// Final output schema (alias-qualified).
    pub schema: SchemaRef,
    /// Optimizer's row estimate for this scan (0 = none), surfaced as
    /// `est=…` in the fragment's `EXPLAIN ANALYZE` span.
    pub rows_est: u64,
}

impl FragmentExec {
    /// Ships the fragment, maps the response to global form, applies
    /// residual filters, and projects the output.
    pub fn execute(&self, remote: &SourceGroup) -> Result<Batch> {
        Ok(self.execute_traced(remote, false, None)?.0)
    }

    /// Like [`FragmentExec::execute`], but when `trace` is set also
    /// builds the fragment's span: rows received vs. rows surviving
    /// the residual filter, with the wire exchange (and the source's
    /// own reported span) as a child. The deadline bounds retries and
    /// replica failover inside the group.
    pub fn execute_traced(
        &self,
        remote: &SourceGroup,
        trace: bool,
        deadline: Option<std::time::Instant>,
    ) -> Result<(Batch, Option<Span>)> {
        let started = trace.then(std::time::Instant::now);
        let resp_schema = self.request.output_schema(&self.export_schema)?;
        let (raw, recv) = if trace {
            let (b, s) = remote.execute_all_traced(&self.request, resp_schema, deadline)?;
            (b, Some(s))
        } else {
            (
                remote.execute_all(&self.request, resp_schema, deadline)?,
                None,
            )
        };
        let rows_in = raw.num_rows() as u64;
        let mapped = self.map_response(&raw)?;
        let filtered = match &self.residual {
            Some(pred) => {
                let keep = evaluate_predicate(pred, &mapped)?;
                mapped.filter(&keep)?
            }
            None => mapped,
        };
        let projected = filtered.project(&self.output_positions)?;
        let limited = match self.post_fetch {
            Some(n) if projected.num_rows() > n => projected.slice(0, n),
            _ => projected,
        };
        // Install the alias-qualified output schema.
        let batch = Batch::try_new(self.schema.clone(), limited.columns().to_vec())?;
        let span = started.map(|t| {
            let mut s = Span::leaf(format!("Fragment[{}]", self.source))
                .with_rows_in(rows_in)
                .with_rows_out(batch.num_rows() as u64)
                .with_est_rows(self.rows_est)
                .with_wall_us(t.elapsed().as_micros() as u64);
            s.children.extend(recv);
            s
        });
        Ok((batch, span))
    }

    /// Converts a response batch (export layout) into the
    /// fetched-global layout, applying per-column transforms.
    pub fn map_response(&self, raw: &Batch) -> Result<Batch> {
        let mut columns = Vec::with_capacity(self.fetched_global.len());
        let mut fields = Vec::with_capacity(self.fetched_global.len());
        for &g in &self.fetched_global {
            let cm = self
                .mapping
                .columns
                .get(g)
                .ok_or_else(|| GisError::Internal(format!("mapping has no column {g}")))?;
            let pos = raw.schema().index_of(None, &cm.source_column)?;
            let transformed = cm.transform.apply_array(raw.column(pos))?;
            let cast = transformed.cast_to(cm.global.data_type)?;
            columns.push(cast);
            fields.push(cm.global.clone());
        }
        Batch::try_new(Arc::new(Schema::new(fields)), columns)
    }
}

/// Builds a fragment from an optimized `TableScan`, consulting the
/// adapter's capability profile and structural pushability.
pub fn build_fragment(scan: &TableScanNode, remote: &SourceGroup) -> Result<FragmentExec> {
    let caps = scan.resolved.source.capabilities;
    let mapping = &scan.resolved.mapping;
    let export = &scan.resolved.table.export_schema;
    // 1. Translate global filters into native predicates.
    let mut candidates: Vec<(usize, ScanPredicate)> = Vec::new();
    let mut residual_idx: Vec<usize> = Vec::new();
    for (i, f) in scan.filters.iter().enumerate() {
        match (caps.filter, translate_predicate(f, mapping, export)?) {
            (true, Some(p)) => candidates.push((i, p)),
            _ => residual_idx.push(i),
        }
    }
    // Range filters need the capability.
    if !caps.range_filter {
        candidates.retain(|(i, p)| {
            if p.op == CmpOp::Eq {
                true
            } else {
                residual_idx.push(*i);
                false
            }
        });
    }
    // 2. Structural acceptance by the adapter.
    let preds: Vec<ScanPredicate> = candidates.iter().map(|(_, p)| p.clone()).collect();
    let accepted = remote
        .adapter()
        .pushable_predicates(&mapping.source_table, &preds);
    let mut pushed: Vec<ScanPredicate> = Vec::new();
    for ((i, p), ok) in candidates.into_iter().zip(accepted) {
        if ok {
            pushed.push(p);
        } else {
            residual_idx.push(i);
        }
    }
    residual_idx.sort_unstable();
    let residual_filters: Vec<ScalarExpr> = residual_idx
        .iter()
        .map(|&i| scan.filters[i].clone())
        .collect();
    // 3. Columns to fetch: the scan's output plus residual inputs.
    let output_global = scan.output_ordinals();
    let mut fetched_global: Vec<usize> = output_global.clone();
    for f in &residual_filters {
        fetched_global.extend(f.referenced_columns());
    }
    fetched_global.sort_unstable();
    fetched_global.dedup();
    // 4. Export projection (when the source can project).
    let projection: Vec<usize> = if caps.project {
        let mut ords: Vec<usize> = fetched_global
            .iter()
            .map(|&g| export.index_of(None, &mapping.columns[g].source_column))
            .collect::<Result<_>>()?;
        ords.sort_unstable();
        ords.dedup();
        ords
    } else {
        vec![]
    };
    // 5. Limit: exact at the source only when nothing is residual.
    let (request_limit, post_fetch) = match scan.fetch {
        Some(n) if residual_filters.is_empty() && caps.limit => (Some(n as u64), None),
        Some(n) => (None, Some(n)),
        None => (None, None),
    };
    // 6. Remap residuals from full-global ordinals to fetched layout.
    let global_to_fetched: HashMap<usize, usize> = fetched_global
        .iter()
        .enumerate()
        .map(|(pos, &g)| (g, pos))
        .collect();
    let residual = ScalarExpr::conjunction(
        residual_filters
            .into_iter()
            .map(|f| f.remap_columns(&global_to_fetched))
            .collect::<Result<Vec<_>>>()?,
    );
    let output_positions: Vec<usize> = output_global.iter().map(|g| global_to_fetched[g]).collect();
    let request = SourceRequest::Scan {
        table: mapping.source_table.clone(),
        predicates: pushed,
        projection,
        sort: vec![],
        limit: request_limit,
    };
    Ok(FragmentExec {
        source: scan.resolved.source.name.clone(),
        request,
        export_schema: export.clone(),
        mapping: mapping.clone(),
        fetched_global,
        residual,
        output_positions,
        post_fetch,
        schema: scan.schema.clone(),
        rows_est: crate::cost::estimate_scan(scan).rows.round().max(1.0) as u64,
    })
}

/// Builds the *bind-join* variant of a fragment: all filters stay
/// residual (the Lookup protocol carries keys, not predicates) and
/// the key columns are always fetched.
pub fn build_lookup_fragment(scan: &TableScanNode, key_global: &[usize]) -> Result<FragmentExec> {
    let caps = scan.resolved.source.capabilities;
    let mapping = &scan.resolved.mapping;
    let export = &scan.resolved.table.export_schema;
    let output_global = scan.output_ordinals();
    let mut fetched_global: Vec<usize> = output_global.clone();
    for f in &scan.filters {
        fetched_global.extend(f.referenced_columns());
    }
    fetched_global.extend(key_global.iter().copied());
    fetched_global.sort_unstable();
    fetched_global.dedup();
    let projection: Vec<usize> = if caps.project {
        let mut ords: Vec<usize> = fetched_global
            .iter()
            .map(|&g| export.index_of(None, &mapping.columns[g].source_column))
            .collect::<Result<_>>()?;
        ords.sort_unstable();
        ords.dedup();
        ords
    } else {
        vec![]
    };
    let global_to_fetched: HashMap<usize, usize> = fetched_global
        .iter()
        .enumerate()
        .map(|(pos, &g)| (g, pos))
        .collect();
    let residual = ScalarExpr::conjunction(
        scan.filters
            .iter()
            .cloned()
            .map(|f| f.remap_columns(&global_to_fetched))
            .collect::<Result<Vec<_>>>()?,
    );
    let output_positions: Vec<usize> = output_global.iter().map(|g| global_to_fetched[g]).collect();
    // Placeholder request; the bind-join operator swaps in Lookups
    // with actual key sets at run time.
    let request = SourceRequest::Lookup {
        table: mapping.source_table.clone(),
        key_columns: key_export_ordinals(mapping, export, key_global)?,
        keys: vec![],
        projection,
    };
    Ok(FragmentExec {
        source: scan.resolved.source.name.clone(),
        request,
        export_schema: export.clone(),
        mapping: mapping.clone(),
        fetched_global,
        residual,
        output_positions,
        post_fetch: scan.fetch,
        schema: scan.schema.clone(),
        // Lookup row counts depend on the keys bound at run time, so
        // the planner makes no claim here.
        rows_est: 0,
    })
}

/// Export-side ordinals of the given global key columns.
pub fn key_export_ordinals(
    mapping: &TableMapping,
    export: &Schema,
    key_global: &[usize],
) -> Result<Vec<usize>> {
    key_global
        .iter()
        .map(|&g| export.index_of(None, &mapping.columns[g].source_column))
        .collect()
}

/// Translates one global-schema conjunct into a native predicate, if
/// its shape and the column's transform allow.
fn translate_predicate(
    f: &ScalarExpr,
    mapping: &TableMapping,
    export: &Schema,
) -> Result<Option<ScanPredicate>> {
    let (col, op, value) = match f {
        ScalarExpr::Binary { left, op, right } => match (left.as_ref(), right.as_ref()) {
            (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => (*c, *op, v.clone()),
            (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => match op.swap() {
                Some(sw) => (*c, sw, v.clone()),
                None => return Ok(None),
            },
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let cmp = match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::NotEq => CmpOp::NotEq,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::LtEq => CmpOp::LtEq,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::GtEq => CmpOp::GtEq,
        _ => return Ok(None),
    };
    let Some(cm) = mapping.columns.get(col) else {
        return Ok(None);
    };
    let export_idx = export.index_of(None, &cm.source_column)?;
    let export_type = export.field(export_idx).data_type;
    // Range predicates only survive order-preserving transforms.
    if cmp != CmpOp::Eq && cmp != CmpOp::NotEq && !cm.transform.is_monotonic() {
        return Ok(None);
    }
    // Comparing against NULL never matches; leave it to the mediator
    // (the residual evaluates to no rows, preserving semantics).
    if value.is_null() {
        return Ok(None);
    }
    let Some(inverted) = cm.transform.invert_literal(&value, export_type) else {
        // Non-invertible for equality means the global literal has no
        // exact source counterpart. For Eq the predicate can still be
        // decided: no source value maps to it, so nothing matches —
        // but a ValueMap could map *unmatched* source values to NULL,
        // never to a non-null global literal, so "no rows" is only
        // right for Eq. Keep it conservative: mediator-side.
        return Ok(None);
    };
    Ok(Some(ScanPredicate::new(export_idx, cmp, inverted)))
}

/// Builds a `Values` batch (constant relations execute locally).
pub fn values_batch(schema: &SchemaRef, rows: &[Vec<Value>]) -> Result<Batch> {
    Batch::from_rows(schema.clone(), rows)
}

/// Requalifies `fields` under an alias (helper shared with planner).
pub fn requalified(schema: &Schema, alias: &str) -> Vec<Field> {
    schema.requalify(alias).fields().to_vec()
}
