//! Physical planning and execution.
//!
//! The physical plan is a tree of materializing operators: each
//! `execute` returns one [`gis_types::Batch`]. Streaming/chunking
//! happens at the network boundary (the metered `RemoteSource` ships
//! response chunks as separate messages); mediator-side operators
//! work on whole relations, which keeps the byte accounting — the
//! quantity the experiments measure — unaffected.

pub mod aggregate;
pub mod fragment;
pub mod join;
pub mod keys;
pub mod options;
pub mod physical;
pub mod planner;

pub use options::{ExecOptions, JoinStrategy};
pub use physical::{ExecContext, PhysicalPlan};
pub use planner::create_physical_plan;
