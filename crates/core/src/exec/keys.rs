//! The shared vectorized key pipeline driving the mediator kernels.
//!
//! Hash join, GROUP BY and DISTINCT all need the same thing: "which
//! rows share a key tuple?". The old kernels answered it by building
//! a boxed `Vec<Value>` per row — one heap allocation plus enum
//! dispatch on the hot path. This module answers it columnar:
//!
//! * [`group_rows`] assigns every row a dense group id (first
//!   occurrence defines the group, ids numbered in first-occurrence
//!   order), which is GROUP BY and DISTINCT in one primitive.
//! * [`equi_join_pairs`] produces the matched `(left, right)` row
//!   pairs of an equi-join, NULL keys excluded, in the exact
//!   lexicographic order the serial reference emits.
//!
//! Both pick one of two representations per call. When
//! [`gis_types::keys::FixedKeyLayout`] covers the key tuple, rows
//! encode to exact `u128`s and the table needs no collision
//! verification at all. Otherwise rows get a 64-bit vectorized hash
//! ([`gis_types::keys::hash_rows`]) and bucket candidates are
//! verified with the columnar equality kernel
//! ([`gis_types::keys::rows_eq`]) — never by materializing `Value`s.
//!
//! Above [`KernelOptions::parallel_rows`] rows, both primitives
//! radix-partition by key hash and run one scoped thread per
//! partition (the same crossbeam pattern `physical.rs` uses for
//! parallel fetch). Identical keys share a hash, so they land in the
//! same partition and the per-partition results merge exactly — the
//! output is bit-identical to the serial path, which keeps
//! result-cache fingerprints and EXPLAIN ANALYZE row counts stable.
//!
//! ## The memory governor
//!
//! Every allocation the kernels make is *reserved first* against a
//! [`KernelGov`] — a per-query [`gis_types::mem::MemBudget`] plus
//! the query deadline. When a table reservation trips the soft
//! limit the kernel degrades instead of dying: key tags are
//! radix-spilled to [`gis_storage::spill`] temp files (16-way on
//! routing-hash bits 8.., disjoint from the parallel path's low
//! bits) and partitions are processed one at a time, recursing up to
//! [`SPILL_MAX_DEPTH`] levels when a partition is still too big.
//! Equal keys share a routing hash, so no group or match spans two
//! spill partitions and the same merge argument as the parallel path
//! makes spilled output bit-identical. When no degradation is left —
//! spill disabled, the disk cap hit, or the process pool exhausted —
//! the query is killed cooperatively with
//! [`GisError::ResourceExhausted`], checked (together with the
//! deadline) every [`CKPT_ROWS`] rows inside build, probe, and
//! partition-worker loops.

use crate::exec::options::ExecOptions;
use gis_observe::span::format_us;
use gis_observe::Span;
use gis_storage::spill::{SpillFile, SpillRecord, SpillWriter};
use gis_types::error::{GisError, Result};
use gis_types::keys::{
    encode_fixed, hash_rows, hash_u128, rows_eq, BuildPrehashed, FixedKeyLayout,
};
use gis_types::mem::{MemBudget, MemPressure, UNLIMITED};
use gis_types::Array;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Chain-list terminator for the intrusive hash-table chains below.
const NONE: u32 = u32::MAX;

/// A `HashMap` keyed by pre-mixed hashes/encodings: no SipHash pass.
type PrehashedMap<K, V> = HashMap<K, V, BuildPrehashed>;

fn prehashed_map<K, V>(cap: usize) -> PrehashedMap<K, V> {
    HashMap::with_capacity_and_hasher(cap, BuildPrehashed)
}

/// Tuning knobs for the key kernels.
#[derive(Debug, Clone, Copy)]
pub struct KernelOptions {
    /// Input rows (build+probe for joins) at or above which the
    /// kernels radix-partition and run one thread per partition.
    /// `usize::MAX` keeps everything serial.
    pub parallel_rows: usize,
    /// Partition count for the parallel path (rounded down to a power
    /// of two, minimum 1).
    pub partitions: usize,
    /// Mask AND-ed onto every row hash. `u64::MAX` in production; a
    /// narrow mask (e.g. `0xF`) forces bucket collisions so tests can
    /// exercise the columnar verification path (it also disables the
    /// fixed-key fast path, which never collides).
    pub hash_mask: u64,
}

impl KernelOptions {
    /// Fully serial execution with production hashing.
    pub fn serial() -> KernelOptions {
        KernelOptions {
            parallel_rows: usize::MAX,
            partitions: 1,
            hash_mask: u64::MAX,
        }
    }

    /// Kernel knobs derived from the session's [`ExecOptions`]:
    /// the parallelism threshold comes from
    /// [`ExecOptions::parallel_kernel_rows`], the partition count from
    /// the host's available parallelism (capped at 8).
    pub fn from_exec(options: &ExecOptions) -> KernelOptions {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        KernelOptions {
            parallel_rows: options.parallel_kernel_rows,
            partitions: cores.min(8),
            hash_mask: u64::MAX,
        }
    }

    /// Effective partition count: the largest power of two ≤
    /// `partitions` (and ≥ 1).
    fn effective_partitions(&self) -> usize {
        let p = self.partitions.max(1);
        1 << (usize::BITS - 1 - p.leading_zeros())
    }

    /// True when `n` input rows should take the partitioned path.
    fn go_parallel(&self, n: usize) -> bool {
        n >= self.parallel_rows && self.effective_partitions() > 1
    }
}

/// Cooperative-cancellation cadence: budget-kill and deadline checks
/// run every this many rows inside kernel loops (including partition
/// worker threads).
pub const CKPT_ROWS: usize = 4096;
const CKPT_MASK: usize = CKPT_ROWS - 1;

/// Spill fan-out: partitions per level of the radix spill.
const SPILL_FAN: usize = 16;
/// Maximum spill recursion depth; a partition still over budget at
/// this depth is processed in memory with a forced reservation
/// rather than killed (the alternative would never terminate on
/// degenerate keys).
pub const SPILL_MAX_DEPTH: u32 = 8;
/// Partitions at or below this many records are never re-spilled:
/// recursion cannot meaningfully shrink them, and without a floor a
/// very tight budget would cascade tiny files 16-way per level.
const SPILL_FORCE_FLOOR: u64 = 1024;

/// Spill routing: 4 bits per level starting at bit 8 of the routing
/// hash, disjoint from the low bits the parallel path partitions on.
fn spill_bucket(route: u64, depth: u32) -> usize {
    ((route >> (8 + 4 * depth)) & (SPILL_FAN as u64 - 1)) as usize
}

/// Estimated table bytes per input row (hash-map entry, chain links,
/// and the kernel's output share) — deliberately a round pessimistic
/// constant: the governor bounds order-of-magnitude blowups, not
/// malloc bytes.
const GROUP_TABLE_COST: u64 = 32;
/// Estimated build-table bytes per build-side row for joins.
const JOIN_BUILD_COST: u64 = 28;
/// Join output pairs are reserved in chunks of this many pairs.
const PAIR_CHUNK: usize = 4096;

/// The per-kernel governor handle: the query's memory budget plus
/// its deadline, threaded from `ExecContext` into every kernel and
/// every partition worker.
#[derive(Debug, Clone, Copy)]
pub struct KernelGov<'a> {
    budget: &'a MemBudget,
    deadline: Option<Instant>,
    query_id: u64,
}

impl<'a> KernelGov<'a> {
    /// A governor for one query.
    pub fn new(budget: &'a MemBudget, deadline: Option<Instant>, query_id: u64) -> KernelGov<'a> {
        KernelGov {
            budget,
            deadline,
            query_id,
        }
    }

    /// No budget, no deadline: the pre-governor behavior. Kernels
    /// run under this handle can never fail or spill.
    pub fn unbounded() -> KernelGov<'static> {
        KernelGov {
            budget: &UNLIMITED,
            deadline: None,
            query_id: 0,
        }
    }

    /// The budget behind this governor.
    pub fn budget(&self) -> &'a MemBudget {
        self.budget
    }

    /// True for the shared no-op budget: accounting is skipped
    /// entirely so ungoverned kernels pay nothing.
    fn is_unbounded(&self) -> bool {
        std::ptr::eq(self.budget, &UNLIMITED)
    }

    /// Cooperative cancellation point: errors when the budget was
    /// killed (pool or disk exhaustion, possibly by a sibling
    /// worker) or the query deadline has passed. Kernel loops call
    /// this every [`CKPT_ROWS`] rows.
    pub fn checkpoint(&self) -> Result<()> {
        if self.budget.is_killed() {
            return Err(GisError::ResourceExhausted(format!(
                "query {} cancelled mid-kernel: memory budget exhausted",
                self.query_id
            )));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(GisError::Deadline(format!(
                    "query {} exceeded its deadline; kernel cancelled mid-partition",
                    self.query_id
                )));
            }
        }
        Ok(())
    }
}

/// Scoped reservation ledger for one kernel invocation: tracks what
/// this kernel reserved so everything is returned on drop — success,
/// spill, and kill paths alike.
pub(crate) struct MemScope<'a> {
    gov: KernelGov<'a>,
    reserved: AtomicU64,
    peak: AtomicU64,
}

impl<'a> MemScope<'a> {
    pub fn new(gov: KernelGov<'a>) -> MemScope<'a> {
        MemScope {
            gov,
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    fn note(&self, bytes: u64) {
        let next = self
            .reserved
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        self.peak.fetch_max(next, Ordering::Relaxed);
    }

    /// Reserves bytes the kernel could avoid by spilling. `Ok(true)`
    /// = reserved; `Ok(false)` = soft-limit pressure and spilling is
    /// available — degrade instead; `Err` = kill (pool exhausted, or
    /// soft limit hit with spilling disabled).
    pub fn reserve_spillable(&self, bytes: u64, what: &str) -> Result<bool> {
        if self.gov.is_unbounded() {
            return Ok(true);
        }
        match self.gov.budget.try_reserve(bytes) {
            Ok(()) => {
                self.note(bytes);
                Ok(true)
            }
            Err(MemPressure::Budget) if self.gov.budget.can_spill() => Ok(false),
            Err(p) => Err(p.into_error(what)),
        }
    }

    /// Reserves bytes the kernel cannot run without (key tags,
    /// outputs). Soft-limit overage is tolerated when spilling is
    /// enabled — the kernel has already degraded as far as it can —
    /// and kills otherwise. Pool exhaustion always kills.
    pub fn reserve_required(&self, bytes: u64, what: &str) -> Result<()> {
        if self.gov.is_unbounded() {
            return Ok(());
        }
        match self.gov.budget.try_reserve(bytes) {
            Ok(()) => {
                self.note(bytes);
                Ok(())
            }
            Err(MemPressure::Budget) if self.gov.budget.can_spill() => {
                self.gov
                    .budget
                    .force_reserve(bytes)
                    .map_err(|p| p.into_error(what))?;
                self.note(bytes);
                Ok(())
            }
            Err(p) => Err(p.into_error(what)),
        }
    }

    /// Returns part of the scope's reservation early (e.g. tag
    /// arrays dropped once spilled).
    pub fn release(&self, bytes: u64) {
        let give = bytes.min(self.reserved.load(Ordering::Relaxed));
        self.reserved.fetch_sub(give, Ordering::Relaxed);
        self.gov.budget.release(give);
    }

    /// High-water mark of this kernel's reservations.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

impl Drop for MemScope<'_> {
    fn drop(&mut self) {
        let residual = self.reserved.swap(0, Ordering::Relaxed);
        self.gov.budget.release(residual);
    }
}

/// What a kernel invocation did, for EXPLAIN ANALYZE.
#[derive(Debug, Clone, Copy)]
pub struct KernelStats {
    /// `fixed` / `hashed`, with a `-par` suffix on the partitioned
    /// path and a `-spill` suffix on the spilled path.
    pub mode: &'static str,
    /// Partitions used (1 = serial).
    pub partitions: usize,
    /// Time spent hashing/encoding keys and building tables.
    pub build_us: u64,
    /// Time spent probing / assigning group ids (including the
    /// parallel merge).
    pub probe_us: u64,
    /// High-water mark of bytes this kernel reserved against the
    /// query's memory budget (0 under an unbounded governor).
    pub mem_bytes: u64,
    /// Bytes written to spill files (0 when the kernel stayed in
    /// memory).
    pub spill_bytes: u64,
    /// Spill partition files written, across all recursion levels.
    pub spill_parts: usize,
}

impl KernelStats {
    /// Renders the stats as a child span for the owning operator.
    pub fn to_span(&self) -> Span {
        Span::leaf(format!(
            "kernel[{}]: partitions={} build={} probe={}",
            self.mode,
            self.partitions,
            format_us(self.build_us),
            format_us(self.probe_us)
        ))
    }

    /// Governor spans rendered next to the kernel span in EXPLAIN
    /// ANALYZE: a `mem[...]` span when the kernel reserved budget
    /// bytes and a `spill[...]` span when it spilled.
    pub fn governor_spans(&self) -> Vec<Span> {
        let mut spans = Vec::new();
        if self.mem_bytes > 0 {
            spans.push(Span::leaf(format!(
                "mem[kernel]: reserved_peak_bytes={}",
                self.mem_bytes
            )));
        }
        if self.spill_bytes > 0 {
            spans.push(Span::leaf(format!(
                "spill[kernel]: parts={} bytes={}",
                self.spill_parts, self.spill_bytes
            )));
        }
        spans
    }
}

/// The result of [`group_rows`]: a dense group id per row plus each
/// group's first-occurrence row (ids are numbered in first-occurrence
/// order, so `representatives` is strictly ascending).
#[derive(Debug, Clone)]
pub struct Grouping {
    /// `group_of_row[r]` is the group id of row `r`.
    pub group_of_row: Vec<u32>,
    /// `representatives[g]` is the first row of group `g`.
    pub representatives: Vec<u32>,
}

impl Grouping {
    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.representatives.len()
    }
}

/// Per-row key tags: either exact fixed-width encodings or masked
/// 64-bit hashes that need verification.
enum KeyTags {
    Fixed(Vec<u128>),
    Hashed(Vec<u64>),
}

impl KeyTags {
    fn compute(cols: &[&Array], n: usize, opts: &KernelOptions) -> KeyTags {
        if opts.hash_mask == u64::MAX {
            if let Some(layout) = FixedKeyLayout::plan(&[cols]) {
                return KeyTags::Fixed(encode_fixed(cols, n, &layout));
            }
        }
        let mut hashes = hash_rows(cols, n);
        if opts.hash_mask != u64::MAX {
            for h in &mut hashes {
                *h &= opts.hash_mask;
            }
        }
        KeyTags::Hashed(hashes)
    }

    /// The partition-routing hash of row `i`.
    fn route(&self, i: usize) -> u64 {
        match self {
            KeyTags::Fixed(k) => hash_u128(k[i]),
            KeyTags::Hashed(h) => h[i],
        }
    }

    fn mode(&self, parallel: bool) -> &'static str {
        match (self, parallel) {
            (KeyTags::Fixed(_), false) => "fixed",
            (KeyTags::Fixed(_), true) => "fixed-par",
            (KeyTags::Hashed(_), false) => "hashed",
            (KeyTags::Hashed(_), true) => "hashed-par",
        }
    }

    fn mode_spilled(&self) -> &'static str {
        match self {
            KeyTags::Fixed(_) => "fixed-spill",
            KeyTags::Hashed(_) => "hashed-spill",
        }
    }

    /// Bytes of one tag (16 fixed, 8 hashed).
    fn tag_width(&self) -> u64 {
        match self {
            KeyTags::Fixed(_) => 16,
            KeyTags::Hashed(_) => 8,
        }
    }

    /// Heap bytes held by the tag array itself.
    fn heap_bytes(&self) -> u64 {
        match self {
            KeyTags::Fixed(k) => k.len() as u64 * 16,
            KeyTags::Hashed(h) => h.len() as u64 * 8,
        }
    }

    fn is_fixed(&self) -> bool {
        matches!(self, KeyTags::Fixed(_))
    }

    /// The spill record for row `i`.
    fn record(&self, i: usize) -> SpillRecord {
        match self {
            KeyTags::Fixed(k) => SpillRecord::Fixed {
                row: i as u32,
                key: k[i],
            },
            KeyTags::Hashed(h) => SpillRecord::Hashed {
                row: i as u32,
                hash: h[i],
            },
        }
    }
}

/// The routing hash of a spilled record (same as [`KeyTags::route`]
/// for the corresponding in-memory tag).
fn record_route(record: &SpillRecord) -> u64 {
    match record {
        SpillRecord::Fixed { key, .. } => hash_u128(*key),
        SpillRecord::Hashed { hash, .. } => *hash,
    }
}

/// The groups of one row subset: first-occurrence rows plus each
/// position's local group id (parallel to the input `rows` slice).
/// No per-group member vectors — the merge only needs these two.
struct SubsetGroups {
    reps: Vec<u32>,
    gid_of_pos: Vec<u32>,
}

/// Groups the `rows` subset (groups numbered in first-occurrence
/// order within the subset). With `positional` the tag of `rows[p]`
/// is `tags[p]` (the spilled-partition layout, where tags were read
/// back from a spill file); otherwise tags index by global row id.
/// Checks the governor every [`CKPT_ROWS`] rows — this is the
/// cancellation point inside partition worker threads.
fn group_subset(
    cols: &[&Array],
    tags: &KeyTags,
    rows: &[u32],
    positional: bool,
    gov: &KernelGov<'_>,
) -> Result<SubsetGroups> {
    let mut reps: Vec<u32> = Vec::new();
    let mut gid_of_pos: Vec<u32> = Vec::with_capacity(rows.len());
    match tags {
        KeyTags::Fixed(keys) => {
            // Exact encodings: the u128 *is* the key, no verification.
            let mut table: PrehashedMap<u128, u32> = prehashed_map(rows.len());
            for (pos, &row) in rows.iter().enumerate() {
                if pos & CKPT_MASK == 0 {
                    gov.checkpoint()?;
                }
                let tag_idx = if positional { pos } else { row as usize };
                let g = match table.entry(keys[tag_idx]) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let g = reps.len() as u32;
                        e.insert(g);
                        reps.push(row);
                        g
                    }
                };
                gid_of_pos.push(g);
            }
        }
        KeyTags::Hashed(hashes) => {
            // hash → first group id; colliding groups chain through
            // `sibling` (gid → next gid with the same hash). Each
            // candidate is verified with the columnar equality kernel
            // against the group's representative row.
            let mut table: PrehashedMap<u64, u32> = prehashed_map(rows.len());
            let mut sibling: Vec<u32> = Vec::new();
            for (pos, &row) in rows.iter().enumerate() {
                if pos & CKPT_MASK == 0 {
                    gov.checkpoint()?;
                }
                let tag_idx = if positional { pos } else { row as usize };
                let g = match table.entry(hashes[tag_idx]) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let g = reps.len() as u32;
                        e.insert(g);
                        reps.push(row);
                        sibling.push(NONE);
                        g
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let mut g = *e.get();
                        loop {
                            if rows_eq(cols, row as usize, cols, reps[g as usize] as usize) {
                                break g;
                            }
                            if sibling[g as usize] == NONE {
                                let fresh = reps.len() as u32;
                                reps.push(row);
                                sibling.push(NONE);
                                sibling[g as usize] = fresh;
                                break fresh;
                            }
                            g = sibling[g as usize];
                        }
                    }
                };
                gid_of_pos.push(g);
            }
        }
    }
    Ok(SubsetGroups { reps, gid_of_pos })
}

/// Splits `0..n` into per-partition row lists by routing hash.
fn partition_rows(tags: &KeyTags, n: usize, parts: usize) -> Vec<Vec<u32>> {
    let mask = (parts - 1) as u64;
    let mut out: Vec<Vec<u32>> = vec![Vec::with_capacity(n / parts + 1); parts];
    for i in 0..n {
        out[(tags.route(i) & mask) as usize].push(i as u32);
    }
    out
}

/// Assigns every row of the `cols` key tuple a dense group id.
///
/// Ungoverned convenience wrapper over [`group_rows_gov`] — no
/// budget, no deadline, never spills, never fails.
pub fn group_rows(cols: &[&Array], n: usize, opts: &KernelOptions) -> (Grouping, KernelStats) {
    group_rows_gov(cols, n, opts, &KernelGov::unbounded()).expect("unbounded kernel cannot fail")
}

/// Assigns every row of the `cols` key tuple a dense group id, under
/// a memory governor.
///
/// Zero key columns mean one global group (the GROUP-BY-nothing
/// shape); zero rows mean zero groups. NULL keys group together and
/// NaN groups with NaN, per the pinned semantics in
/// [`gis_types::keys`]. Group ids are numbered in first-occurrence
/// order — identical to what the `Vec<Value>` reference produced —
/// on the serial, partitioned, *and* spilled paths.
///
/// Memory discipline: key tags and the output are reserved as
/// required (tolerated past the soft limit when spilling is on);
/// the hash table is reserved as spillable — on soft pressure the
/// kernel radix-spills the tags to disk and processes one partition
/// at a time. Errors with [`GisError::ResourceExhausted`] only when
/// no degradation remains, or [`GisError::Deadline`] at an expired
/// checkpoint.
pub fn group_rows_gov(
    cols: &[&Array],
    n: usize,
    opts: &KernelOptions,
    gov: &KernelGov<'_>,
) -> Result<(Grouping, KernelStats)> {
    if cols.is_empty() || n == 0 {
        let grouping = Grouping {
            group_of_row: vec![0; n],
            representatives: if n == 0 { vec![] } else { vec![0] },
        };
        return Ok((
            grouping,
            KernelStats {
                mode: "trivial",
                partitions: 1,
                build_us: 0,
                probe_us: 0,
                mem_bytes: 0,
                spill_bytes: 0,
                spill_parts: 0,
            },
        ));
    }
    gov.checkpoint()?;
    let mem = MemScope::new(*gov);
    let t0 = Instant::now();
    let tags = KeyTags::compute(cols, n, opts);
    mem.reserve_required(tags.heap_bytes(), "group-by key tags")?;
    let build_us = t0.elapsed().as_micros() as u64;
    let t1 = Instant::now();
    // One spillable reservation covers the hash table, the output
    // arrays, and (on the parallel path) the partition row lists.
    let table_bytes = n as u64 * GROUP_TABLE_COST;
    if !mem.reserve_spillable(table_bytes, "group-by hash table")? {
        gov.budget().note_spill_event();
        let (grouping, spill_bytes, spill_parts) = group_spilled(cols, &tags, n, gov, &mem)?;
        let stats = KernelStats {
            mode: tags.mode_spilled(),
            partitions: spill_parts.max(1),
            build_us,
            probe_us: t1.elapsed().as_micros() as u64,
            mem_bytes: mem.peak(),
            spill_bytes,
            spill_parts,
        };
        return Ok((grouping, stats));
    }
    if !opts.go_parallel(n) {
        let all: Vec<u32> = (0..n as u32).collect();
        let sub = group_subset(cols, &tags, &all, false, gov)?;
        let probe_us = t1.elapsed().as_micros() as u64;
        let grouping = Grouping {
            group_of_row: sub.gid_of_pos,
            representatives: sub.reps,
        };
        let stats = KernelStats {
            mode: tags.mode(false),
            partitions: 1,
            build_us,
            probe_us,
            mem_bytes: mem.peak(),
            spill_bytes: 0,
            spill_parts: 0,
        };
        return Ok((grouping, stats));
    }
    let parts = opts.effective_partitions();
    let partitions = partition_rows(&tags, n, parts);
    let per_part: Vec<SubsetGroups> = crossbeam::thread::scope(|s| {
        let tags = &tags;
        let handles: Vec<_> = partitions
            .iter()
            .map(|rows| s.spawn(move |_| group_subset(cols, tags, rows, false, gov)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel partition thread panicked"))
            .collect::<Result<Vec<_>>>()
    })
    .expect("crossbeam scope")?;
    // Identical keys share a routing hash, so no group spans two
    // partitions: sorting by first-occurrence row recovers the exact
    // serial group numbering, then local ids remap to global ones.
    let mut order: Vec<(u32, u32, u32)> = Vec::new();
    for (p, sub) in per_part.iter().enumerate() {
        for (local, &rep) in sub.reps.iter().enumerate() {
            order.push((rep, p as u32, local as u32));
        }
    }
    order.sort_unstable_by_key(|&(rep, _, _)| rep);
    let mut remap: Vec<Vec<u32>> = per_part.iter().map(|s| vec![0; s.reps.len()]).collect();
    let mut representatives = Vec::with_capacity(order.len());
    for (g, &(rep, p, local)) in order.iter().enumerate() {
        remap[p as usize][local as usize] = g as u32;
        representatives.push(rep);
    }
    let mut group_of_row = vec![0u32; n];
    for (p, (rows, sub)) in partitions.iter().zip(&per_part).enumerate() {
        for (pos, &row) in rows.iter().enumerate() {
            group_of_row[row as usize] = remap[p][sub.gid_of_pos[pos] as usize];
        }
    }
    let probe_us = t1.elapsed().as_micros() as u64;
    let stats = KernelStats {
        mode: tags.mode(true),
        partitions: parts,
        build_us,
        probe_us,
        mem_bytes: mem.peak(),
        spill_bytes: 0,
        spill_parts: 0,
    };
    Ok((
        Grouping {
            group_of_row,
            representatives,
        },
        stats,
    ))
}

/// Writes one spill partition pass: every row of `tags` routed into
/// [`SPILL_FAN`] files by [`spill_bucket`] at `depth`. Disk bytes
/// are charged against the budget's spill cap.
fn spill_all_rows(
    tags: &KeyTags,
    n: usize,
    depth: u32,
    gov: &KernelGov<'_>,
) -> Result<Vec<SpillFile>> {
    let mut writers: Vec<SpillWriter> = (0..SPILL_FAN)
        .map(|_| {
            SpillWriter::create(
                gov.budget().spill_dir().map(|p| p.as_path()),
                tags.is_fixed(),
            )
        })
        .collect::<Result<_>>()?;
    for i in 0..n {
        if i & CKPT_MASK == 0 {
            gov.checkpoint()?;
        }
        writers[spill_bucket(tags.route(i), depth)].push(tags.record(i))?;
    }
    finish_spill(writers, gov, "spill partition pass")
}

/// Streams `file` into [`SPILL_FAN`] sub-files one level deeper —
/// the recursion step when a partition is still over budget.
fn respill(file: &SpillFile, depth: u32, gov: &KernelGov<'_>) -> Result<Vec<SpillFile>> {
    let mut writers: Vec<SpillWriter> = (0..SPILL_FAN)
        .map(|_| {
            SpillWriter::create(
                gov.budget().spill_dir().map(|p| p.as_path()),
                file.is_fixed(),
            )
        })
        .collect::<Result<_>>()?;
    let mut i = 0usize;
    file.for_each(|record| {
        if i & CKPT_MASK == 0 {
            gov.checkpoint()?;
        }
        i += 1;
        writers[spill_bucket(record_route(&record), depth)].push(record)
    })?;
    finish_spill(writers, gov, "recursive spill pass")
}

/// Seals a set of spill writers, charging their bytes to the budget.
fn finish_spill(
    writers: Vec<SpillWriter>,
    gov: &KernelGov<'_>,
    what: &str,
) -> Result<Vec<SpillFile>> {
    let total: u64 = writers.iter().map(|w| w.bytes()).sum();
    gov.budget()
        .charge_spill(total)
        .map_err(|p| p.into_error(what))?;
    writers.into_iter().map(|w| w.finish()).collect()
}

/// Reads a spill partition back: rows in write (= input) order plus
/// positional tags.
fn read_partition(file: &SpillFile) -> Result<(Vec<u32>, KeyTags)> {
    let n = file.records() as usize;
    let mut rows = Vec::with_capacity(n);
    if file.is_fixed() {
        let mut keys = Vec::with_capacity(n);
        file.for_each(|r| {
            if let SpillRecord::Fixed { row, key } = r {
                rows.push(row);
                keys.push(key);
            }
            Ok(())
        })?;
        Ok((rows, KeyTags::Fixed(keys)))
    } else {
        let mut hashes = Vec::with_capacity(n);
        file.for_each(|r| {
            if let SpillRecord::Hashed { row, hash } = r {
                rows.push(row);
                hashes.push(hash);
            }
            Ok(())
        })?;
        Ok((rows, KeyTags::Hashed(hashes)))
    }
}

/// Grace-hash GROUP BY: tags spilled 16-way, partitions grouped one
/// at a time (recursing on partitions still over budget), results
/// merged by first-occurrence representative — bit-identical to the
/// serial path because equal keys share a routing hash and therefore
/// a partition file at every depth.
fn group_spilled(
    cols: &[&Array],
    tags: &KeyTags,
    n: usize,
    gov: &KernelGov<'_>,
    mem: &MemScope<'_>,
) -> Result<(Grouping, u64, usize)> {
    let tag_width = tags.tag_width();
    let files = spill_all_rows(tags, n, 0, gov)?;
    // The tag array is no longer needed in memory — the files carry
    // the tags — but the caller still owns it; give its reservation
    // back so partition processing has room. (The Vec itself is
    // freed when the caller's `tags` drops; the governor tracks
    // reservations, not allocator frees.)
    mem.release(tags.heap_bytes());
    mem.reserve_required(n as u64 * 4, "group-by output")?;
    let mut group_of_row = vec![0u32; n];
    let mut all_reps: Vec<u32> = Vec::new();
    let mut spill_bytes: u64 = files.iter().map(|f| f.bytes()).sum();
    let mut spill_parts = files.len();
    let mut stack: Vec<(SpillFile, u32)> = files.into_iter().rev().map(|f| (f, 0)).collect();
    while let Some((file, depth)) = stack.pop() {
        gov.checkpoint()?;
        let records = file.records();
        if records == 0 {
            continue;
        }
        let part_bytes = records * (4 + tag_width + GROUP_TABLE_COST);
        let reserved = mem.reserve_spillable(part_bytes, "spilled group partition")?;
        if !reserved && depth < SPILL_MAX_DEPTH && records > SPILL_FORCE_FLOOR {
            let subs = respill(&file, depth + 1, gov)?;
            spill_bytes += subs.iter().map(|f| f.bytes()).sum::<u64>();
            spill_parts += subs.len();
            stack.extend(subs.into_iter().rev().map(|f| (f, depth + 1)));
            continue;
        }
        if !reserved {
            // Max depth: degenerate keys defeat partitioning (e.g. a
            // single hot key). Process in memory anyway — the budget
            // tolerates forced overage while spilling is enabled.
            mem.reserve_required(part_bytes, "spilled group partition (max depth)")?;
        }
        let (rows, ptags) = read_partition(&file)?;
        let sub = group_subset(cols, &ptags, &rows, true, gov)?;
        let base = all_reps.len() as u32;
        for (pos, &row) in rows.iter().enumerate() {
            group_of_row[row as usize] = base + sub.gid_of_pos[pos];
        }
        all_reps.extend_from_slice(&sub.reps);
        mem.release(part_bytes);
    }
    // Same merge as the parallel path: global ids are the rank of
    // each group's first-occurrence row.
    let mut order: Vec<u32> = (0..all_reps.len() as u32).collect();
    order.sort_unstable_by_key(|&tmp| all_reps[tmp as usize]);
    let mut remap = vec![0u32; all_reps.len()];
    let mut representatives = Vec::with_capacity(all_reps.len());
    for (g, &tmp) in order.iter().enumerate() {
        remap[tmp as usize] = g as u32;
        representatives.push(all_reps[tmp as usize]);
    }
    for gid in &mut group_of_row {
        *gid = remap[*gid as usize];
    }
    Ok((
        Grouping {
            group_of_row,
            representatives,
        },
        spill_bytes,
        spill_parts,
    ))
}

/// True when any key column is NULL at `row` (such rows never join).
fn any_null(cols: &[&Array], row: usize) -> bool {
    cols.iter().any(|c| !c.is_valid(row))
}

/// Build+probe over one (left, right) row subset. `pairs` receives
/// `(l, r)` in lexicographic order given ascending inputs. With
/// `positional` the tag of `lrows[p]` / `rrows[p]` is index `p` of
/// the respective tag array (spilled-partition layout). Output pairs
/// are budget-reserved in [`PAIR_CHUNK`] blocks; the governor is
/// checked every [`CKPT_ROWS`] rows on both loops.
#[allow(clippy::too_many_arguments)]
fn join_subset(
    left: &[&Array],
    right: &[&Array],
    ltags: &KeyTags,
    rtags: &KeyTags,
    lrows: &[u32],
    rrows: &[u32],
    positional: bool,
    gov: &KernelGov<'_>,
    mem: &MemScope<'_>,
    pairs: &mut Vec<(u32, u32)>,
) -> Result<()> {
    // Build: key → (first, last) positions into `rrows`, entries of
    // one bucket chained in insertion order through `next` — O(1)
    // insert with no per-key vector, traversal yields ascending `r`.
    macro_rules! build {
        ($keys:expr, $K:ty) => {{
            let mut head: PrehashedMap<$K, (u32, u32)> = prehashed_map(rrows.len());
            let mut next: Vec<u32> = vec![NONE; rrows.len()];
            for (pos, &r) in rrows.iter().enumerate() {
                if pos & CKPT_MASK == 0 {
                    gov.checkpoint()?;
                }
                if any_null(right, r as usize) {
                    continue;
                }
                let tag_idx = if positional { pos } else { r as usize };
                match head.entry($keys[tag_idx]) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (_, last) = e.get_mut();
                        next[*last as usize] = pos as u32;
                        *last = pos as u32;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((pos as u32, pos as u32));
                    }
                }
            }
            (head, next)
        }};
    }
    macro_rules! emit {
        ($pair:expr) => {{
            if pairs.len() % PAIR_CHUNK == 0 {
                mem.reserve_required((PAIR_CHUNK * 8) as u64, "join output pairs")?;
            }
            pairs.push($pair);
        }};
    }
    match (ltags, rtags) {
        (KeyTags::Fixed(lk), KeyTags::Fixed(rk)) => {
            // Exact encodings: every chain entry is a true match.
            let (head, next) = build!(rk, u128);
            for (lpos, &l) in lrows.iter().enumerate() {
                if lpos & CKPT_MASK == 0 {
                    gov.checkpoint()?;
                }
                if any_null(left, l as usize) {
                    continue;
                }
                let tag_idx = if positional { lpos } else { l as usize };
                if let Some(&(first, _)) = head.get(&lk[tag_idx]) {
                    let mut p = first;
                    loop {
                        emit!((l, rrows[p as usize]));
                        p = next[p as usize];
                        if p == NONE {
                            break;
                        }
                    }
                }
            }
        }
        (KeyTags::Hashed(lh), KeyTags::Hashed(rh)) => {
            // Chains may mix keys that collide on the hash: verify
            // each candidate columnar before emitting the pair.
            let (head, next) = build!(rh, u64);
            for (lpos, &l) in lrows.iter().enumerate() {
                if lpos & CKPT_MASK == 0 {
                    gov.checkpoint()?;
                }
                if any_null(left, l as usize) {
                    continue;
                }
                let tag_idx = if positional { lpos } else { l as usize };
                if let Some(&(first, _)) = head.get(&lh[tag_idx]) {
                    let mut p = first;
                    loop {
                        let r = rrows[p as usize];
                        if rows_eq(left, l as usize, right, r as usize) {
                            emit!((l, r));
                        }
                        p = next[p as usize];
                        if p == NONE {
                            break;
                        }
                    }
                }
            }
        }
        _ => unreachable!("both sides share one layout decision"),
    }
    Ok(())
}

/// Matched `(left_row, right_row)` pairs of the equi-join
/// `left == right` — ungoverned convenience wrapper over
/// [`equi_join_pairs_gov`]: no budget, no deadline, never spills,
/// never fails.
pub fn equi_join_pairs(
    left: &[&Array],
    right: &[&Array],
    opts: &KernelOptions,
) -> (Vec<(u32, u32)>, KernelStats) {
    equi_join_pairs_gov(left, right, opts, &KernelGov::unbounded())
        .expect("unbounded kernel cannot fail")
}

/// Matched `(left_row, right_row)` pairs of the equi-join
/// `left == right`, NULL keys on either side excluded, in
/// lexicographic `(l, r)` order — exactly the order (and content) of
/// the serial `Vec<Value>` reference, on the serial, partitioned,
/// and spilled paths.
///
/// The caller must pass key columns of identical data types per
/// position (cast beforehand); mismatched positions still compare
/// correctly via the `Value` fallback but won't hash-match.
///
/// Memory discipline mirrors [`group_rows_gov`]: tags and output
/// pairs are required reservations, the build table is spillable —
/// on soft pressure both sides radix-spill to disk and partitions
/// are joined one at a time (grace hash), recursing when a partition
/// pair is still over budget.
pub fn equi_join_pairs_gov(
    left: &[&Array],
    right: &[&Array],
    opts: &KernelOptions,
    gov: &KernelGov<'_>,
) -> Result<(Vec<(u32, u32)>, KernelStats)> {
    let ln = left.first().map_or(0, |c| c.len());
    let rn = right.first().map_or(0, |c| c.len());
    gov.checkpoint()?;
    let mem = MemScope::new(*gov);
    let t0 = Instant::now();
    // One layout decision covers both sides so tags are comparable.
    let (ltags, rtags) = {
        let fixed = opts.hash_mask == u64::MAX && FixedKeyLayout::plan(&[left, right]).is_some();
        if fixed {
            let layout = FixedKeyLayout::plan(&[left, right]).expect("planned above");
            (
                KeyTags::Fixed(encode_fixed(left, ln, &layout)),
                KeyTags::Fixed(encode_fixed(right, rn, &layout)),
            )
        } else {
            let mask = opts.hash_mask;
            let mut lh = hash_rows(left, ln);
            let mut rh = hash_rows(right, rn);
            if mask != u64::MAX {
                lh.iter_mut().for_each(|h| *h &= mask);
                rh.iter_mut().for_each(|h| *h &= mask);
            }
            (KeyTags::Hashed(lh), KeyTags::Hashed(rh))
        }
    };
    mem.reserve_required(ltags.heap_bytes() + rtags.heap_bytes(), "join key tags")?;
    let build_us = t0.elapsed().as_micros() as u64;
    let t1 = Instant::now();
    // One spillable reservation covers the build table, probe row
    // lists, and (on the parallel path) the partition row lists.
    let table_bytes = rn as u64 * JOIN_BUILD_COST + (ln + rn) as u64 * 4;
    if !mem.reserve_spillable(table_bytes, "hash join build table")? {
        gov.budget().note_spill_event();
        let (pairs, spill_bytes, spill_parts) =
            join_spilled(left, right, &ltags, &rtags, ln, rn, gov, &mem)?;
        let stats = KernelStats {
            mode: ltags.mode_spilled(),
            partitions: spill_parts.max(1),
            build_us,
            probe_us: t1.elapsed().as_micros() as u64,
            mem_bytes: mem.peak(),
            spill_bytes,
            spill_parts,
        };
        return Ok((pairs, stats));
    }
    if !opts.go_parallel(ln + rn) {
        let lrows: Vec<u32> = (0..ln as u32).collect();
        let rrows: Vec<u32> = (0..rn as u32).collect();
        let mut pairs = Vec::new();
        join_subset(
            left, right, &ltags, &rtags, &lrows, &rrows, false, gov, &mem, &mut pairs,
        )?;
        let stats = KernelStats {
            mode: ltags.mode(false),
            partitions: 1,
            build_us,
            probe_us: t1.elapsed().as_micros() as u64,
            mem_bytes: mem.peak(),
            spill_bytes: 0,
            spill_parts: 0,
        };
        return Ok((pairs, stats));
    }
    let parts = opts.effective_partitions();
    let lparts = partition_rows(&ltags, ln, parts);
    let rparts = partition_rows(&rtags, rn, parts);
    let per_part: Vec<Vec<(u32, u32)>> = crossbeam::thread::scope(|s| {
        let (ltags, rtags) = (&ltags, &rtags);
        let mem = &mem;
        let handles: Vec<_> = lparts
            .iter()
            .zip(&rparts)
            .map(|(lrows, rrows)| {
                s.spawn(move |_| {
                    let mut pairs = Vec::new();
                    join_subset(
                        left, right, ltags, rtags, lrows, rrows, false, gov, mem, &mut pairs,
                    )?;
                    Ok(pairs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel partition thread panicked"))
            .collect::<Result<Vec<_>>>()
    })
    .expect("crossbeam scope")?;
    // Equal keys share a routing hash, so every match was found in
    // exactly one partition; sorting restores the serial order.
    let total: usize = per_part.iter().map(Vec::len).sum();
    mem.reserve_required(total as u64 * 8, "join pair merge")?;
    let mut pairs: Vec<(u32, u32)> = per_part.into_iter().flatten().collect();
    pairs.sort_unstable();
    let stats = KernelStats {
        mode: ltags.mode(true),
        partitions: parts,
        build_us,
        probe_us: t1.elapsed().as_micros() as u64,
        mem_bytes: mem.peak(),
        spill_bytes: 0,
        spill_parts: 0,
    };
    Ok((pairs, stats))
}

/// Grace-hash join: both sides' tags spilled 16-way on the shared
/// routing hash, bucket `b` of the left joined against bucket `b` of
/// the right, one pair of partitions at a time (recursing when a
/// pair is still over budget), the pair list sorted at the end —
/// exactly the parallel path's merge, so the output is bit-identical
/// to the serial path.
/// Pair list + spill bytes written + spill partitions touched.
type SpilledJoinOut = (Vec<(u32, u32)>, u64, usize);

#[allow(clippy::too_many_arguments)]
fn join_spilled(
    left: &[&Array],
    right: &[&Array],
    ltags: &KeyTags,
    rtags: &KeyTags,
    ln: usize,
    rn: usize,
    gov: &KernelGov<'_>,
    mem: &MemScope<'_>,
) -> Result<SpilledJoinOut> {
    let tag_width = ltags.tag_width();
    let lfiles = spill_all_rows(ltags, ln, 0, gov)?;
    let rfiles = spill_all_rows(rtags, rn, 0, gov)?;
    mem.release(ltags.heap_bytes() + rtags.heap_bytes());
    let mut spill_bytes: u64 = lfiles.iter().chain(&rfiles).map(|f| f.bytes()).sum();
    let mut spill_parts = lfiles.len() + rfiles.len();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut stack: Vec<(SpillFile, SpillFile, u32)> = lfiles
        .into_iter()
        .zip(rfiles)
        .rev()
        .map(|(l, r)| (l, r, 0))
        .collect();
    while let Some((lf, rf, depth)) = stack.pop() {
        gov.checkpoint()?;
        if lf.records() == 0 || rf.records() == 0 {
            // Nothing can match in this bucket (including the
            // zero-matching-rows shape: outer-join padding happens
            // in the caller from the pair list and presence sets).
            continue;
        }
        let part_bytes =
            (lf.records() + rf.records()) * (4 + tag_width) + rf.records() * JOIN_BUILD_COST;
        let reserved = mem.reserve_spillable(part_bytes, "spilled join partition")?;
        if !reserved && depth < SPILL_MAX_DEPTH && lf.records() + rf.records() > SPILL_FORCE_FLOOR {
            let lsubs = respill(&lf, depth + 1, gov)?;
            let rsubs = respill(&rf, depth + 1, gov)?;
            spill_bytes += lsubs.iter().chain(&rsubs).map(|f| f.bytes()).sum::<u64>();
            spill_parts += lsubs.len() + rsubs.len();
            stack.extend(
                lsubs
                    .into_iter()
                    .zip(rsubs)
                    .rev()
                    .map(|(l, r)| (l, r, depth + 1)),
            );
            continue;
        }
        if !reserved {
            mem.reserve_required(part_bytes, "spilled join partition (max depth)")?;
        }
        let (lrows, lptags) = read_partition(&lf)?;
        let (rrows, rptags) = read_partition(&rf)?;
        join_subset(
            left, right, &lptags, &rptags, &lrows, &rrows, true, gov, mem, &mut pairs,
        )?;
        mem.release(part_bytes);
    }
    pairs.sort_unstable();
    Ok((pairs, spill_bytes, spill_parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{ArrayBuilder, DataType, Value};

    fn int_col(vals: &[Option<i64>]) -> Array {
        let mut b = ArrayBuilder::new(DataType::Int64);
        for v in vals {
            match v {
                Some(x) => b.push_value(&Value::Int64(*x)).unwrap(),
                None => b.push_null(),
            }
        }
        b.finish()
    }

    fn str_col(vals: &[&str]) -> Array {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for v in vals {
            b.push_value(&Value::Utf8((*v).to_string())).unwrap();
        }
        b.finish()
    }

    /// A long string column defeats the fixed-width layout, forcing
    /// the hashed+verified path.
    fn wide_col(n: usize) -> Array {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for i in 0..n {
            b.push_value(&Value::Utf8(format!("row-{:060}", i % 7)))
                .unwrap();
        }
        b.finish()
    }

    fn forced_parallel() -> KernelOptions {
        KernelOptions {
            parallel_rows: 0,
            partitions: 4,
            hash_mask: u64::MAX,
        }
    }

    fn collide_all() -> KernelOptions {
        KernelOptions {
            parallel_rows: usize::MAX,
            partitions: 1,
            hash_mask: 0x3,
        }
    }

    #[test]
    fn grouping_matches_first_occurrence_order() {
        let c = int_col(&[Some(5), Some(1), Some(5), None, Some(1), None]);
        let (g, stats) = group_rows(&[&c], 6, &KernelOptions::serial());
        assert_eq!(stats.mode, "fixed");
        assert_eq!(g.representatives, vec![0, 1, 3]);
        assert_eq!(g.group_of_row, vec![0, 1, 0, 2, 1, 2]);
    }

    #[test]
    fn grouping_identical_across_all_paths() {
        let a = int_col(
            &(0..500)
                .map(|i| if i % 11 == 0 { None } else { Some(i % 13) })
                .collect::<Vec<_>>(),
        );
        let w = wide_col(500);
        let cols: Vec<&Array> = vec![&a, &w];
        let (serial, s1) = group_rows(&cols, 500, &KernelOptions::serial());
        assert_eq!(s1.mode, "hashed");
        let (par, s2) = group_rows(&cols, 500, &forced_parallel());
        assert_eq!(s2.mode, "hashed-par");
        assert_eq!(s2.partitions, 4);
        let (collided, s3) = group_rows(&cols, 500, &collide_all());
        assert_eq!(s3.mode, "hashed");
        assert_eq!(serial.group_of_row, par.group_of_row);
        assert_eq!(serial.representatives, par.representatives);
        assert_eq!(serial.group_of_row, collided.group_of_row);
        assert_eq!(serial.representatives, collided.representatives);
    }

    #[test]
    fn empty_key_and_empty_input_shapes() {
        let (g, _) = group_rows(&[], 4, &KernelOptions::serial());
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.group_of_row, vec![0, 0, 0, 0]);
        let (g, _) = group_rows(&[], 0, &KernelOptions::serial());
        assert_eq!(g.num_groups(), 0);
        let c = int_col(&[]);
        let (g, _) = group_rows(&[&c], 0, &KernelOptions::serial());
        assert_eq!(g.num_groups(), 0);
    }

    #[test]
    fn join_pairs_lexicographic_and_null_free() {
        let l = int_col(&[Some(1), Some(3), None, Some(1)]);
        let r = int_col(&[Some(3), Some(1), Some(1), None]);
        let (pairs, stats) = equi_join_pairs(&[&l], &[&r], &KernelOptions::serial());
        assert_eq!(stats.mode, "fixed");
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn join_identical_across_all_paths() {
        let lk = int_col(&(0..400).map(|i| Some(i % 17)).collect::<Vec<_>>());
        let lw = wide_col(400);
        let rk = int_col(&(0..300).map(|i| Some(i % 23)).collect::<Vec<_>>());
        let rw = wide_col(300);
        let left: Vec<&Array> = vec![&lk, &lw];
        let right: Vec<&Array> = vec![&rk, &rw];
        let (serial, s1) = equi_join_pairs(&left, &right, &KernelOptions::serial());
        assert_eq!(s1.mode, "hashed");
        let (par, s2) = equi_join_pairs(&left, &right, &forced_parallel());
        assert_eq!(s2.mode, "hashed-par");
        let (collided, _) = equi_join_pairs(&left, &right, &collide_all());
        assert_eq!(serial, par);
        assert_eq!(serial, collided);
        assert!(!serial.is_empty());
        assert!(serial.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn effective_partitions_rounds_down_to_power_of_two() {
        let mk = |p| KernelOptions {
            parallel_rows: 0,
            partitions: p,
            hash_mask: u64::MAX,
        };
        assert_eq!(mk(0).effective_partitions(), 1);
        assert_eq!(mk(1).effective_partitions(), 1);
        assert_eq!(mk(3).effective_partitions(), 2);
        assert_eq!(mk(6).effective_partitions(), 4);
        assert_eq!(mk(8).effective_partitions(), 8);
    }

    #[test]
    fn stats_render_as_span() {
        let c = str_col(&["a", "b", "a"]);
        let (_, stats) = group_rows(&[&c], 3, &KernelOptions::serial());
        let span = stats.to_span();
        assert!(span.label.starts_with("kernel[fixed]"), "{}", span.label);
    }

    /// A budget tight enough that every hash-table reservation fails
    /// softly, with ample spill room: the mem_tight shape.
    fn tight_budget() -> gis_types::MemBudget {
        gis_types::MemBudget::standalone(1, 1 << 30)
    }

    #[test]
    fn spilled_grouping_is_bit_identical() {
        let a = int_col(
            &(0..5000)
                .map(|i| if i % 11 == 0 { None } else { Some(i % 13) })
                .collect::<Vec<_>>(),
        );
        let w = wide_col(5000);
        for cols in [vec![&a], vec![&a, &w]] {
            let (reference, _) = group_rows(&cols, 5000, &KernelOptions::serial());
            let budget = tight_budget();
            let gov = KernelGov::new(&budget, None, 7);
            let (spilled, stats) =
                group_rows_gov(&cols, 5000, &KernelOptions::serial(), &gov).unwrap();
            assert!(stats.mode.ends_with("-spill"), "mode={}", stats.mode);
            assert!(stats.spill_parts > 0);
            assert!(stats.spill_bytes > 0);
            assert_eq!(reference.group_of_row, spilled.group_of_row);
            assert_eq!(reference.representatives, spilled.representatives);
            assert_eq!(budget.used(), 0, "all reservations returned");
            assert!(budget.spill_events() > 0);
        }
    }

    #[test]
    fn spilled_join_is_bit_identical() {
        let lk = int_col(&(0..2000).map(|i| Some(i % 17)).collect::<Vec<_>>());
        let lw = wide_col(2000);
        let rk = int_col(&(0..1500).map(|i| Some(i % 23)).collect::<Vec<_>>());
        let rw = wide_col(1500);
        for (left, right) in [(vec![&lk], vec![&rk]), (vec![&lk, &lw], vec![&rk, &rw])] {
            let (reference, _) = equi_join_pairs(&left, &right, &KernelOptions::serial());
            let budget = tight_budget();
            let gov = KernelGov::new(&budget, None, 7);
            let (spilled, stats) =
                equi_join_pairs_gov(&left, &right, &KernelOptions::serial(), &gov).unwrap();
            assert!(stats.mode.ends_with("-spill"), "mode={}", stats.mode);
            assert!(stats.spill_parts > 0);
            assert_eq!(reference, spilled);
            assert_eq!(budget.used(), 0, "all reservations returned");
        }
    }

    #[test]
    fn spilled_join_with_zero_matches() {
        let l = int_col(&(0..3000).map(Some).collect::<Vec<_>>());
        let r = int_col(&(0..3000).map(|i| Some(i + 1_000_000)).collect::<Vec<_>>());
        let budget = tight_budget();
        let gov = KernelGov::new(&budget, None, 1);
        let (pairs, stats) =
            equi_join_pairs_gov(&[&l], &[&r], &KernelOptions::serial(), &gov).unwrap();
        assert!(pairs.is_empty());
        assert!(stats.spill_parts > 0, "still spilled, found nothing");
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn recursive_spill_still_matches() {
        // 40k rows: depth-0 buckets hold ~2.5k records each, above
        // the force floor, so a 1-byte soft limit recurses at least
        // one level before partitions drop below the floor.
        let a = int_col(&(0..40_000).map(|i| Some(i % 97)).collect::<Vec<_>>());
        let (reference, _) = group_rows(&[&a], 40_000, &KernelOptions::serial());
        let budget = tight_budget();
        let gov = KernelGov::new(&budget, None, 9);
        let (spilled, stats) =
            group_rows_gov(&[&a], 40_000, &KernelOptions::serial(), &gov).unwrap();
        assert!(
            stats.spill_parts > SPILL_FAN,
            "expected recursion beyond the first pass, got {} parts",
            stats.spill_parts
        );
        assert_eq!(reference.group_of_row, spilled.group_of_row);
        assert_eq!(reference.representatives, spilled.representatives);
    }

    #[test]
    fn spill_disabled_kills_with_resource_exhausted() {
        let a = int_col(&(0..5000).map(|i| Some(i % 13)).collect::<Vec<_>>());
        let budget = gis_types::MemBudget::standalone(1, 0); // no spill
        let gov = KernelGov::new(&budget, None, 3);
        let err = group_rows_gov(&[&a], 5000, &KernelOptions::serial(), &gov).unwrap_err();
        assert_eq!(err.code(), "MEM", "{err}");
        assert_eq!(budget.used(), 0, "kill path released everything");
    }

    #[test]
    fn join_kill_distinguishes_build_and_probe() {
        let l = int_col(&(0..4000).map(|i| Some(i % 7)).collect::<Vec<_>>());
        let r = int_col(&(0..4000).map(|i| Some(i % 7)).collect::<Vec<_>>());
        // Budget that fits the 128KB of key tags but not tags plus
        // the ~144KB build-table estimate: dies mid-build.
        let small = gis_types::MemBudget::standalone(200_000, 0);
        let gov = KernelGov::new(&small, None, 1);
        let err = equi_join_pairs_gov(&[&l], &[&r], &KernelOptions::serial(), &gov).unwrap_err();
        assert_eq!(err.code(), "MEM");
        assert!(err.message().contains("build table"), "{err}");
        // Budget that fits tags + table but not the ~2.3M output
        // pairs: dies mid-probe on a pair-chunk reservation.
        let medium = gis_types::MemBudget::standalone(400_000, 0);
        let gov = KernelGov::new(&medium, None, 2);
        let err = equi_join_pairs_gov(&[&l], &[&r], &KernelOptions::serial(), &gov).unwrap_err();
        assert_eq!(err.code(), "MEM");
        assert!(err.message().contains("output pairs"), "{err}");
        assert_eq!(medium.used(), 0, "mid-probe kill released everything");
    }

    #[test]
    fn expired_deadline_cancels_inside_partition_workers() {
        let a = int_col(&(0..10_000).map(|i| Some(i % 101)).collect::<Vec<_>>());
        let budget = gis_types::MemBudget::standalone(u64::MAX, 0);
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let gov = KernelGov::new(&budget, Some(expired), 5);
        let err = group_rows_gov(&[&a], 10_000, &forced_parallel(), &gov).unwrap_err();
        assert_eq!(err.code(), "DEADLINE", "{err}");
    }

    #[test]
    fn governor_spans_appear_only_under_pressure() {
        let c = str_col(&["a", "b", "a"]);
        let (_, stats) = group_rows(&[&c], 3, &KernelOptions::serial());
        assert!(
            stats.governor_spans().is_empty(),
            "unbounded kernels emit no governor spans"
        );
        let a = int_col(&(0..3000).map(|i| Some(i % 13)).collect::<Vec<_>>());
        let budget = tight_budget();
        let gov = KernelGov::new(&budget, None, 1);
        let (_, stats) = group_rows_gov(&[&a], 3000, &KernelOptions::serial(), &gov).unwrap();
        let spans = stats.governor_spans();
        assert!(
            spans.iter().any(|s| s.label.starts_with("mem[")),
            "{spans:?}"
        );
        assert!(
            spans.iter().any(|s| s.label.starts_with("spill[")),
            "{spans:?}"
        );
    }
}
