//! The shared vectorized key pipeline driving the mediator kernels.
//!
//! Hash join, GROUP BY and DISTINCT all need the same thing: "which
//! rows share a key tuple?". The old kernels answered it by building
//! a boxed `Vec<Value>` per row — one heap allocation plus enum
//! dispatch on the hot path. This module answers it columnar:
//!
//! * [`group_rows`] assigns every row a dense group id (first
//!   occurrence defines the group, ids numbered in first-occurrence
//!   order), which is GROUP BY and DISTINCT in one primitive.
//! * [`equi_join_pairs`] produces the matched `(left, right)` row
//!   pairs of an equi-join, NULL keys excluded, in the exact
//!   lexicographic order the serial reference emits.
//!
//! Both pick one of two representations per call. When
//! [`gis_types::keys::FixedKeyLayout`] covers the key tuple, rows
//! encode to exact `u128`s and the table needs no collision
//! verification at all. Otherwise rows get a 64-bit vectorized hash
//! ([`gis_types::keys::hash_rows`]) and bucket candidates are
//! verified with the columnar equality kernel
//! ([`gis_types::keys::rows_eq`]) — never by materializing `Value`s.
//!
//! Above [`KernelOptions::parallel_rows`] rows, both primitives
//! radix-partition by key hash and run one scoped thread per
//! partition (the same crossbeam pattern `physical.rs` uses for
//! parallel fetch). Identical keys share a hash, so they land in the
//! same partition and the per-partition results merge exactly — the
//! output is bit-identical to the serial path, which keeps
//! result-cache fingerprints and EXPLAIN ANALYZE row counts stable.

use crate::exec::options::ExecOptions;
use gis_observe::span::format_us;
use gis_observe::Span;
use gis_types::keys::{
    encode_fixed, hash_rows, hash_u128, rows_eq, BuildPrehashed, FixedKeyLayout,
};
use gis_types::Array;
use std::collections::HashMap;
use std::time::Instant;

/// Chain-list terminator for the intrusive hash-table chains below.
const NONE: u32 = u32::MAX;

/// A `HashMap` keyed by pre-mixed hashes/encodings: no SipHash pass.
type PrehashedMap<K, V> = HashMap<K, V, BuildPrehashed>;

fn prehashed_map<K, V>(cap: usize) -> PrehashedMap<K, V> {
    HashMap::with_capacity_and_hasher(cap, BuildPrehashed)
}

/// Tuning knobs for the key kernels.
#[derive(Debug, Clone, Copy)]
pub struct KernelOptions {
    /// Input rows (build+probe for joins) at or above which the
    /// kernels radix-partition and run one thread per partition.
    /// `usize::MAX` keeps everything serial.
    pub parallel_rows: usize,
    /// Partition count for the parallel path (rounded down to a power
    /// of two, minimum 1).
    pub partitions: usize,
    /// Mask AND-ed onto every row hash. `u64::MAX` in production; a
    /// narrow mask (e.g. `0xF`) forces bucket collisions so tests can
    /// exercise the columnar verification path (it also disables the
    /// fixed-key fast path, which never collides).
    pub hash_mask: u64,
}

impl KernelOptions {
    /// Fully serial execution with production hashing.
    pub fn serial() -> KernelOptions {
        KernelOptions {
            parallel_rows: usize::MAX,
            partitions: 1,
            hash_mask: u64::MAX,
        }
    }

    /// Kernel knobs derived from the session's [`ExecOptions`]:
    /// the parallelism threshold comes from
    /// [`ExecOptions::parallel_kernel_rows`], the partition count from
    /// the host's available parallelism (capped at 8).
    pub fn from_exec(options: &ExecOptions) -> KernelOptions {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        KernelOptions {
            parallel_rows: options.parallel_kernel_rows,
            partitions: cores.min(8),
            hash_mask: u64::MAX,
        }
    }

    /// Effective partition count: the largest power of two ≤
    /// `partitions` (and ≥ 1).
    fn effective_partitions(&self) -> usize {
        let p = self.partitions.max(1);
        1 << (usize::BITS - 1 - p.leading_zeros())
    }

    /// True when `n` input rows should take the partitioned path.
    fn go_parallel(&self, n: usize) -> bool {
        n >= self.parallel_rows && self.effective_partitions() > 1
    }
}

/// What a kernel invocation did, for EXPLAIN ANALYZE.
#[derive(Debug, Clone, Copy)]
pub struct KernelStats {
    /// `fixed` / `hashed`, with a `-par` suffix on the partitioned
    /// path.
    pub mode: &'static str,
    /// Partitions used (1 = serial).
    pub partitions: usize,
    /// Time spent hashing/encoding keys and building tables.
    pub build_us: u64,
    /// Time spent probing / assigning group ids (including the
    /// parallel merge).
    pub probe_us: u64,
}

impl KernelStats {
    /// Renders the stats as a child span for the owning operator.
    pub fn to_span(&self) -> Span {
        Span::leaf(format!(
            "kernel[{}]: partitions={} build={} probe={}",
            self.mode,
            self.partitions,
            format_us(self.build_us),
            format_us(self.probe_us)
        ))
    }
}

/// The result of [`group_rows`]: a dense group id per row plus each
/// group's first-occurrence row (ids are numbered in first-occurrence
/// order, so `representatives` is strictly ascending).
#[derive(Debug, Clone)]
pub struct Grouping {
    /// `group_of_row[r]` is the group id of row `r`.
    pub group_of_row: Vec<u32>,
    /// `representatives[g]` is the first row of group `g`.
    pub representatives: Vec<u32>,
}

impl Grouping {
    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.representatives.len()
    }
}

/// Per-row key tags: either exact fixed-width encodings or masked
/// 64-bit hashes that need verification.
enum KeyTags {
    Fixed(Vec<u128>),
    Hashed(Vec<u64>),
}

impl KeyTags {
    fn compute(cols: &[&Array], n: usize, opts: &KernelOptions) -> KeyTags {
        if opts.hash_mask == u64::MAX {
            if let Some(layout) = FixedKeyLayout::plan(&[cols]) {
                return KeyTags::Fixed(encode_fixed(cols, n, &layout));
            }
        }
        let mut hashes = hash_rows(cols, n);
        if opts.hash_mask != u64::MAX {
            for h in &mut hashes {
                *h &= opts.hash_mask;
            }
        }
        KeyTags::Hashed(hashes)
    }

    /// The partition-routing hash of row `i`.
    fn route(&self, i: usize) -> u64 {
        match self {
            KeyTags::Fixed(k) => hash_u128(k[i]),
            KeyTags::Hashed(h) => h[i],
        }
    }

    fn mode(&self, parallel: bool) -> &'static str {
        match (self, parallel) {
            (KeyTags::Fixed(_), false) => "fixed",
            (KeyTags::Fixed(_), true) => "fixed-par",
            (KeyTags::Hashed(_), false) => "hashed",
            (KeyTags::Hashed(_), true) => "hashed-par",
        }
    }
}

/// The groups of one row subset: first-occurrence rows plus each
/// position's local group id (parallel to the input `rows` slice).
/// No per-group member vectors — the merge only needs these two.
struct SubsetGroups {
    reps: Vec<u32>,
    gid_of_pos: Vec<u32>,
}

/// Groups the `rows` subset (groups numbered in first-occurrence
/// order within the subset).
fn group_subset(cols: &[&Array], tags: &KeyTags, rows: &[u32]) -> SubsetGroups {
    let mut reps: Vec<u32> = Vec::new();
    let mut gid_of_pos: Vec<u32> = Vec::with_capacity(rows.len());
    match tags {
        KeyTags::Fixed(keys) => {
            // Exact encodings: the u128 *is* the key, no verification.
            let mut table: PrehashedMap<u128, u32> = prehashed_map(rows.len());
            for &row in rows {
                let g = match table.entry(keys[row as usize]) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let g = reps.len() as u32;
                        e.insert(g);
                        reps.push(row);
                        g
                    }
                };
                gid_of_pos.push(g);
            }
        }
        KeyTags::Hashed(hashes) => {
            // hash → first group id; colliding groups chain through
            // `sibling` (gid → next gid with the same hash). Each
            // candidate is verified with the columnar equality kernel
            // against the group's representative row.
            let mut table: PrehashedMap<u64, u32> = prehashed_map(rows.len());
            let mut sibling: Vec<u32> = Vec::new();
            for &row in rows {
                let g = match table.entry(hashes[row as usize]) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let g = reps.len() as u32;
                        e.insert(g);
                        reps.push(row);
                        sibling.push(NONE);
                        g
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let mut g = *e.get();
                        loop {
                            if rows_eq(cols, row as usize, cols, reps[g as usize] as usize) {
                                break g;
                            }
                            if sibling[g as usize] == NONE {
                                let fresh = reps.len() as u32;
                                reps.push(row);
                                sibling.push(NONE);
                                sibling[g as usize] = fresh;
                                break fresh;
                            }
                            g = sibling[g as usize];
                        }
                    }
                };
                gid_of_pos.push(g);
            }
        }
    }
    SubsetGroups { reps, gid_of_pos }
}

/// Splits `0..n` into per-partition row lists by routing hash.
fn partition_rows(tags: &KeyTags, n: usize, parts: usize) -> Vec<Vec<u32>> {
    let mask = (parts - 1) as u64;
    let mut out: Vec<Vec<u32>> = vec![Vec::with_capacity(n / parts + 1); parts];
    for i in 0..n {
        out[(tags.route(i) & mask) as usize].push(i as u32);
    }
    out
}

/// Assigns every row of the `cols` key tuple a dense group id.
///
/// Zero key columns mean one global group (the GROUP-BY-nothing
/// shape); zero rows mean zero groups. NULL keys group together and
/// NaN groups with NaN, per the pinned semantics in
/// [`gis_types::keys`]. Group ids are numbered in first-occurrence
/// order — identical to what the `Vec<Value>` reference produced —
/// on the serial *and* the partitioned path.
pub fn group_rows(cols: &[&Array], n: usize, opts: &KernelOptions) -> (Grouping, KernelStats) {
    let serial_stats = |tags: &KeyTags, build_us: u64, probe_us: u64| KernelStats {
        mode: tags.mode(false),
        partitions: 1,
        build_us,
        probe_us,
    };
    if cols.is_empty() || n == 0 {
        let grouping = Grouping {
            group_of_row: vec![0; n],
            representatives: if n == 0 { vec![] } else { vec![0] },
        };
        return (
            grouping,
            KernelStats {
                mode: "trivial",
                partitions: 1,
                build_us: 0,
                probe_us: 0,
            },
        );
    }
    let t0 = Instant::now();
    let tags = KeyTags::compute(cols, n, opts);
    let build_us = t0.elapsed().as_micros() as u64;
    let t1 = Instant::now();
    if !opts.go_parallel(n) {
        let all: Vec<u32> = (0..n as u32).collect();
        let sub = group_subset(cols, &tags, &all);
        let probe_us = t1.elapsed().as_micros() as u64;
        let grouping = Grouping {
            group_of_row: sub.gid_of_pos,
            representatives: sub.reps,
        };
        return (grouping, serial_stats(&tags, build_us, probe_us));
    }
    let parts = opts.effective_partitions();
    let partitions = partition_rows(&tags, n, parts);
    let per_part: Vec<SubsetGroups> = crossbeam::thread::scope(|s| {
        let tags = &tags;
        let handles: Vec<_> = partitions
            .iter()
            .map(|rows| s.spawn(move |_| group_subset(cols, tags, rows)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel partition thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    // Identical keys share a routing hash, so no group spans two
    // partitions: sorting by first-occurrence row recovers the exact
    // serial group numbering, then local ids remap to global ones.
    let mut order: Vec<(u32, u32, u32)> = Vec::new();
    for (p, sub) in per_part.iter().enumerate() {
        for (local, &rep) in sub.reps.iter().enumerate() {
            order.push((rep, p as u32, local as u32));
        }
    }
    order.sort_unstable_by_key(|&(rep, _, _)| rep);
    let mut remap: Vec<Vec<u32>> = per_part.iter().map(|s| vec![0; s.reps.len()]).collect();
    let mut representatives = Vec::with_capacity(order.len());
    for (g, &(rep, p, local)) in order.iter().enumerate() {
        remap[p as usize][local as usize] = g as u32;
        representatives.push(rep);
    }
    let mut group_of_row = vec![0u32; n];
    for (p, (rows, sub)) in partitions.iter().zip(&per_part).enumerate() {
        for (pos, &row) in rows.iter().enumerate() {
            group_of_row[row as usize] = remap[p][sub.gid_of_pos[pos] as usize];
        }
    }
    let probe_us = t1.elapsed().as_micros() as u64;
    let stats = KernelStats {
        mode: tags.mode(true),
        partitions: parts,
        build_us,
        probe_us,
    };
    (
        Grouping {
            group_of_row,
            representatives,
        },
        stats,
    )
}

/// True when any key column is NULL at `row` (such rows never join).
fn any_null(cols: &[&Array], row: usize) -> bool {
    cols.iter().any(|c| !c.is_valid(row))
}

/// Build+probe over one (left, right) row subset. `pairs` receives
/// `(l, r)` in lexicographic order given ascending inputs.
fn join_subset(
    left: &[&Array],
    right: &[&Array],
    ltags: &KeyTags,
    rtags: &KeyTags,
    lrows: &[u32],
    rrows: &[u32],
    pairs: &mut Vec<(u32, u32)>,
) {
    // Build: key → (first, last) positions into `rrows`, entries of
    // one bucket chained in insertion order through `next` — O(1)
    // insert with no per-key vector, traversal yields ascending `r`.
    macro_rules! build {
        ($keys:expr, $K:ty) => {{
            let mut head: PrehashedMap<$K, (u32, u32)> = prehashed_map(rrows.len());
            let mut next: Vec<u32> = vec![NONE; rrows.len()];
            for (pos, &r) in rrows.iter().enumerate() {
                if any_null(right, r as usize) {
                    continue;
                }
                match head.entry($keys[r as usize]) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (_, last) = e.get_mut();
                        next[*last as usize] = pos as u32;
                        *last = pos as u32;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((pos as u32, pos as u32));
                    }
                }
            }
            (head, next)
        }};
    }
    match (ltags, rtags) {
        (KeyTags::Fixed(lk), KeyTags::Fixed(rk)) => {
            // Exact encodings: every chain entry is a true match.
            let (head, next) = build!(rk, u128);
            for &l in lrows {
                if any_null(left, l as usize) {
                    continue;
                }
                if let Some(&(first, _)) = head.get(&lk[l as usize]) {
                    let mut p = first;
                    loop {
                        pairs.push((l, rrows[p as usize]));
                        p = next[p as usize];
                        if p == NONE {
                            break;
                        }
                    }
                }
            }
        }
        (KeyTags::Hashed(lh), KeyTags::Hashed(rh)) => {
            // Chains may mix keys that collide on the hash: verify
            // each candidate columnar before emitting the pair.
            let (head, next) = build!(rh, u64);
            for &l in lrows {
                if any_null(left, l as usize) {
                    continue;
                }
                if let Some(&(first, _)) = head.get(&lh[l as usize]) {
                    let mut p = first;
                    loop {
                        let r = rrows[p as usize];
                        if rows_eq(left, l as usize, right, r as usize) {
                            pairs.push((l, r));
                        }
                        p = next[p as usize];
                        if p == NONE {
                            break;
                        }
                    }
                }
            }
        }
        _ => unreachable!("both sides share one layout decision"),
    }
}

/// Matched `(left_row, right_row)` pairs of the equi-join
/// `left == right`, NULL keys on either side excluded, in
/// lexicographic `(l, r)` order — exactly the order (and content) of
/// the serial `Vec<Value>` reference, on every path.
///
/// The caller must pass key columns of identical data types per
/// position (cast beforehand); mismatched positions still compare
/// correctly via the `Value` fallback but won't hash-match.
pub fn equi_join_pairs(
    left: &[&Array],
    right: &[&Array],
    opts: &KernelOptions,
) -> (Vec<(u32, u32)>, KernelStats) {
    let ln = left.first().map_or(0, |c| c.len());
    let rn = right.first().map_or(0, |c| c.len());
    let t0 = Instant::now();
    // One layout decision covers both sides so tags are comparable.
    let (ltags, rtags) = {
        let fixed = opts.hash_mask == u64::MAX && FixedKeyLayout::plan(&[left, right]).is_some();
        if fixed {
            let layout = FixedKeyLayout::plan(&[left, right]).expect("planned above");
            (
                KeyTags::Fixed(encode_fixed(left, ln, &layout)),
                KeyTags::Fixed(encode_fixed(right, rn, &layout)),
            )
        } else {
            let mask = opts.hash_mask;
            let mut lh = hash_rows(left, ln);
            let mut rh = hash_rows(right, rn);
            if mask != u64::MAX {
                lh.iter_mut().for_each(|h| *h &= mask);
                rh.iter_mut().for_each(|h| *h &= mask);
            }
            (KeyTags::Hashed(lh), KeyTags::Hashed(rh))
        }
    };
    let build_us = t0.elapsed().as_micros() as u64;
    let t1 = Instant::now();
    if !opts.go_parallel(ln + rn) {
        let lrows: Vec<u32> = (0..ln as u32).collect();
        let rrows: Vec<u32> = (0..rn as u32).collect();
        let mut pairs = Vec::new();
        join_subset(left, right, &ltags, &rtags, &lrows, &rrows, &mut pairs);
        let stats = KernelStats {
            mode: ltags.mode(false),
            partitions: 1,
            build_us,
            probe_us: t1.elapsed().as_micros() as u64,
        };
        return (pairs, stats);
    }
    let parts = opts.effective_partitions();
    let lparts = partition_rows(&ltags, ln, parts);
    let rparts = partition_rows(&rtags, rn, parts);
    let per_part: Vec<Vec<(u32, u32)>> = crossbeam::thread::scope(|s| {
        let (ltags, rtags) = (&ltags, &rtags);
        let handles: Vec<_> = lparts
            .iter()
            .zip(&rparts)
            .map(|(lrows, rrows)| {
                s.spawn(move |_| {
                    let mut pairs = Vec::new();
                    join_subset(left, right, ltags, rtags, lrows, rrows, &mut pairs);
                    pairs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel partition thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    // Equal keys share a routing hash, so every match was found in
    // exactly one partition; sorting restores the serial order.
    let mut pairs: Vec<(u32, u32)> = per_part.into_iter().flatten().collect();
    pairs.sort_unstable();
    let stats = KernelStats {
        mode: ltags.mode(true),
        partitions: parts,
        build_us,
        probe_us: t1.elapsed().as_micros() as u64,
    };
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{ArrayBuilder, DataType, Value};

    fn int_col(vals: &[Option<i64>]) -> Array {
        let mut b = ArrayBuilder::new(DataType::Int64);
        for v in vals {
            match v {
                Some(x) => b.push_value(&Value::Int64(*x)).unwrap(),
                None => b.push_null(),
            }
        }
        b.finish()
    }

    fn str_col(vals: &[&str]) -> Array {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for v in vals {
            b.push_value(&Value::Utf8((*v).to_string())).unwrap();
        }
        b.finish()
    }

    /// A long string column defeats the fixed-width layout, forcing
    /// the hashed+verified path.
    fn wide_col(n: usize) -> Array {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for i in 0..n {
            b.push_value(&Value::Utf8(format!("row-{:060}", i % 7)))
                .unwrap();
        }
        b.finish()
    }

    fn forced_parallel() -> KernelOptions {
        KernelOptions {
            parallel_rows: 0,
            partitions: 4,
            hash_mask: u64::MAX,
        }
    }

    fn collide_all() -> KernelOptions {
        KernelOptions {
            parallel_rows: usize::MAX,
            partitions: 1,
            hash_mask: 0x3,
        }
    }

    #[test]
    fn grouping_matches_first_occurrence_order() {
        let c = int_col(&[Some(5), Some(1), Some(5), None, Some(1), None]);
        let (g, stats) = group_rows(&[&c], 6, &KernelOptions::serial());
        assert_eq!(stats.mode, "fixed");
        assert_eq!(g.representatives, vec![0, 1, 3]);
        assert_eq!(g.group_of_row, vec![0, 1, 0, 2, 1, 2]);
    }

    #[test]
    fn grouping_identical_across_all_paths() {
        let a = int_col(
            &(0..500)
                .map(|i| if i % 11 == 0 { None } else { Some(i % 13) })
                .collect::<Vec<_>>(),
        );
        let w = wide_col(500);
        let cols: Vec<&Array> = vec![&a, &w];
        let (serial, s1) = group_rows(&cols, 500, &KernelOptions::serial());
        assert_eq!(s1.mode, "hashed");
        let (par, s2) = group_rows(&cols, 500, &forced_parallel());
        assert_eq!(s2.mode, "hashed-par");
        assert_eq!(s2.partitions, 4);
        let (collided, s3) = group_rows(&cols, 500, &collide_all());
        assert_eq!(s3.mode, "hashed");
        assert_eq!(serial.group_of_row, par.group_of_row);
        assert_eq!(serial.representatives, par.representatives);
        assert_eq!(serial.group_of_row, collided.group_of_row);
        assert_eq!(serial.representatives, collided.representatives);
    }

    #[test]
    fn empty_key_and_empty_input_shapes() {
        let (g, _) = group_rows(&[], 4, &KernelOptions::serial());
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.group_of_row, vec![0, 0, 0, 0]);
        let (g, _) = group_rows(&[], 0, &KernelOptions::serial());
        assert_eq!(g.num_groups(), 0);
        let c = int_col(&[]);
        let (g, _) = group_rows(&[&c], 0, &KernelOptions::serial());
        assert_eq!(g.num_groups(), 0);
    }

    #[test]
    fn join_pairs_lexicographic_and_null_free() {
        let l = int_col(&[Some(1), Some(3), None, Some(1)]);
        let r = int_col(&[Some(3), Some(1), Some(1), None]);
        let (pairs, stats) = equi_join_pairs(&[&l], &[&r], &KernelOptions::serial());
        assert_eq!(stats.mode, "fixed");
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn join_identical_across_all_paths() {
        let lk = int_col(&(0..400).map(|i| Some(i % 17)).collect::<Vec<_>>());
        let lw = wide_col(400);
        let rk = int_col(&(0..300).map(|i| Some(i % 23)).collect::<Vec<_>>());
        let rw = wide_col(300);
        let left: Vec<&Array> = vec![&lk, &lw];
        let right: Vec<&Array> = vec![&rk, &rw];
        let (serial, s1) = equi_join_pairs(&left, &right, &KernelOptions::serial());
        assert_eq!(s1.mode, "hashed");
        let (par, s2) = equi_join_pairs(&left, &right, &forced_parallel());
        assert_eq!(s2.mode, "hashed-par");
        let (collided, _) = equi_join_pairs(&left, &right, &collide_all());
        assert_eq!(serial, par);
        assert_eq!(serial, collided);
        assert!(!serial.is_empty());
        assert!(serial.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn effective_partitions_rounds_down_to_power_of_two() {
        let mk = |p| KernelOptions {
            parallel_rows: 0,
            partitions: p,
            hash_mask: u64::MAX,
        };
        assert_eq!(mk(0).effective_partitions(), 1);
        assert_eq!(mk(1).effective_partitions(), 1);
        assert_eq!(mk(3).effective_partitions(), 2);
        assert_eq!(mk(6).effective_partitions(), 4);
        assert_eq!(mk(8).effective_partitions(), 8);
    }

    #[test]
    fn stats_render_as_span() {
        let c = str_col(&["a", "b", "a"]);
        let (_, stats) = group_rows(&[&c], 3, &KernelOptions::serial());
        let span = stats.to_span();
        assert!(span.label.starts_with("kernel[fixed]"), "{}", span.label);
    }
}
