//! Plan tree rendering for `EXPLAIN` and debugging.

use crate::plan::logical::LogicalPlan;
use std::fmt::Write as _;

/// Renders an indented plan tree.
pub fn plan_to_string(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::TableScan(t) => {
            let proj = match &t.projection {
                Some(p) => format!(" proj={p:?}"),
                None => String::new(),
            };
            let filt = if t.filters.is_empty() {
                String::new()
            } else {
                let fs: Vec<String> = t.filters.iter().map(|f| f.to_string()).collect();
                format!(" filters=[{}]", fs.join(", "))
            };
            let fetch = match t.fetch {
                Some(n) => format!(" fetch={n}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{pad}TableScan: {}.{} as {} [caps {}]{proj}{filt}{fetch}",
                t.resolved.source.name,
                t.resolved.mapping.source_table,
                t.alias,
                t.resolved.source.capabilities
            );
        }
        LogicalPlan::Filter { input, predicate } => {
            let _ = writeln!(out, "{pad}Filter: {predicate}");
            render(input, depth + 1, out);
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => {
            let items: Vec<String> = exprs
                .iter()
                .zip(schema.fields())
                .map(|(e, f)| format!("{e} AS {}", f.name))
                .collect();
            let _ = writeln!(out, "{pad}Projection: {}", items.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Join(j) => {
            let on = match &j.on {
                Some(e) => format!(" ON {e}"),
                None => String::new(),
            };
            let _ = writeln!(out, "{pad}{}{on}", j.kind);
            render(&j.left, depth + 1, out);
            render(&j.right, depth + 1, out);
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            ..
        } => {
            let gs: Vec<String> = group_exprs.iter().map(|g| g.to_string()).collect();
            let asx: Vec<String> = aggregates.iter().map(|a| a.display_name()).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate: group=[{}] aggs=[{}]",
                gs.join(", "),
                asx.join(", ")
            );
            render(input, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "{} {}{}",
                        k.expr,
                        if k.asc { "ASC" } else { "DESC" },
                        if k.nulls_first { " NULLS FIRST" } else { "" }
                    )
                })
                .collect();
            let _ = writeln!(out, "{pad}Sort: {}", ks.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let _ = writeln!(out, "{pad}Limit: skip={skip} fetch={fetch:?}");
            render(input, depth + 1, out);
        }
        LogicalPlan::Union { inputs, .. } => {
            let _ = writeln!(out, "{pad}UnionAll: {} inputs", inputs.len());
            for i in inputs {
                render(i, depth + 1, out);
            }
        }
        LogicalPlan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            render(input, depth + 1, out);
        }
        LogicalPlan::Values { rows, schema } => {
            let _ = writeln!(
                out,
                "{pad}Values: {} row(s), {} col(s)",
                rows.len(),
                schema.len()
            );
        }
        LogicalPlan::ViewScan { name, batch, .. } => {
            let _ = writeln!(
                out,
                "{pad}ViewScan: {name} ({} materialized row(s))",
                batch.num_rows()
            );
        }
    }
}

impl std::fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&plan_to_string(self))
    }
}
