//! Logical planning: the relational algebra and the binder.

pub mod binder;
pub mod display;
pub mod logical;

pub use binder::Binder;
pub use logical::{AggregateExpr, JoinNode, LogicalPlan, SortExpr, TableScanNode};
