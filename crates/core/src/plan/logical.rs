//! The logical algebra.
//!
//! Every node carries its output schema, computed at construction;
//! expressions inside a node reference the node's *input* schema by
//! ordinal. `TableScan` is federation-aware from the start: it knows
//! which source exports the table, the mapping that produced its
//! global schema, and accumulates pushed filters / projection /
//! fetch-limit as the optimizer moves them in.

use crate::expr::ScalarExpr;
use gis_adapters::AggFunc;
use gis_catalog::ResolvedTable;
use gis_sql::ast::JoinKind;
use gis_types::{Field, GisError, Result, Schema, SchemaRef, Value};
use std::sync::Arc;

/// A scan of one global table (backed by one source table).
#[derive(Debug, Clone)]
pub struct TableScanNode {
    /// The alias this relation is known by in the query.
    pub alias: String,
    /// Catalog resolution: source, export schema, mapping, stats.
    pub resolved: ResolvedTable,
    /// Ordinals into the table's **global** schema to produce
    /// (`None` = all).
    pub projection: Option<Vec<usize>>,
    /// Conjunctive filters over the table's **full global** schema
    /// (pre-projection ordinals), pushed here by the optimizer.
    pub filters: Vec<ScalarExpr>,
    /// Row limit pushed into the scan.
    pub fetch: Option<usize>,
    /// Output schema (projected global schema, qualified by alias).
    pub schema: SchemaRef,
}

impl TableScanNode {
    /// Builds a scan of the full table.
    pub fn new(alias: impl Into<String>, resolved: ResolvedTable) -> Self {
        let alias = alias.into();
        let schema = Arc::new(resolved.global_schema.requalify(&alias));
        TableScanNode {
            alias,
            resolved,
            projection: None,
            filters: vec![],
            fetch: None,
            schema,
        }
    }

    /// Recomputes the output schema after changing the projection.
    pub fn recompute_schema(&mut self) {
        let base = self.resolved.global_schema.requalify(&self.alias);
        self.schema = Arc::new(match &self.projection {
            Some(p) => base.project(p),
            None => base,
        });
    }

    /// The ordinals this scan outputs (projection or identity).
    pub fn output_ordinals(&self) -> Vec<usize> {
        match &self.projection {
            Some(p) => p.clone(),
            None => (0..self.resolved.global_schema.len()).collect(),
        }
    }
}

/// A join node.
#[derive(Debug, Clone)]
pub struct JoinNode {
    /// Left input.
    pub left: Box<LogicalPlan>,
    /// Right input.
    pub right: Box<LogicalPlan>,
    /// Join kind.
    pub kind: JoinKind,
    /// Join condition over the **combined** (left ++ right) schema;
    /// `None` for cross joins.
    pub on: Option<ScalarExpr>,
    /// Output schema.
    pub schema: SchemaRef,
}

impl JoinNode {
    /// Output schema for `kind` over the given inputs: semi/anti
    /// joins output only the left side; outer joins relax
    /// nullability on the weak side(s).
    pub fn compute_schema(left: &Schema, right: &Schema, kind: JoinKind) -> SchemaRef {
        match kind {
            JoinKind::Semi | JoinKind::Anti => Arc::new(left.clone()),
            _ => {
                let weak_left = matches!(kind, JoinKind::Right | JoinKind::Full);
                let weak_right = matches!(kind, JoinKind::Left | JoinKind::Full);
                let mut fields: Vec<Field> = left
                    .fields()
                    .iter()
                    .map(|f| {
                        let mut f = f.clone();
                        if weak_left {
                            f.nullable = true;
                        }
                        f
                    })
                    .collect();
                fields.extend(right.fields().iter().map(|f| {
                    let mut f = f.clone();
                    if weak_right {
                        f.nullable = true;
                    }
                    f
                }));
                Arc::new(Schema::new(fields))
            }
        }
    }

    /// Extracts equi-join key pairs from the ON condition: conjuncts
    /// of the form `left_col = right_col` (ordinals split by the left
    /// schema width). Returns `(left_keys, right_keys_relative,
    /// residual)` where right ordinals are rebased to the right
    /// schema, and `residual` is the remaining non-equi condition
    /// over the combined schema.
    pub fn equi_keys(&self) -> (Vec<usize>, Vec<usize>, Option<ScalarExpr>) {
        let left_len = self.left.schema().len();
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        let mut residual = Vec::new();
        let Some(on) = &self.on else {
            return (lk, rk, None);
        };
        for part in on.split_conjunction() {
            if let ScalarExpr::Binary {
                left,
                op: gis_sql::ast::BinaryOp::Eq,
                right,
            } = part
            {
                if let (ScalarExpr::Column(a), ScalarExpr::Column(b)) =
                    (left.as_ref(), right.as_ref())
                {
                    let (a, b) = (*a, *b);
                    if a < left_len && b >= left_len {
                        lk.push(a);
                        rk.push(b - left_len);
                        continue;
                    }
                    if b < left_len && a >= left_len {
                        lk.push(b);
                        rk.push(a - left_len);
                        continue;
                    }
                }
            }
            residual.push(part.clone());
        }
        (lk, rk, ScalarExpr::conjunction(residual))
    }
}

/// One aggregate expression inside an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument over the aggregate's input schema; `None` = `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    /// DISTINCT modifier.
    pub distinct: bool,
}

impl AggregateExpr {
    /// Display name like `count(*)` / `sum(#2)`.
    pub fn display_name(&self) -> String {
        let d = if self.distinct { "DISTINCT " } else { "" };
        match &self.arg {
            Some(a) => format!("{}({d}{a})", self.func.name()),
            None => format!("{}({d}*)", self.func.name()),
        }
    }
}

/// One sort key (expression over the node's input schema).
#[derive(Debug, Clone, PartialEq)]
pub struct SortExpr {
    /// Key expression.
    pub expr: ScalarExpr,
    /// Ascending?
    pub asc: bool,
    /// NULLs first?
    pub nulls_first: bool,
}

/// The logical plan.
// Plans are built once per query and cloned rarely; boxing TableScan to
// shrink the enum would cost more indirection than it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan of one global table.
    TableScan(TableScanNode),
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// Column computation / reordering.
    Projection {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions over the input schema.
        exprs: Vec<ScalarExpr>,
        /// Output schema (names chosen by the binder).
        schema: SchemaRef,
    },
    /// Join.
    Join(JoinNode),
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by expressions over the input schema.
        group_exprs: Vec<ScalarExpr>,
        /// Aggregates.
        aggregates: Vec<AggregateExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: SchemaRef,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keys over the input schema.
        keys: Vec<SortExpr>,
    },
    /// Skip/fetch.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Rows to skip.
        skip: usize,
        /// Max rows to return (`None` = all).
        fetch: Option<usize>,
    },
    /// Bag union (ALL semantics; wrap in Distinct for set union).
    Union {
        /// Inputs (all type-compatible).
        inputs: Vec<LogicalPlan>,
        /// Output schema (names from the first input).
        schema: SchemaRef,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Inline constant rows (`SELECT` without `FROM`, empty relations).
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// Row values.
        rows: Vec<Vec<Value>>,
    },
    /// A scan of a mediator-side materialized view. Injected by the
    /// view-matching rewrite at execution time — the binder never
    /// produces it and the runtime plan cache never stores it, so a
    /// cached plan cannot embed a possibly-stale view decision.
    ViewScan {
        /// The view's name.
        name: String,
        /// Output schema — taken from the replaced subtree, whose
        /// columns positionally match the view's.
        schema: SchemaRef,
        /// The materialized rows, already at the mediator.
        batch: gis_types::Batch,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &SchemaRef {
        match self {
            LogicalPlan::TableScan(t) => &t.schema,
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Projection { schema, .. } => schema,
            LogicalPlan::Join(j) => &j.schema,
            LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Union { schema, .. } => schema,
            LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Values { schema, .. } => schema,
            LogicalPlan::ViewScan { schema, .. } => schema,
        }
    }

    /// Children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan(_)
            | LogicalPlan::Values { .. }
            | LogicalPlan::ViewScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Projection { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join(j) => vec![&j.left, &j.right],
            LogicalPlan::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Builds a Projection, computing its schema from expressions and
    /// chosen output names.
    pub fn project_named(
        input: LogicalPlan,
        exprs: Vec<ScalarExpr>,
        names: Vec<String>,
    ) -> Result<LogicalPlan> {
        if exprs.len() != names.len() {
            return Err(GisError::Internal(
                "projection exprs/names length mismatch".into(),
            ));
        }
        let in_schema = input.schema().clone();
        let mut fields = Vec::with_capacity(exprs.len());
        for (e, n) in exprs.iter().zip(&names) {
            fields.push(Field {
                name: n.clone(),
                data_type: e.data_type(&in_schema)?,
                nullable: e.nullable(&in_schema),
                qualifier: None,
            });
        }
        Ok(LogicalPlan::Projection {
            input: Box::new(input),
            exprs,
            schema: Arc::new(Schema::new(fields)),
        })
    }

    /// Builds an Aggregate, computing its schema. Group columns take
    /// their names from simple column references where possible.
    pub fn aggregate(
        input: LogicalPlan,
        group_exprs: Vec<ScalarExpr>,
        aggregates: Vec<AggregateExpr>,
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema().clone();
        let mut fields = Vec::with_capacity(group_exprs.len() + aggregates.len());
        for (i, g) in group_exprs.iter().enumerate() {
            let (name, qualifier) = match g {
                ScalarExpr::Column(c) => {
                    let f = in_schema.field(*c);
                    (f.name.clone(), f.qualifier.clone())
                }
                _ => (format!("group_{i}"), None),
            };
            fields.push(Field {
                name,
                data_type: g.data_type(&in_schema)?,
                nullable: g.nullable(&in_schema),
                qualifier,
            });
        }
        for a in &aggregates {
            let input_type = match &a.arg {
                Some(e) => e.data_type(&in_schema)?,
                None => gis_types::DataType::Int64,
            };
            fields.push(Field::new(a.display_name(), a.func.output_type(input_type)));
        }
        Ok(LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs,
            aggregates,
            schema: Arc::new(Schema::new(fields)),
        })
    }

    /// Builds a Join, computing its schema.
    pub fn join(
        left: LogicalPlan,
        right: LogicalPlan,
        kind: JoinKind,
        on: Option<ScalarExpr>,
    ) -> LogicalPlan {
        let schema = JoinNode::compute_schema(left.schema(), right.schema(), kind);
        LogicalPlan::Join(JoinNode {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            on,
            schema,
        })
    }

    /// A single empty row with no columns (input for `SELECT 1`).
    pub fn one_row() -> LogicalPlan {
        LogicalPlan::Values {
            schema: Arc::new(Schema::empty()),
            rows: vec![vec![]],
        }
    }

    /// Number of nodes (testing/metrics).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Sorted, deduplicated lowercase names of the sources this plan
    /// reads — the staleness/invalidation domain for caches and
    /// materialized views built from it.
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .scans()
            .iter()
            .map(|t| t.resolved.source.name.to_ascii_lowercase())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// All TableScan nodes in the tree.
    pub fn scans(&self) -> Vec<&TableScanNode> {
        let mut out = Vec::new();
        fn go<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a TableScanNode>) {
            if let LogicalPlan::TableScan(t) = p {
                out.push(t);
            }
            for c in p.children() {
                go(c, out);
            }
        }
        go(self, &mut out);
        out
    }
}
