//! The binder: SQL AST → logical plan.
//!
//! Name resolution happens exactly here — column references become
//! ordinals, table references resolve through the catalog (bare
//! names via the global schema, `source.table` explicitly), scalar
//! and aggregate functions resolve from the registries. The binder
//! also desugars: `BETWEEN` → range conjunction, operand-`CASE` →
//! searched `CASE`, `USING` → equi-`ON`, `UNION` (distinct) →
//! `Distinct(UnionAll)`, `DISTINCT` → `Distinct`, and rewrites
//! post-aggregation expressions against the aggregate's output.

use crate::expr::{functions::ScalarFunc, ScalarExpr};
use crate::plan::logical::{AggregateExpr, LogicalPlan, SortExpr};
use gis_adapters::AggFunc;
use gis_catalog::CatalogRef;
use gis_sql::ast::{
    Expr, JoinConstraint, JoinKind, OrderByExpr, Query, Select, SelectItem, SetExpr, Statement,
    TableRef, UnaryOp,
};
use gis_types::{DataType, GisError, Result, Schema, SchemaRef, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Binds statements against a catalog.
pub struct Binder {
    catalog: CatalogRef,
}

impl Binder {
    /// A binder over `catalog`.
    pub fn new(catalog: CatalogRef) -> Self {
        Binder { catalog }
    }

    /// Binds a statement (queries only; `EXPLAIN` is peeled off by
    /// the federation layer).
    pub fn bind(&self, stmt: &Statement) -> Result<LogicalPlan> {
        match stmt {
            Statement::Query(q) => self.bind_query(q),
            Statement::Explain { statement, .. } => self.bind(statement),
            Statement::CreateMaterializedView { .. }
            | Statement::RefreshMaterializedView { .. }
            | Statement::DropMaterializedView { .. } => Err(GisError::Analysis(
                "materialized-view DDL has no logical plan; route it through Federation::query"
                    .into(),
            )),
            Statement::Analyze { .. } => Err(GisError::Analysis(
                "ANALYZE has no logical plan; route it through Federation::query".into(),
            )),
        }
    }

    /// Binds a query expression.
    pub fn bind_query(&self, query: &Query) -> Result<LogicalPlan> {
        let mut plan = self.bind_set_expr(&query.body)?;
        if !query.order_by.is_empty() {
            plan = self.attach_order_by(plan, &query.order_by)?;
        }
        if query.limit.is_some() || query.offset.is_some() {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                skip: query.offset.unwrap_or(0) as usize,
                fetch: query.limit.map(|l| l as usize),
            };
        }
        Ok(plan)
    }

    fn bind_set_expr(&self, se: &SetExpr) -> Result<LogicalPlan> {
        match se {
            SetExpr::Select(s) => self.bind_select(s),
            SetExpr::Union { left, right, all } => {
                let l = self.bind_set_expr(left)?;
                let r = self.bind_set_expr(right)?;
                let union = self.build_union(l, r)?;
                Ok(if *all {
                    union
                } else {
                    LogicalPlan::Distinct {
                        input: Box::new(union),
                    }
                })
            }
        }
    }

    /// Unions two plans, inserting casts where column types differ
    /// but unify on the lattice.
    fn build_union(&self, left: LogicalPlan, right: LogicalPlan) -> Result<LogicalPlan> {
        let ls = left.schema().clone();
        let rs = right.schema().clone();
        if ls.len() != rs.len() {
            return Err(GisError::Analysis(format!(
                "UNION inputs have {} and {} columns",
                ls.len(),
                rs.len()
            )));
        }
        let mut target = Vec::with_capacity(ls.len());
        for (lf, rf) in ls.fields().iter().zip(rs.fields()) {
            let t = lf.data_type.common_supertype(rf.data_type).ok_or_else(|| {
                GisError::Analysis(format!(
                    "UNION column '{}' has incompatible types {} and {}",
                    lf.name, lf.data_type, rf.data_type
                ))
            })?;
            target.push(t);
        }
        let coerce = |plan: LogicalPlan, schema: &Schema| -> Result<LogicalPlan> {
            let needs = schema
                .fields()
                .iter()
                .zip(&target)
                .any(|(f, t)| f.data_type != *t);
            if !needs {
                return Ok(plan);
            }
            let exprs: Vec<ScalarExpr> = schema
                .fields()
                .iter()
                .zip(&target)
                .enumerate()
                .map(|(i, (f, t))| {
                    if f.data_type == *t {
                        ScalarExpr::col(i)
                    } else {
                        ScalarExpr::Cast {
                            expr: Box::new(ScalarExpr::col(i)),
                            to: *t,
                        }
                    }
                })
                .collect();
            let names = schema.fields().iter().map(|f| f.name.clone()).collect();
            LogicalPlan::project_named(plan, exprs, names)
        };
        let left = coerce(left, &ls)?;
        let right = coerce(right, &rs)?;
        // Union output: names from the left, unified types, nullable
        // if either side is.
        let out_fields = ls
            .fields()
            .iter()
            .zip(rs.fields())
            .zip(&target)
            .map(|((lf, rf), t)| gis_types::Field {
                name: lf.name.clone(),
                data_type: *t,
                nullable: lf.nullable || rf.nullable,
                qualifier: None,
            })
            .collect();
        Ok(LogicalPlan::Union {
            inputs: vec![left, right],
            schema: Arc::new(Schema::new(out_fields)),
        })
    }

    fn bind_select(&self, select: &Select) -> Result<LogicalPlan> {
        // FROM
        let mut plan = match &select.from {
            Some(t) => self.bind_table_ref(t)?,
            None => LogicalPlan::one_row(),
        };
        // WHERE: subquery-membership conjuncts become semi/anti
        // joins; the rest filters.
        if let Some(w) = &select.selection {
            self.reject_aggregates(w, "WHERE")?;
            let mut plain: Vec<Expr> = Vec::new();
            for conjunct in w.split_conjunction() {
                match conjunct {
                    Expr::InSubquery {
                        expr,
                        negated,
                        query,
                    } => {
                        plan = self.bind_in_subquery(plan, expr, *negated, query)?;
                    }
                    other => plain.push(other.clone()),
                }
            }
            if let Some(rest) = Expr::conjunction(plain) {
                let predicate = self.bind_expr(&rest, plan.schema())?;
                expect_boolean(&predicate, plan.schema(), "WHERE")?;
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            }
        }
        // Expand wildcards into concrete items.
        let items = self.expand_projection(&select.projection, plan.schema())?;
        // Detect aggregation.
        let has_aggs = items.iter().any(|(e, _)| contains_aggregate(e))
            || select.having.as_ref().is_some_and(contains_aggregate)
            || !select.group_by.is_empty();
        if has_aggs {
            plan = self.bind_aggregation(plan, select, &items)?;
        } else {
            if let Some(h) = &select.having {
                return Err(GisError::Analysis(format!(
                    "HAVING without aggregation: {}",
                    gis_sql::unparse::expr_to_sql(h)
                )));
            }
            let in_schema = plan.schema().clone();
            let mut exprs = Vec::with_capacity(items.len());
            let mut names = Vec::with_capacity(items.len());
            for (ast, name) in &items {
                exprs.push(self.bind_expr(ast, &in_schema)?);
                names.push(name.clone());
            }
            plan = LogicalPlan::project_named(plan, exprs, names)?;
        }
        if select.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        Ok(plan)
    }

    /// GROUP BY / aggregate binding. Builds
    /// `Projection(Aggregate(input))`, rewriting projection and
    /// HAVING expressions against the aggregate output.
    fn bind_aggregation(
        &self,
        input: LogicalPlan,
        select: &Select,
        items: &[(Expr, String)],
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema().clone();
        // Group expressions: GROUP BY ordinal `k` refers to the k-th
        // projection item (SQL-92 convenience).
        let mut group_asts: Vec<Expr> = Vec::new();
        for g in &select.group_by {
            let ast = match g {
                Expr::Literal(Value::Int64(k)) => {
                    let idx = *k as usize;
                    if idx == 0 || idx > items.len() {
                        return Err(GisError::Analysis(format!(
                            "GROUP BY position {idx} out of range"
                        )));
                    }
                    items[idx - 1].0.clone()
                }
                other => other.clone(),
            };
            self.reject_aggregates(&ast, "GROUP BY")?;
            group_asts.push(ast);
        }
        let group_exprs: Vec<ScalarExpr> = group_asts
            .iter()
            .map(|g| self.bind_expr(g, &in_schema))
            .collect::<Result<_>>()?;
        // Collect aggregate calls from projection and HAVING.
        let mut agg_asts: Vec<Expr> = Vec::new();
        for (e, _) in items {
            collect_aggregates(e, &mut agg_asts);
        }
        if let Some(h) = &select.having {
            collect_aggregates(h, &mut agg_asts);
        }
        // Dedup structurally.
        let mut seen = Vec::new();
        agg_asts.retain(|a| {
            if seen.contains(a) {
                false
            } else {
                seen.push(a.clone());
                true
            }
        });
        let aggregates: Vec<AggregateExpr> = agg_asts
            .iter()
            .map(|a| self.bind_aggregate_call(a, &in_schema))
            .collect::<Result<_>>()?;
        let agg_plan = LogicalPlan::aggregate(input, group_exprs.clone(), aggregates)?;
        let agg_schema = agg_plan.schema().clone();
        // Rewriter: group AST -> ordinal, agg AST -> ordinal.
        let ctx = PostAggContext {
            binder: self,
            group_asts: &group_asts,
            agg_asts: &agg_asts,
            n_groups: group_asts.len(),
            agg_schema: &agg_schema,
        };
        let mut plan = agg_plan;
        // HAVING filters above the aggregate.
        if let Some(h) = &select.having {
            let predicate = ctx.rewrite(h)?;
            expect_boolean(&predicate, &agg_schema, "HAVING")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }
        let mut exprs = Vec::with_capacity(items.len());
        let mut names = Vec::with_capacity(items.len());
        for (ast, name) in items {
            exprs.push(ctx.rewrite(ast)?);
            names.push(name.clone());
        }
        LogicalPlan::project_named(plan, exprs, names)
    }

    /// Rewrites `expr [NOT] IN (SELECT ...)` into a semi/anti join.
    ///
    /// Dialect note (documented deviation from SQL's three-valued
    /// `IN`): NULLs never match — a NULL tested value is dropped, and
    /// NULLs in the subquery result are treated as non-matching for
    /// `NOT IN` (most engines' historical pragmatics) rather than
    /// poisoning the whole predicate.
    fn bind_in_subquery(
        &self,
        plan: LogicalPlan,
        tested: &Expr,
        negated: bool,
        query: &Query,
    ) -> Result<LogicalPlan> {
        let sub = self.bind_query(query)?;
        if sub.schema().len() != 1 {
            return Err(GisError::Analysis(format!(
                "IN (SELECT ...) must produce exactly one column, got {}",
                sub.schema().len()
            )));
        }
        let left_schema = plan.schema().clone();
        let key = self.bind_expr(tested, &left_schema)?;
        self.reject_aggregates(tested, "IN (SELECT ...)")?;
        // Types must unify.
        let kt = key.data_type(&left_schema)?;
        let st = sub.schema().field(0).data_type;
        kt.common_supertype(st).ok_or_else(|| {
            GisError::Analysis(format!(
                "IN (SELECT ...): cannot compare {kt} with subquery column {st}"
            ))
        })?;
        let left_len = left_schema.len();
        let on = key.clone().eq(ScalarExpr::col(left_len));
        let kind = if negated {
            JoinKind::Anti
        } else {
            JoinKind::Semi
        };
        let mut joined = LogicalPlan::join(plan, sub, kind, Some(on));
        if negated {
            // NULL tested values never satisfy NOT IN.
            joined = LogicalPlan::Filter {
                input: Box::new(joined),
                predicate: ScalarExpr::IsNull {
                    expr: Box::new(key),
                    negated: true,
                },
            };
        }
        Ok(joined)
    }

    fn bind_aggregate_call(&self, e: &Expr, input: &Schema) -> Result<AggregateExpr> {
        let Expr::Function {
            name,
            args,
            distinct,
        } = e
        else {
            return Err(GisError::Internal("not an aggregate call".into()));
        };
        let func = resolve_aggregate(name)
            .ok_or_else(|| GisError::Internal(format!("unknown aggregate '{name}'")))?;
        let arg = match args.as_slice() {
            [Expr::Wildcard] | [] if func == AggFunc::Count => None,
            [a] => {
                self.reject_aggregates(a, "aggregate argument")?;
                Some(self.bind_expr(a, input)?)
            }
            _ => {
                return Err(GisError::Analysis(format!(
                    "{name}() takes exactly one argument"
                )))
            }
        };
        if let Some(a) = &arg {
            let t = a.data_type(input)?;
            let ok = match func {
                AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
                AggFunc::Sum | AggFunc::Avg => t.is_numeric() || t == DataType::Null,
            };
            if !ok {
                return Err(GisError::Analysis(format!("{name}() cannot aggregate {t}")));
            }
        }
        Ok(AggregateExpr {
            func,
            arg,
            distinct: *distinct,
        })
    }

    fn expand_projection(
        &self,
        items: &[SelectItem],
        schema: &SchemaRef,
    ) -> Result<Vec<(Expr, String)>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    if schema.is_empty() {
                        return Err(GisError::Analysis("SELECT * with no FROM clause".into()));
                    }
                    for f in schema.fields() {
                        out.push((
                            Expr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                            },
                            f.name.clone(),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for f in schema.fields() {
                        if f.qualifier
                            .as_deref()
                            .is_some_and(|fq| fq.eq_ignore_ascii_case(q))
                        {
                            any = true;
                            out.push((
                                Expr::Column {
                                    qualifier: f.qualifier.clone(),
                                    name: f.name.clone(),
                                },
                                f.name.clone(),
                            ));
                        }
                    }
                    if !any {
                        return Err(GisError::Analysis(format!(
                            "unknown relation '{q}' in {q}.*"
                        )));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    out.push((expr.clone(), name));
                }
            }
        }
        Ok(out)
    }

    fn bind_table_ref(&self, t: &TableRef) -> Result<LogicalPlan> {
        match t {
            TableRef::Table {
                source,
                name,
                alias,
            } => {
                let resolved = self.catalog.resolve(source.as_deref(), name)?;
                let alias = alias.clone().unwrap_or_else(|| name.clone());
                Ok(LogicalPlan::TableScan(
                    crate::plan::logical::TableScanNode::new(alias, resolved),
                ))
            }
            TableRef::Subquery { query, alias } => {
                let inner = self.bind_query(query)?;
                // Requalify the subquery's output under the alias.
                let schema = Arc::new(inner.schema().requalify(alias));
                // Identity projection to install the new schema.
                let exprs: Vec<ScalarExpr> = (0..schema.len()).map(ScalarExpr::col).collect();
                Ok(LogicalPlan::Projection {
                    input: Box::new(inner),
                    exprs,
                    schema,
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                let combined = l.schema().join(r.schema());
                let on = match constraint {
                    JoinConstraint::None => None,
                    JoinConstraint::On(e) => {
                        self.reject_aggregates(e, "JOIN ON")?;
                        let bound = self.bind_expr(e, &combined)?;
                        expect_boolean(&bound, &combined, "JOIN ON")?;
                        Some(bound)
                    }
                    JoinConstraint::Using(cols) => {
                        let left_len = l.schema().len();
                        let mut parts = Vec::new();
                        for c in cols {
                            let li = l.schema().index_of(None, c)?;
                            let ri = r.schema().index_of(None, c)?;
                            parts.push(ScalarExpr::col(li).eq(ScalarExpr::col(left_len + ri)));
                        }
                        ScalarExpr::conjunction(parts)
                    }
                };
                if *kind != JoinKind::Cross && on.is_none() {
                    return Err(GisError::Analysis(
                        "join requires an ON or USING constraint".into(),
                    ));
                }
                Ok(LogicalPlan::join(l, r, *kind, on))
            }
        }
    }

    /// Plans ORDER BY: keys bind against the output scope when they
    /// can; when the root is a projection and a key only resolves in
    /// its *input* scope (e.g. `ORDER BY a.id` after qualifiers were
    /// dropped, or ordering by a non-projected column), the sort is
    /// planned **below** the projection, where the projection is a
    /// 1:1 row mapping so result order is preserved.
    fn attach_order_by(&self, plan: LogicalPlan, order_by: &[OrderByExpr]) -> Result<LogicalPlan> {
        match self.bind_order_by(order_by, plan.schema()) {
            Ok(keys) => Ok(LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            }),
            Err(outer_err) => match plan {
                LogicalPlan::Projection {
                    input,
                    exprs,
                    schema,
                } => {
                    // Inner scope: ordinals and aliases refer to the
                    // projection's expressions, names to its input.
                    let keys = order_by
                        .iter()
                        .map(|o| {
                            let expr = match &o.expr {
                                Expr::Literal(Value::Int64(k)) => {
                                    let idx = *k as usize;
                                    if idx == 0 || idx > exprs.len() {
                                        return Err(GisError::Analysis(format!(
                                            "ORDER BY position {idx} out of range"
                                        )));
                                    }
                                    exprs[idx - 1].clone()
                                }
                                Expr::Column {
                                    qualifier: None,
                                    name,
                                } if schema.index_of(None, name).is_ok() => {
                                    let idx = schema.index_of(None, name)?;
                                    exprs[idx].clone()
                                }
                                other => self.bind_expr(other, input.schema())?,
                            };
                            Ok(SortExpr {
                                expr,
                                asc: o.asc,
                                nulls_first: o.nulls_first.unwrap_or(true),
                            })
                        })
                        .collect::<Result<Vec<_>>>()
                        .map_err(|_| outer_err)?;
                    Ok(LogicalPlan::Projection {
                        input: Box::new(LogicalPlan::Sort { input, keys }),
                        exprs,
                        schema,
                    })
                }
                other => {
                    let _ = other;
                    Err(outer_err)
                }
            },
        }
    }

    fn bind_order_by(&self, order_by: &[OrderByExpr], schema: &SchemaRef) -> Result<Vec<SortExpr>> {
        order_by
            .iter()
            .map(|o| {
                let expr = match &o.expr {
                    // ORDER BY k: 1-based output ordinal.
                    Expr::Literal(Value::Int64(k)) => {
                        let idx = *k as usize;
                        if idx == 0 || idx > schema.len() {
                            return Err(GisError::Analysis(format!(
                                "ORDER BY position {idx} out of range"
                            )));
                        }
                        ScalarExpr::col(idx - 1)
                    }
                    // Projection output drops qualifiers, but users
                    // naturally write `ORDER BY o.amount`; fall back
                    // to the unqualified name when the qualified
                    // lookup misses.
                    Expr::Column {
                        qualifier: Some(_),
                        name,
                    } if schema.index_of_str(&o_expr_qualified(&o.expr)).is_err() => {
                        let idx = schema.index_of(None, name)?;
                        ScalarExpr::col(idx)
                    }
                    other => self.bind_expr(other, schema)?,
                };
                Ok(SortExpr {
                    expr,
                    asc: o.asc,
                    // Default null placement follows direction, the
                    // PostgreSQL convention: ASC → NULLS LAST,
                    // DESC → NULLS FIRST... our engine-wide default
                    // is NULLS FIRST for ASC; we follow the paper-era
                    // simpler rule: nulls first unless specified.
                    nulls_first: o.nulls_first.unwrap_or(true),
                })
            })
            .collect()
    }

    /// Binds a scalar expression against `schema`.
    pub fn bind_expr(&self, e: &Expr, schema: &Schema) -> Result<ScalarExpr> {
        Ok(match e {
            Expr::Column { qualifier, name } => {
                let idx = schema.index_of(qualifier.as_deref(), name)?;
                ScalarExpr::col(idx)
            }
            Expr::Literal(v) => ScalarExpr::lit(v.clone()),
            Expr::Parameter(_) => {
                return Err(GisError::Analysis(
                    "positional parameters are only valid in prepared fragments".into(),
                ))
            }
            Expr::BinaryOp { left, op, right } => ScalarExpr::Binary {
                left: Box::new(self.bind_expr(left, schema)?),
                op: *op,
                right: Box::new(self.bind_expr(right, schema)?),
            },
            Expr::UnaryOp { op, expr } => ScalarExpr::Unary {
                op: *op,
                expr: Box::new(self.bind_expr(expr, schema)?),
            },
            Expr::Function { name, args, .. } => {
                if resolve_aggregate(name).is_some() {
                    return Err(GisError::Analysis(format!(
                        "aggregate {name}() is not allowed here"
                    )));
                }
                let func = ScalarFunc::resolve(name)
                    .ok_or_else(|| GisError::Analysis(format!("unknown function '{name}'")))?;
                let bound: Vec<ScalarExpr> = args
                    .iter()
                    .map(|a| self.bind_expr(a, schema))
                    .collect::<Result<_>>()?;
                // Validate types/arity eagerly for a good error.
                let types: Vec<DataType> = bound
                    .iter()
                    .map(|b| b.data_type(schema))
                    .collect::<Result<_>>()?;
                func.return_type(&types)?;
                ScalarExpr::Func { func, args: bound }
            }
            Expr::Wildcard => {
                return Err(GisError::Analysis(
                    "* is only valid in SELECT lists and COUNT(*)".into(),
                ))
            }
            Expr::InSubquery { .. } => {
                return Err(GisError::Analysis(
                    "IN (SELECT ...) is only supported as a top-level WHERE conjunct".into(),
                ))
            }
            Expr::Cast { expr, to } => {
                let inner = self.bind_expr(expr, schema)?;
                let from = inner.data_type(schema)?;
                if !from.can_cast_to(*to) {
                    return Err(GisError::Analysis(format!("cannot CAST {from} to {to}")));
                }
                ScalarExpr::Cast {
                    expr: Box::new(inner),
                    to: *to,
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                // Desugar `CASE x WHEN v ...` to searched CASE.
                let bound_branches: Vec<(ScalarExpr, ScalarExpr)> = branches
                    .iter()
                    .map(|(w, t)| {
                        let when = match operand {
                            Some(op) => Expr::BinaryOp {
                                left: op.clone(),
                                op: gis_sql::ast::BinaryOp::Eq,
                                right: Box::new(w.clone()),
                            },
                            None => w.clone(),
                        };
                        let bw = self.bind_expr(&when, schema)?;
                        expect_boolean(&bw, schema, "CASE WHEN")?;
                        Ok((bw, self.bind_expr(t, schema)?))
                    })
                    .collect::<Result<_>>()?;
                let bound_else = match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr(e, schema)?)),
                    None => None,
                };
                let out = ScalarExpr::Case {
                    branches: bound_branches,
                    else_expr: bound_else,
                };
                // Validate type unification eagerly.
                out.data_type(schema)?;
                out
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                // Desugar to (e >= low AND e <= high), negated with NOT.
                let e2 = self.bind_expr(expr, schema)?;
                let lo = self.bind_expr(low, schema)?;
                let hi = self.bind_expr(high, schema)?;
                let range = e2
                    .clone()
                    .binary(gis_sql::ast::BinaryOp::GtEq, lo)
                    .and(e2.binary(gis_sql::ast::BinaryOp::LtEq, hi));
                if *negated {
                    ScalarExpr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(range),
                    }
                } else {
                    range
                }
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => ScalarExpr::InList {
                expr: Box::new(self.bind_expr(expr, schema)?),
                list: list
                    .iter()
                    .map(|i| self.bind_expr(i, schema))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Like {
                negated,
                expr,
                pattern,
            } => ScalarExpr::Like {
                expr: Box::new(self.bind_expr(expr, schema)?),
                pattern: Box::new(self.bind_expr(pattern, schema)?),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, schema)?),
                negated: *negated,
            },
        })
    }

    fn reject_aggregates(&self, e: &Expr, clause: &str) -> Result<()> {
        if contains_aggregate(e) {
            return Err(GisError::Analysis(format!(
                "aggregate functions are not allowed in {clause}"
            )));
        }
        Ok(())
    }
}

/// Rewrites post-aggregation expressions (projection items, HAVING)
/// against the aggregate output schema.
struct PostAggContext<'a> {
    binder: &'a Binder,
    group_asts: &'a [Expr],
    agg_asts: &'a [Expr],
    n_groups: usize,
    agg_schema: &'a SchemaRef,
}

impl PostAggContext<'_> {
    fn rewrite(&self, e: &Expr) -> Result<ScalarExpr> {
        // Whole-expression match against a group key?
        if let Some(i) = self.group_asts.iter().position(|g| g == e) {
            return Ok(ScalarExpr::col(i));
        }
        // An aggregate call?
        if let Some(i) = self.agg_asts.iter().position(|a| a == e) {
            return Ok(ScalarExpr::col(self.n_groups + i));
        }
        match e {
            Expr::Column { qualifier, name } => Err(GisError::Analysis(format!(
                "column '{}{}{}' must appear in GROUP BY or an aggregate",
                qualifier.as_deref().unwrap_or(""),
                if qualifier.is_some() { "." } else { "" },
                name
            ))),
            Expr::Literal(v) => Ok(ScalarExpr::lit(v.clone())),
            Expr::BinaryOp { left, op, right } => Ok(ScalarExpr::Binary {
                left: Box::new(self.rewrite(left)?),
                op: *op,
                right: Box::new(self.rewrite(right)?),
            }),
            Expr::UnaryOp { op, expr } => Ok(ScalarExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite(expr)?),
            }),
            Expr::Function { name, args, .. } => {
                let func = ScalarFunc::resolve(name)
                    .ok_or_else(|| GisError::Analysis(format!("unknown function '{name}'")))?;
                Ok(ScalarExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.rewrite(a))
                        .collect::<Result<_>>()?,
                })
            }
            Expr::Cast { expr, to } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.rewrite(expr)?),
                to: *to,
            }),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let rewritten: Vec<(ScalarExpr, ScalarExpr)> = branches
                    .iter()
                    .map(|(w, t)| {
                        let when = match operand {
                            Some(op) => Expr::BinaryOp {
                                left: op.clone(),
                                op: gis_sql::ast::BinaryOp::Eq,
                                right: Box::new(w.clone()),
                            },
                            None => w.clone(),
                        };
                        Ok((self.rewrite(&when)?, self.rewrite(t)?))
                    })
                    .collect::<Result<_>>()?;
                Ok(ScalarExpr::Case {
                    branches: rewritten,
                    else_expr: match else_expr {
                        Some(e) => Some(Box::new(self.rewrite(e)?)),
                        None => None,
                    },
                })
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let e2 = self.rewrite(expr)?;
                let lo = self.rewrite(low)?;
                let hi = self.rewrite(high)?;
                let range = e2
                    .clone()
                    .binary(gis_sql::ast::BinaryOp::GtEq, lo)
                    .and(e2.binary(gis_sql::ast::BinaryOp::LtEq, hi));
                Ok(if *negated {
                    ScalarExpr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(range),
                    }
                } else {
                    range
                })
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => Ok(ScalarExpr::InList {
                expr: Box::new(self.rewrite(expr)?),
                list: list
                    .iter()
                    .map(|i| self.rewrite(i))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::Like {
                negated,
                expr,
                pattern,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.rewrite(expr)?),
                pattern: Box::new(self.rewrite(pattern)?),
                negated: *negated,
            }),
            Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.rewrite(expr)?),
                negated: *negated,
            }),
            Expr::Parameter(_) | Expr::Wildcard | Expr::InSubquery { .. } => Err(
                GisError::Analysis("invalid expression after aggregation".into()),
            ),
        }
        .and_then(|out| {
            // Sanity: the rewritten expression must type-check against
            // the aggregate schema.
            let _ = self.binder;
            out.data_type(self.agg_schema)?;
            Ok(out)
        })
    }
}

/// Renders a qualified column AST as `q.name` for schema lookup.
fn o_expr_qualified(e: &Expr) -> String {
    match e {
        Expr::Column {
            qualifier: Some(q),
            name,
        } => format!("{q}.{name}"),
        Expr::Column { name, .. } => name.clone(),
        _ => String::new(),
    }
}

/// Resolves an aggregate function name.
pub fn resolve_aggregate(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        _ => None?,
    })
}

/// True when the AST contains an aggregate call (not descending into
/// nested aggregates, which the dialect forbids anyway).
fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if let Expr::Function { name, .. } = x {
            if resolve_aggregate(name).is_some() {
                found = true;
            }
        }
    });
    found
}

/// Collects aggregate calls in `e` into `out` (outermost only).
fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Function { name, .. } if resolve_aggregate(name).is_some() => {
            out.push(e.clone());
        }
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::UnaryOp { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            collect_aggregates(expr, out)
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, out);
            }
            for (w, t) in branches {
                collect_aggregates(w, out);
                collect_aggregates(t, out);
            }
            if let Some(el) = else_expr {
                collect_aggregates(el, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for i in list {
                collect_aggregates(i, out);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        // A subquery is its own aggregation scope.
        Expr::InSubquery { expr, .. } => collect_aggregates(expr, out),
        Expr::Column { .. } | Expr::Literal(_) | Expr::Parameter(_) | Expr::Wildcard => {}
    }
}

fn expect_boolean(e: &ScalarExpr, schema: &Schema, clause: &str) -> Result<()> {
    let t = e.data_type(schema)?;
    if t != DataType::Boolean && t != DataType::Null {
        return Err(GisError::Analysis(format!(
            "{clause} must be boolean, got {t}"
        )));
    }
    Ok(())
}

/// Default output name for an unaliased projection expression.
fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => format!("{name}()"),
        Expr::Cast { expr, .. } => default_name(expr),
        _ => {
            // Compact rendering, lowercased, as engines tend to do.
            let s = gis_sql::unparse::expr_to_sql(e);
            if s.len() > 30 {
                "expr".to_string()
            } else {
                s
            }
        }
    }
}

/// Guards against duplicate aliases in one FROM clause (ambiguity
/// trap the schema lookup would otherwise hit late with a worse
/// message). Called by the federation layer before binding.
pub fn check_duplicate_aliases(t: &TableRef, seen: &mut HashSet<String>) -> Result<()> {
    match t {
        TableRef::Join { left, right, .. } => {
            check_duplicate_aliases(left, seen)?;
            check_duplicate_aliases(right, seen)
        }
        other => {
            if let Some(name) = other.visible_name() {
                if !seen.insert(name.to_ascii_lowercase()) {
                    return Err(GisError::Analysis(format!(
                        "duplicate table alias '{name}' in FROM"
                    )));
                }
            }
            Ok(())
        }
    }
}
