//! Projection pruning (column pruning).
//!
//! Top-down pass carrying the set of output ordinals the parent
//! needs. Each node narrows its own output to (a superset of) that
//! set, recurses, and reports which of its *original* ordinals it
//! still produces so the parent can remap its expressions. For a
//! federation this is the second half of traffic minimization: a
//! fragment then requests only the columns the query touches.

use crate::expr::ScalarExpr;
use crate::plan::logical::{JoinNode, LogicalPlan, SortExpr};
use gis_sql::ast::JoinKind;
use gis_types::{GisError, Result, Schema};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Prunes unused columns everywhere below the root (the root's own
/// output is preserved exactly).
pub fn prune_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    let all: BTreeSet<usize> = (0..plan.schema().len()).collect();
    let (pruned, produced) = prune(plan, &all)?;
    // The root must present its original schema order; a node that
    // surfaced extra columns (e.g. a Filter's predicate inputs) gets
    // narrowed back.
    let want: Vec<usize> = all.into_iter().collect();
    narrow_to(pruned, &produced, &want)
}

/// Returns the pruned plan and the ordered list of the node's
/// *original* output ordinals that the new plan produces.
fn prune(plan: LogicalPlan, required: &BTreeSet<usize>) -> Result<(LogicalPlan, Vec<usize>)> {
    match plan {
        LogicalPlan::TableScan(mut t) => {
            let current = t.output_ordinals();
            let keep: Vec<usize> = required.iter().map(|&i| current[i]).collect();
            // Keep global ordinal order stable (sorted) for
            // determinism.
            let mut keep_sorted = keep.clone();
            keep_sorted.sort_unstable();
            keep_sorted.dedup();
            if keep_sorted.is_empty() {
                // A constant-only projection (`SELECT 1 FROM t`)
                // needs no columns — but a zero-column batch cannot
                // carry a row count, so pruning to nothing would
                // drop every row. Ship the narrowest available
                // column as a cardinality carrier.
                let fields = t.resolved.global_schema.fields();
                let narrowest = current
                    .iter()
                    .copied()
                    .min_by_key(|&g| type_width(&fields[g].data_type))
                    .unwrap_or(0);
                keep_sorted.push(narrowest);
            }
            t.projection = Some(keep_sorted.clone());
            t.recompute_schema();
            // Which original output ordinals do we now produce?
            let produced: Vec<usize> = keep_sorted
                .iter()
                .map(|g| current.iter().position(|c| c == g).expect("subset"))
                .collect();
            Ok((LogicalPlan::TableScan(t), produced))
        }
        LogicalPlan::Values { schema, rows } => {
            let mut keep: Vec<usize> = required.iter().copied().collect();
            // Zero-column batches cannot carry a row count; keep one
            // column as the cardinality carrier (see TableScan arm).
            if keep.is_empty() && !schema.is_empty() {
                keep.push(0);
            }
            let new_schema = Arc::new(schema.project(&keep));
            let new_rows = rows
                .into_iter()
                .map(|r| keep.iter().map(|&i| r[i].clone()).collect())
                .collect();
            Ok((
                LogicalPlan::Values {
                    schema: new_schema,
                    rows: new_rows,
                },
                keep,
            ))
        }
        // Materialized rows are already local; narrowing them saves
        // no traffic, so pass the node through unpruned.
        leaf @ LogicalPlan::ViewScan { .. } => {
            let n = leaf.schema().len();
            Ok((leaf, (0..n).collect()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need: BTreeSet<usize> = required.clone();
            need.extend(predicate.referenced_columns());
            let (child, produced) = prune(*input, &need)?;
            let map = position_map(&produced);
            let predicate = predicate.remap_columns(&map)?;
            Ok((
                LogicalPlan::Filter {
                    input: Box::new(child),
                    predicate,
                },
                produced,
            ))
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => {
            let mut keep: Vec<usize> = required.iter().copied().collect();
            // A projection pruned to zero columns would lose the
            // relation's row count (constant-only parents still
            // observe cardinality through DISTINCT, COUNT, etc.);
            // keep one expression as the cardinality carrier.
            if keep.is_empty() && !exprs.is_empty() {
                keep.push(0);
            }
            let kept_exprs: Vec<ScalarExpr> = keep.iter().map(|&i| exprs[i].clone()).collect();
            let mut need = BTreeSet::new();
            for e in &kept_exprs {
                need.extend(e.referenced_columns());
            }
            let (child, produced) = prune(*input, &need)?;
            let map = position_map(&produced);
            let remapped: Vec<ScalarExpr> = kept_exprs
                .into_iter()
                .map(|e| e.remap_columns(&map))
                .collect::<Result<_>>()?;
            let new_schema = Arc::new(schema.project(&keep));
            Ok((
                LogicalPlan::Projection {
                    input: Box::new(child),
                    exprs: remapped,
                    schema: new_schema,
                },
                keep,
            ))
        }
        LogicalPlan::Join(j) => prune_join(j, required),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => {
            // Keep the full aggregate output shape (group cols +
            // aggs); prune only the input to what the expressions
            // reference. (Narrowing agg outputs would change sibling
            // ordinals; not worth the complexity here.)
            let mut need = BTreeSet::new();
            for g in &group_exprs {
                need.extend(g.referenced_columns());
            }
            for a in &aggregates {
                if let Some(arg) = &a.arg {
                    need.extend(arg.referenced_columns());
                }
            }
            // An argless COUNT(*) still needs at least one input
            // column to count rows over.
            if need.is_empty() && !input.schema().is_empty() {
                need.insert(0);
            }
            let (child, produced) = prune(*input, &need)?;
            let map = position_map(&produced);
            let group_exprs = group_exprs
                .into_iter()
                .map(|g| g.remap_columns(&map))
                .collect::<Result<Vec<_>>>()?;
            let aggregates = aggregates
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|x| x.remap_columns(&map)).transpose()?;
                    Ok(a)
                })
                .collect::<Result<Vec<_>>>()?;
            let n_out = schema.len();
            Ok((
                LogicalPlan::Aggregate {
                    input: Box::new(child),
                    group_exprs,
                    aggregates,
                    schema,
                },
                (0..n_out).collect(),
            ))
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = required.clone();
            for k in &keys {
                need.extend(k.expr.referenced_columns());
            }
            let (child, produced) = prune(*input, &need)?;
            let map = position_map(&produced);
            let keys = keys
                .into_iter()
                .map(|k| {
                    Ok(SortExpr {
                        expr: k.expr.remap_columns(&map)?,
                        ..k
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Ok((
                LogicalPlan::Sort {
                    input: Box::new(child),
                    keys,
                },
                produced,
            ))
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let (child, produced) = prune(*input, required)?;
            Ok((
                LogicalPlan::Limit {
                    input: Box::new(child),
                    skip,
                    fetch,
                },
                produced,
            ))
        }
        LogicalPlan::Distinct { input } => {
            // DISTINCT semantics depend on every column: no pruning
            // below, identity above.
            let all: BTreeSet<usize> = (0..input.schema().len()).collect();
            let (child, produced) = prune(*input, &all)?;
            debug_assert_eq!(produced.len(), child.schema().len());
            Ok((
                LogicalPlan::Distinct {
                    input: Box::new(child),
                },
                produced,
            ))
        }
        LogicalPlan::Union { inputs, schema } => {
            let keep: Vec<usize> = required.iter().copied().collect();
            let mut new_inputs = Vec::with_capacity(inputs.len());
            for i in inputs {
                let (child, produced) = prune(i, required)?;
                // Children must produce exactly `keep` in order; they
                // may produce a superset — narrow with a projection.
                let child = narrow_to(child, &produced, &keep)?;
                new_inputs.push(child);
            }
            let new_schema = Arc::new(schema.project(&keep));
            Ok((
                LogicalPlan::Union {
                    inputs: new_inputs,
                    schema: new_schema,
                },
                keep,
            ))
        }
    }
}

fn prune_join(j: JoinNode, required: &BTreeSet<usize>) -> Result<(LogicalPlan, Vec<usize>)> {
    let left_len = j.left.schema().len();
    let mut need_left = BTreeSet::new();
    let mut need_right = BTreeSet::new();
    for &r in required {
        if r < left_len {
            need_left.insert(r);
        } else {
            need_right.insert(r - left_len);
        }
    }
    if let Some(on) = &j.on {
        for c in on.referenced_columns() {
            if c < left_len {
                need_left.insert(c);
            } else {
                need_right.insert(c - left_len);
            }
        }
    }
    // Semi/anti joins output only the left side but still consume
    // right-side key columns via ON.
    // Keep at least one column per side so schemas stay non-empty.
    if need_left.is_empty() && !j.left.schema().is_empty() {
        need_left.insert(0);
    }
    if need_right.is_empty() && !j.right.schema().is_empty() {
        need_right.insert(0);
    }
    let (left, left_prod) = prune(*j.left, &need_left)?;
    let (right, right_prod) = prune(*j.right, &need_right)?;
    // Build the remap for the combined schema.
    let mut combined_map: HashMap<usize, usize> = HashMap::new();
    for (new_pos, &old) in left_prod.iter().enumerate() {
        combined_map.insert(old, new_pos);
    }
    let new_left_len = left_prod.len();
    for (new_pos, &old) in right_prod.iter().enumerate() {
        combined_map.insert(left_len + old, new_left_len + new_pos);
    }
    let on = j.on.map(|e| e.remap_columns(&combined_map)).transpose()?;
    let kind = j.kind;
    let joined = LogicalPlan::join(left, right, kind, on);
    // What original combined ordinals does the new join produce?
    let produced: Vec<usize> = match kind {
        JoinKind::Semi | JoinKind::Anti => left_prod,
        _ => left_prod
            .into_iter()
            .chain(right_prod.into_iter().map(|r| left_len + r))
            .collect(),
    };
    Ok((joined, produced))
}

/// `child` produces original ordinals `produced`; narrow it (with a
/// projection if needed) to exactly `want` in order.
fn narrow_to(child: LogicalPlan, produced: &[usize], want: &[usize]) -> Result<LogicalPlan> {
    if produced == want {
        return Ok(child);
    }
    let map = position_map(produced);
    let exprs: Vec<ScalarExpr> = want
        .iter()
        .map(|w| {
            map.get(w).map(|&p| ScalarExpr::col(p)).ok_or_else(|| {
                GisError::Internal(format!("pruned child lost required ordinal {w}"))
            })
        })
        .collect::<Result<_>>()?;
    let fields: Vec<gis_types::Field> = want
        .iter()
        .map(|w| child.schema().field(map[w]).clone())
        .collect();
    Ok(LogicalPlan::Projection {
        input: Box::new(child),
        exprs,
        schema: Arc::new(Schema::new(fields)),
    })
}

/// old ordinal → new position.
fn position_map(produced: &[usize]) -> HashMap<usize, usize> {
    produced
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect()
}

/// Relative wire width of a column type, for picking the cheapest
/// cardinality-carrier column when a scan would otherwise be pruned
/// to zero columns.
fn type_width(dt: &gis_types::DataType) -> u8 {
    match dt {
        gis_types::DataType::Null | gis_types::DataType::Boolean => 1,
        gis_types::DataType::Int32 | gis_types::DataType::Date => 4,
        gis_types::DataType::Int64
        | gis_types::DataType::Float64
        | gis_types::DataType::Timestamp => 8,
        gis_types::DataType::Utf8 => 16,
    }
}
