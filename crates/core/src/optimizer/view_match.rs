//! Cost-gated materialized-view matching.
//!
//! Runs at *execution* time (not inside the optimizer pipeline): the
//! federation rewrites an already-optimized plan, replacing any
//! subtree a fresh view subsumes with a [`LogicalPlan::ViewScan`].
//! Matching after optimization keeps it cheap and canonical — both
//! the query and the view definition went through the same rule
//! pipeline, so equivalent queries meet as structurally equal plans —
//! and keeps view decisions out of the runtime's plan cache, where a
//! cached choice could outlive the view's freshness.
//!
//! Two matching levels:
//!
//! 1. **Subtree equality** — any subtree structurally equal to the
//!    view's plan (ignoring alias/qualifier names; expressions are
//!    ordinal-based) is replaced wholesale.
//! 2. **Scan subsumption** — a query `TableScan` is answered from a
//!    view that scans the same source table with *weaker* filters and
//!    a *wider* projection: the view's filters must be a subset of the
//!    query's conjuncts, every column the query needs (output and
//!    residual filters) must survive the view's projection, and the
//!    view must not be truncated by a pushed fetch. Compensating
//!    Filter/Projection/Limit operators are stacked on top.
//!
//! Every replacement passes a cost gate comparing the estimated bytes
//! the subtree would ship over the WAN against the (heavily
//! discounted) cost of scanning the view's rows in mediator memory.

use crate::cost;
use crate::plan::logical::{LogicalPlan, TableScanNode};
use gis_types::Batch;
use std::collections::HashMap;
use std::sync::Arc;

/// How much cheaper a mediator-local byte is than a WAN-shipped byte
/// in the gate's single-currency comparison. A view only loses when
/// its materialized size exceeds the subtree's estimated shipped
/// bytes by this factor — e.g. a huge view versus a `LIMIT 3` probe.
const WAN_TO_LOCAL_BYTE_RATIO: f64 = 64.0;

/// A fresh (or just-refreshed) view offered to the matcher.
#[derive(Debug, Clone)]
pub struct ViewCandidate {
    /// View name (for spans and metrics).
    pub name: String,
    /// The view's optimized plan.
    pub plan: Arc<LogicalPlan>,
    /// The materialized rows.
    pub batch: Batch,
}

/// Rewrites `plan`, answering subtrees from `candidates` where a view
/// subsumes them and wins the cost gate. Returns `None` when nothing
/// matched; otherwise the rewritten plan plus the names of the views
/// used (a view can be used more than once — self-joins).
pub fn rewrite_with_views(
    plan: &LogicalPlan,
    candidates: &[ViewCandidate],
) -> Option<(LogicalPlan, Vec<String>)> {
    if candidates.is_empty() {
        return None;
    }
    let mut used = Vec::new();
    let rewritten = rewrite(plan, candidates, &mut used);
    if used.is_empty() {
        None
    } else {
        Some((rewritten, used))
    }
}

/// Dry-run: would any subtree of `plan` be answerable from a view
/// with this plan, ignoring freshness and the cost gate? Used to
/// decide whether an on-query-if-stale view is worth refreshing
/// *before* paying for the refresh.
pub fn would_match(plan: &LogicalPlan, view_plan: &LogicalPlan) -> bool {
    if plans_equivalent(plan, view_plan) {
        return true;
    }
    if let (LogicalPlan::TableScan(q), Some((v, v_ords))) = (plan, view_as_scan(view_plan)) {
        if scan_subsumes(q, v, &v_ords) {
            return true;
        }
    }
    plan.children().iter().any(|c| would_match(c, view_plan))
}

fn rewrite(
    plan: &LogicalPlan,
    candidates: &[ViewCandidate],
    used: &mut Vec<String>,
) -> LogicalPlan {
    for cand in candidates {
        if let Some(replacement) = match_at(plan, cand) {
            used.push(cand.name.clone());
            return replacement;
        }
    }
    rebuild_with_children(plan, candidates, used)
}

/// Tries to answer exactly this subtree from one candidate.
fn match_at(plan: &LogicalPlan, cand: &ViewCandidate) -> Option<LogicalPlan> {
    if plans_equivalent(plan, cand.plan.as_ref()) {
        if !passes_cost_gate(plan, &cand.batch) {
            return None;
        }
        // Adopt the query side's schema: columns match positionally,
        // only alias/qualifier names may differ.
        return Some(LogicalPlan::ViewScan {
            name: cand.name.clone(),
            schema: plan.schema().clone(),
            batch: cand.batch.clone(),
        });
    }
    if let (LogicalPlan::TableScan(q), Some((v, v_ords))) = (plan, view_as_scan(cand.plan.as_ref()))
    {
        if scan_subsumes(q, v, &v_ords) && passes_cost_gate(plan, &cand.batch) {
            return Some(compensated_scan(q, v, &v_ords, cand));
        }
    }
    None
}

/// A view plan seen as one source-table scan: the scan node plus the
/// *global* ordinals of the view's output columns, in materialized
/// column order. Looks through a top projection of bare column refs —
/// the binder keeps one purely for output naming, and the optimizer's
/// identity rule preserves it when the rename is observable.
fn view_as_scan(plan: &LogicalPlan) -> Option<(&TableScanNode, Vec<usize>)> {
    match plan {
        LogicalPlan::TableScan(v) => Some((v, v.output_ordinals())),
        LogicalPlan::Projection { input, exprs, .. } => {
            if let LogicalPlan::TableScan(v) = input.as_ref() {
                let scan_ords = v.output_ordinals();
                let mut ords = Vec::with_capacity(exprs.len());
                for e in exprs {
                    match e {
                        crate::expr::ScalarExpr::Column(i) => ords.push(*scan_ords.get(*i)?),
                        _ => return None,
                    }
                }
                Some((v, ords))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn rebuild_with_children(
    plan: &LogicalPlan,
    candidates: &[ViewCandidate],
    used: &mut Vec<String>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::TableScan(_) | LogicalPlan::Values { .. } | LogicalPlan::ViewScan { .. } => {
            plan.clone()
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite(input, candidates, used)),
            predicate: predicate.clone(),
        },
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(rewrite(input, candidates, used)),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Join(j) => {
            let mut j = j.clone();
            j.left = Box::new(rewrite(&j.left, candidates, used));
            j.right = Box::new(rewrite(&j.right, candidates, used));
            LogicalPlan::Join(j)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(input, candidates, used)),
            group_exprs: group_exprs.clone(),
            aggregates: aggregates.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(input, candidates, used)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, skip, fetch } => LogicalPlan::Limit {
            input: Box::new(rewrite(input, candidates, used)),
            skip: *skip,
            fetch: *fetch,
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| rewrite(i, candidates, used))
                .collect(),
            schema: schema.clone(),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(input, candidates, used)),
        },
    }
}

/// The gate: estimated WAN bytes the subtree would ship versus the
/// discounted cost of scanning the view's materialized bytes locally.
fn passes_cost_gate(subtree: &LogicalPlan, batch: &Batch) -> bool {
    let shipped = cost::estimate(subtree).total_bytes();
    let local = batch.wire_size() as f64 / WAN_TO_LOCAL_BYTE_RATIO;
    local <= shipped.max(1.0)
}

/// Structural plan equality modulo alias/qualifier names. Sound
/// because every expression is ordinal-resolved and both plans went
/// through the same optimizer pipeline.
pub fn plans_equivalent(a: &LogicalPlan, b: &LogicalPlan) -> bool {
    use LogicalPlan as L;
    match (a, b) {
        (L::TableScan(x), L::TableScan(y)) => {
            x.resolved.mapping == y.resolved.mapping
                && x.projection == y.projection
                && x.filters == y.filters
                && x.fetch == y.fetch
        }
        (
            L::Filter {
                input: ia,
                predicate: pa,
            },
            L::Filter {
                input: ib,
                predicate: pb,
            },
        ) => pa == pb && plans_equivalent(ia, ib),
        (
            L::Projection {
                input: ia,
                exprs: ea,
                ..
            },
            L::Projection {
                input: ib,
                exprs: eb,
                ..
            },
        ) => ea == eb && plans_equivalent(ia, ib),
        (L::Join(x), L::Join(y)) => {
            x.kind == y.kind
                && x.on == y.on
                && plans_equivalent(&x.left, &y.left)
                && plans_equivalent(&x.right, &y.right)
        }
        (
            L::Aggregate {
                input: ia,
                group_exprs: ga,
                aggregates: aa,
                ..
            },
            L::Aggregate {
                input: ib,
                group_exprs: gb,
                aggregates: ab,
                ..
            },
        ) => ga == gb && aa == ab && plans_equivalent(ia, ib),
        (
            L::Sort {
                input: ia,
                keys: ka,
            },
            L::Sort {
                input: ib,
                keys: kb,
            },
        ) => ka == kb && plans_equivalent(ia, ib),
        (
            L::Limit {
                input: ia,
                skip: sa,
                fetch: fa,
            },
            L::Limit {
                input: ib,
                skip: sb,
                fetch: fb,
            },
        ) => sa == sb && fa == fb && plans_equivalent(ia, ib),
        (L::Union { inputs: xa, .. }, L::Union { inputs: xb, .. }) => {
            xa.len() == xb.len() && xa.iter().zip(xb).all(|(p, q)| plans_equivalent(p, q))
        }
        (L::Distinct { input: ia }, L::Distinct { input: ib }) => plans_equivalent(ia, ib),
        (
            L::Values {
                schema: sa,
                rows: ra,
            },
            L::Values {
                schema: sb,
                rows: rb,
            },
        ) => {
            ra == rb
                && sa.len() == sb.len()
                && sa
                    .fields()
                    .iter()
                    .zip(sb.fields())
                    .all(|(f, g)| f.data_type == g.data_type)
        }
        // A ViewScan only appears in already-rewritten plans, which
        // are never offered as candidates.
        _ => false,
    }
}

/// True when view scan `v` subsumes query scan `q`: same source
/// table/mapping, the view untruncated, its filters a subset of the
/// query's, and its projection wide enough for everything the query
/// still needs.
fn scan_subsumes(q: &TableScanNode, v: &TableScanNode, v_ords: &[usize]) -> bool {
    if q.resolved.mapping != v.resolved.mapping || v.fetch.is_some() {
        return false;
    }
    let residual = match residual_filters(q, v) {
        Some(r) => r,
        None => return false,
    };
    let covered = |g: usize| v_ords.contains(&g);
    q.output_ordinals().iter().all(|g| covered(*g))
        && residual
            .iter()
            .flat_map(|f| f.referenced_columns())
            .all(covered)
}

/// The query conjuncts not already enforced by the view, or `None`
/// when some view filter is *not* among the query's (the view rows
/// would be missing data the query needs). Multiset semantics: each
/// view conjunct consumes one matching query conjunct.
fn residual_filters(q: &TableScanNode, v: &TableScanNode) -> Option<Vec<crate::expr::ScalarExpr>> {
    let mut residual = q.filters.clone();
    for vf in &v.filters {
        let pos = residual.iter().position(|qf| qf == vf)?;
        residual.remove(pos);
    }
    Some(residual)
}

/// Builds ViewScan + compensating Filter/Projection/Limit replacing
/// query scan `q` answered from view scan `v`'s materialization.
fn compensated_scan(
    q: &TableScanNode,
    v: &TableScanNode,
    v_ords: &[usize],
    cand: &ViewCandidate,
) -> LogicalPlan {
    // Position of each global ordinal within the view's output.
    let pos: HashMap<usize, usize> = v_ords.iter().enumerate().map(|(i, &g)| (g, i)).collect();

    // The view's columns, presented under the query's alias so the
    // compensating operators (and the final schema) keep the names
    // the query expects.
    let base = q.resolved.global_schema.requalify(&q.alias);
    let view_schema = Arc::new(base.project(v_ords));
    let mut plan = LogicalPlan::ViewScan {
        name: cand.name.clone(),
        schema: view_schema,
        batch: cand.batch.clone(),
    };

    let residual = residual_filters(q, v).expect("checked by scan_subsumes");
    if !residual.is_empty() {
        let remapped: Vec<crate::expr::ScalarExpr> = residual
            .into_iter()
            .map(|f| f.remap_columns(&pos).expect("coverage checked"))
            .collect();
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: crate::expr::ScalarExpr::conjunction(remapped)
                .expect("residual is non-empty"),
        };
    }

    let q_ords = q.output_ordinals();
    if q_ords != v_ords {
        let exprs: Vec<crate::expr::ScalarExpr> = q_ords
            .iter()
            .map(|g| crate::expr::ScalarExpr::col(pos[g]))
            .collect();
        plan = LogicalPlan::Projection {
            input: Box::new(plan),
            exprs,
            schema: q.schema.clone(),
        };
    }

    if let Some(n) = q.fetch {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            skip: 0,
            fetch: Some(n),
        };
    }
    plan
}
