//! Cost-based join ordering.
//!
//! Collects maximal regions of inner/cross joins (with their
//! conjunctive predicates), then searches join orders with dynamic
//! programming over relation subsets (bushy trees, avoiding cross
//! joins when a connected order exists). Oversized regions fall back
//! to a greedy smallest-intermediate-first heuristic. The chosen tree
//! is wrapped in a projection restoring the original column order, so
//! the rewrite is transparent to everything above it.

use crate::cost::estimate;
use crate::expr::ScalarExpr;
use crate::plan::logical::{JoinNode, LogicalPlan};
use gis_sql::ast::JoinKind;
use gis_types::{Result, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Reorders inner-join regions found anywhere in the plan.
pub fn reorder_joins(plan: LogicalPlan, dp_limit: usize) -> Result<LogicalPlan> {
    rewrite(plan, dp_limit)
}

fn rewrite(plan: LogicalPlan, dp_limit: usize) -> Result<LogicalPlan> {
    // Region head: an inner/cross join (possibly under filters that
    // pushdown has already distributed, but handle stray filters by
    // absorbing them into the region's predicate pool).
    if is_region_head(&plan) {
        let mut relations = Vec::new();
        let mut predicates = Vec::new();
        collect_region(plan, &mut relations, &mut predicates)?;
        // Recurse inside each relation first.
        let relations: Vec<LogicalPlan> = relations
            .into_iter()
            .map(|r| rewrite(r, dp_limit))
            .collect::<Result<_>>()?;
        return build_ordered(relations, predicates, dp_limit);
    }
    // Otherwise recurse structurally.
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite(*input, dp_limit)?),
            predicate,
        },
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(rewrite(*input, dp_limit)?),
            exprs,
            schema,
        },
        LogicalPlan::Join(j) => LogicalPlan::Join(JoinNode {
            left: Box::new(rewrite(*j.left, dp_limit)?),
            right: Box::new(rewrite(*j.right, dp_limit)?),
            kind: j.kind,
            on: j.on,
            schema: j.schema,
        }),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, dp_limit)?),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input, dp_limit)?),
            keys,
        },
        LogicalPlan::Limit { input, skip, fetch } => LogicalPlan::Limit {
            input: Box::new(rewrite(*input, dp_limit)?),
            skip,
            fetch,
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(|i| rewrite(i, dp_limit))
                .collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(*input, dp_limit)?),
        },
        leaf => leaf,
    })
}

fn is_region_head(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Join(j) => {
            matches!(j.kind, JoinKind::Inner | JoinKind::Cross)
        }
        _ => false,
    }
}

/// Flattens an inner-join tree into relations + predicates over the
/// region's combined schema (relations in original left-to-right
/// order).
fn collect_region(
    plan: LogicalPlan,
    relations: &mut Vec<LogicalPlan>,
    predicates: &mut Vec<ScalarExpr>,
) -> Result<()> {
    match plan {
        LogicalPlan::Join(j) if matches!(j.kind, JoinKind::Inner | JoinKind::Cross) => {
            let left_len = j.left.schema().len();
            let offset_before_left = region_width(relations);
            collect_region(*j.left, relations, predicates)?;
            let offset_before_right = region_width(relations);
            collect_region(*j.right, relations, predicates)?;
            if let Some(on) = j.on {
                // `on` ordinals: [0, left_len) over the left subtree,
                // [left_len, ..) over the right. Shift into region
                // coordinates.
                let shifted = on.transform(&|e| match e {
                    ScalarExpr::Column(c) => {
                        if c < left_len {
                            ScalarExpr::Column(offset_before_left + c)
                        } else {
                            ScalarExpr::Column(offset_before_right + (c - left_len))
                        }
                    }
                    other => other,
                });
                predicates.extend(shifted.split_conjunction().into_iter().cloned());
            }
            Ok(())
        }
        other => {
            relations.push(other);
            Ok(())
        }
    }
}

fn region_width(relations: &[LogicalPlan]) -> usize {
    relations.iter().map(|r| r.schema().len()).sum()
}

/// A DP entry: plan plus the region-ordinal of each output column.
#[derive(Clone)]
struct Candidate {
    plan: LogicalPlan,
    cols: Vec<usize>,
    cost: f64,
}

/// Builds the best join tree over `relations` with `predicates`
/// (region ordinals) and restores the original column order.
fn build_ordered(
    relations: Vec<LogicalPlan>,
    predicates: Vec<ScalarExpr>,
    dp_limit: usize,
) -> Result<LogicalPlan> {
    let n = relations.len();
    // Region ordinal ranges per relation.
    let mut offsets = Vec::with_capacity(n);
    let mut acc = 0;
    for r in &relations {
        offsets.push(acc);
        acc += r.schema().len();
    }
    let total_cols = acc;
    let base: Vec<Candidate> = relations
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let w = r.schema().len();
            let rows = estimate(&r).rows;
            Candidate {
                plan: r,
                cols: (offsets[i]..offsets[i] + w).collect(),
                cost: rows,
            }
        })
        .collect();
    let ordered = if n <= 1 {
        base.into_iter().next()
    } else if n <= dp_limit {
        dp_order(&base, &predicates)
    } else {
        greedy_order(base, &predicates)
    };
    let Some(mut best) = ordered else {
        return Err(gis_types::GisError::Plan(
            "join ordering produced no plan".into(),
        ));
    };
    // Any predicates never applied (shouldn't happen, but a predicate
    // referencing zero relations would slip through): apply on top.
    let applied = applied_mask(&best, &predicates);
    let leftovers: Vec<ScalarExpr> = predicates
        .iter()
        .zip(&applied)
        .filter(|(_, a)| !**a)
        .map(|(p, _)| remap_region_expr(p, &best.cols))
        .collect::<Result<_>>()?;
    if let Some(f) = ScalarExpr::conjunction(leftovers) {
        best.plan = LogicalPlan::Filter {
            input: Box::new(best.plan),
            predicate: f,
        };
    }
    // Restore original region column order with a projection.
    let pos: HashMap<usize, usize> = best.cols.iter().enumerate().map(|(p, &c)| (c, p)).collect();
    let exprs: Vec<ScalarExpr> = (0..total_cols).map(|c| ScalarExpr::col(pos[&c])).collect();
    let fields: Vec<gis_types::Field> = (0..total_cols)
        .map(|c| best.plan.schema().field(pos[&c]).clone())
        .collect();
    Ok(LogicalPlan::Projection {
        input: Box::new(best.plan),
        exprs,
        schema: Arc::new(Schema::new(fields)),
    })
}

/// Which predicates are applicable entirely within `cand`'s columns?
fn applied_mask(cand: &Candidate, predicates: &[ScalarExpr]) -> Vec<bool> {
    predicates
        .iter()
        .map(|p| p.referenced_columns().iter().all(|c| cand.cols.contains(c)))
        .collect()
}

/// Joins two candidates, attaching every newly-applicable predicate.
fn join_candidates(a: &Candidate, b: &Candidate, predicates: &[ScalarExpr]) -> Result<Candidate> {
    let mut cols = a.cols.clone();
    cols.extend(&b.cols);
    let applicable: Vec<&ScalarExpr> = predicates
        .iter()
        .filter(|p| {
            let refs = p.referenced_columns();
            // Newly applicable: touches both sides or was not yet
            // applicable in either input alone... predicates internal
            // to one side were applied when that side was built.
            let in_a = refs.iter().all(|c| a.cols.contains(c));
            let in_b = refs.iter().all(|c| b.cols.contains(c));
            let in_joined = refs.iter().all(|c| cols.contains(c));
            in_joined && !in_a && !in_b
        })
        .collect();
    let on = ScalarExpr::conjunction(
        applicable
            .iter()
            .map(|p| remap_region_expr(p, &cols))
            .collect::<Result<Vec<_>>>()?,
    );
    let has_on = on.is_some();
    let plan = LogicalPlan::join(
        a.plan.clone(),
        b.plan.clone(),
        if has_on {
            JoinKind::Inner
        } else {
            JoinKind::Cross
        },
        on,
    );
    let rows = estimate(&plan).rows;
    Ok(Candidate {
        plan,
        cols,
        cost: a.cost + b.cost + rows,
    })
}

fn remap_region_expr(p: &ScalarExpr, cols: &[usize]) -> Result<ScalarExpr> {
    let map: HashMap<usize, usize> = cols.iter().enumerate().map(|(pos, &c)| (c, pos)).collect();
    p.clone().remap_columns(&map)
}

/// Exhaustive bushy DP over subsets.
fn dp_order(base: &[Candidate], predicates: &[ScalarExpr]) -> Option<Candidate> {
    let n = base.len();
    let full: usize = (1 << n) - 1;
    let mut dp: Vec<Option<Candidate>> = vec![None; 1 << n];
    for (i, c) in base.iter().enumerate() {
        dp[1 << i] = Some(c.clone());
    }
    for subset in 1..=full {
        if dp[subset].is_some() {
            continue;
        }
        let mut best: Option<Candidate> = None;
        // Enumerate proper sub-splits.
        let mut left = (subset - 1) & subset;
        while left > 0 {
            let right = subset ^ left;
            if left < right {
                // each unordered split visited once
                if let (Some(a), Some(b)) = (&dp[left], &dp[right]) {
                    for (x, y) in [(a, b), (b, a)] {
                        if let Ok(cand) = join_candidates(x, y, predicates) {
                            // Prefer connected (non-cross) joins.
                            let is_cross = matches!(
                                &cand.plan,
                                LogicalPlan::Join(j) if j.kind == JoinKind::Cross
                            );
                            let penalized = if is_cross { cand.cost * 1e6 } else { cand.cost };
                            let better = match &best {
                                None => true,
                                Some(b2) => {
                                    let b_cross = matches!(
                                        &b2.plan,
                                        LogicalPlan::Join(j) if j.kind == JoinKind::Cross
                                    );
                                    let b_pen = if b_cross { b2.cost * 1e6 } else { b2.cost };
                                    penalized < b_pen
                                }
                            };
                            if better {
                                best = Some(cand);
                            }
                        }
                    }
                }
            }
            left = (left - 1) & subset;
        }
        dp[subset] = best;
    }
    dp[full].clone()
}

/// Greedy fallback: repeatedly join the pair with the smallest
/// estimated result.
fn greedy_order(mut pool: Vec<Candidate>, predicates: &[ScalarExpr]) -> Option<Candidate> {
    while pool.len() > 1 {
        let mut best: Option<(usize, usize, Candidate)> = None;
        for i in 0..pool.len() {
            for jdx in (i + 1)..pool.len() {
                for (x, y) in [(i, jdx), (jdx, i)] {
                    if let Ok(cand) = join_candidates(&pool[x], &pool[y], predicates) {
                        let is_cross = matches!(
                            &cand.plan,
                            LogicalPlan::Join(j) if j.kind == JoinKind::Cross
                        );
                        let score = if is_cross { cand.cost * 1e6 } else { cand.cost };
                        let better = match &best {
                            None => true,
                            Some((_, _, b)) => {
                                let b_cross = matches!(
                                    &b.plan,
                                    LogicalPlan::Join(j) if j.kind == JoinKind::Cross
                                );
                                let b_score = if b_cross { b.cost * 1e6 } else { b.cost };
                                score < b_score
                            }
                        };
                        if better {
                            best = Some((i, jdx, cand));
                        }
                    }
                }
            }
        }
        let (i, jdx, cand) = best?;
        let (hi, lo) = if i > jdx { (i, jdx) } else { (jdx, i) };
        pool.swap_remove(hi);
        pool.swap_remove(lo);
        pool.push(cand);
    }
    pool.into_iter().next()
}
