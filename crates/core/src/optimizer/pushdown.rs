//! Predicate pushdown.
//!
//! Filters migrate toward the leaves: through projections (by
//! substitution), through joins (to the side whose columns they
//! reference, respecting outer-join semantics), through aggregates
//! (group-key predicates only), through sorts/distinct/union, and
//! finally *into* `TableScan.filters`, where the physical planner
//! will try to ship them to the source. Whatever cannot descend is
//! re-attached as a `Filter` at the deepest legal point.

use crate::expr::ScalarExpr;
use crate::plan::logical::{JoinNode, LogicalPlan};
use gis_sql::ast::JoinKind;
use gis_types::Result;
use std::collections::HashMap;

/// Pushes all filter predicates as deep as they can go.
pub fn push_predicates(plan: LogicalPlan) -> Result<LogicalPlan> {
    push(plan, vec![])
}

/// Recursive worker: `preds` are conjuncts expressed over `plan`'s
/// output schema, to be absorbed as deep as possible.
fn push(plan: LogicalPlan, mut preds: Vec<ScalarExpr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            preds.extend(predicate.split_conjunction().into_iter().cloned());
            push(*input, preds)
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => {
            // Substitute projection expressions into the predicates:
            // a predicate over the projection's output becomes one
            // over its input.
            let substituted: Vec<ScalarExpr> = preds
                .into_iter()
                .map(|p| {
                    p.transform(&|e| match e {
                        ScalarExpr::Column(i) => exprs[i].clone(),
                        other => other,
                    })
                })
                .collect();
            let input = push(*input, substituted)?;
            Ok(LogicalPlan::Projection {
                input: Box::new(input),
                exprs,
                schema,
            })
        }
        LogicalPlan::Join(j) => push_join(j, preds),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => {
            // Predicates touching only group-key outputs substitute
            // the group expression and descend; the rest stay above.
            let n_groups = group_exprs.len();
            let mut down = Vec::new();
            let mut stay = Vec::new();
            for p in preds {
                if p.referenced_columns().iter().all(|&c| c < n_groups) {
                    down.push(p.transform(&|e| match e {
                        ScalarExpr::Column(i) => group_exprs[i].clone(),
                        other => other,
                    }));
                } else {
                    stay.push(p);
                }
            }
            let input = push(*input, down)?;
            let agg = LogicalPlan::Aggregate {
                input: Box::new(input),
                group_exprs,
                aggregates,
                schema,
            };
            Ok(wrap(agg, stay))
        }
        LogicalPlan::Sort { input, keys } => {
            let input = push(*input, preds)?;
            Ok(LogicalPlan::Sort {
                input: Box::new(input),
                keys,
            })
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            // Filtering after a limit is not the same as before it:
            // predicates stop here.
            let input = push(*input, vec![])?;
            Ok(wrap(
                LogicalPlan::Limit {
                    input: Box::new(input),
                    skip,
                    fetch,
                },
                preds,
            ))
        }
        LogicalPlan::Distinct { input } => {
            // Distinct commutes with filtering.
            let input = push(*input, preds)?;
            Ok(LogicalPlan::Distinct {
                input: Box::new(input),
            })
        }
        LogicalPlan::Union { inputs, schema } => {
            // Same ordinals on every input.
            let inputs = inputs
                .into_iter()
                .map(|i| push(i, preds.clone()))
                .collect::<Result<_>>()?;
            Ok(LogicalPlan::Union { inputs, schema })
        }
        LogicalPlan::TableScan(mut t) => {
            // Remap output ordinals to full-global-schema ordinals.
            let out_to_global: HashMap<usize, usize> =
                t.output_ordinals().into_iter().enumerate().collect();
            for p in preds {
                let remapped = p.remap_columns(&out_to_global)?;
                t.filters.push(remapped);
            }
            // A filtered scan cannot keep a pre-existing fetch limit
            // (the limit was valid for the unfiltered scan).
            if !t.filters.is_empty() {
                t.fetch = None;
            }
            Ok(LogicalPlan::TableScan(t))
        }
        leaf @ (LogicalPlan::Values { .. } | LogicalPlan::ViewScan { .. }) => Ok(wrap(leaf, preds)),
    }
}

fn push_join(j: JoinNode, preds: Vec<ScalarExpr>) -> Result<LogicalPlan> {
    let left_len = j.left.schema().len();
    let right_len = j.right.schema().len();
    // Where may predicates-from-above descend?
    let (can_left, can_right) = match j.kind {
        JoinKind::Inner | JoinKind::Cross => (true, true),
        // Below-the-join pushes on the preserved side only.
        JoinKind::Left => (true, false),
        JoinKind::Right => (false, true),
        JoinKind::Full => (false, false),
        // Semi/anti output the left schema.
        JoinKind::Semi | JoinKind::Anti => (true, false),
    };
    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut stay = Vec::new();
    for p in preds {
        let cols = p.referenced_columns();
        let all_left = cols.iter().all(|&c| c < left_len);
        let all_right = cols.iter().all(|&c| c >= left_len);
        if all_left && can_left {
            left_preds.push(p);
        } else if all_right && can_right {
            let map: HashMap<usize, usize> = (0..right_len).map(|i| (left_len + i, i)).collect();
            right_preds.push(p.remap_columns(&map)?);
        } else {
            stay.push(p);
        }
    }
    // The ON condition of an INNER join is just a filter: its
    // single-sided conjuncts may also descend.
    let mut on_parts = Vec::new();
    if let Some(on) = &j.on {
        for part in on.split_conjunction() {
            let cols = part.referenced_columns();
            let all_left = cols.iter().all(|&c| c < left_len);
            let all_right = cols.iter().all(|&c| c >= left_len);
            if j.kind == JoinKind::Inner && all_left {
                left_preds.push(part.clone());
            } else if j.kind == JoinKind::Inner && all_right {
                let map: HashMap<usize, usize> =
                    (0..right_len).map(|i| (left_len + i, i)).collect();
                right_preds.push(part.clone().remap_columns(&map)?);
            } else {
                on_parts.push(part.clone());
            }
        }
    }
    let left = push(*j.left, left_preds)?;
    let right = push(*j.right, right_preds)?;
    let joined = LogicalPlan::join(left, right, j.kind, ScalarExpr::conjunction(on_parts));
    Ok(wrap(joined, stay))
}

fn wrap(plan: LogicalPlan, preds: Vec<ScalarExpr>) -> LogicalPlan {
    match ScalarExpr::conjunction(preds) {
        Some(p) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: p,
        },
        None => plan,
    }
}
