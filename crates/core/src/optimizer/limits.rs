//! Limit pushdown.
//!
//! A `LIMIT` at the mediator still ships every row unless the fetch
//! bound travels into the scan fragment. The rule pushes a combined
//! `skip + fetch` bound through order-preserving, row-count-preserving
//! operators (projections) into `TableScan.fetch`; the original
//! `Limit` node stays in place to apply the exact skip/fetch
//! semantics. Filters above a scan block the push only logically —
//! the bound lands in the scan *after* predicate pushdown has moved
//! the filters inside it, and the fragment builder re-checks whether
//! the source may apply the limit exactly (no residual) or the
//! mediator must re-limit.

use crate::plan::logical::LogicalPlan;
use gis_types::Result;

/// Pushes row-count bounds into scans.
pub fn push_limits(plan: LogicalPlan) -> Result<LogicalPlan> {
    walk(plan, None)
}

/// `bound` is the number of input rows the parent provably needs
/// (skip + fetch), or `None` when unbounded.
fn walk(plan: LogicalPlan, bound: Option<usize>) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Limit { input, skip, fetch } => {
            let own = fetch.map(|f| f.saturating_add(skip));
            let tighter = match (bound, own) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            LogicalPlan::Limit {
                input: Box::new(walk(*input, tighter)?),
                skip,
                fetch,
            }
        }
        // Projections preserve row count and order: the bound passes.
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(walk(*input, bound)?),
            exprs,
            schema,
        },
        LogicalPlan::TableScan(mut t) => {
            if let Some(b) = bound {
                // A scan with filters may still take the bound: the
                // source applies predicates *before* the limit, so
                // `LIMIT n` over a filtered scan is exact whenever the
                // whole filter ships. The fragment builder demotes the
                // limit to a mediator-side `post_fetch` when any
                // filter stays residual... which would be WRONG for a
                // partially-filtered scan (the first n source rows may
                // not contain all matches). So: only push when the
                // scan carries no filters at all; filtered scans keep
                // their full results and the Limit node above trims.
                if t.filters.is_empty() {
                    t.fetch = Some(t.fetch.map_or(b, |f| f.min(b)));
                }
            }
            LogicalPlan::TableScan(t)
        }
        // Everything else (filters, joins, aggregates, sorts, unions,
        // distinct) either changes cardinality or needs all input
        // rows: the bound stops, children are walked unbounded.
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(walk(*input, None)?),
            predicate,
        },
        LogicalPlan::Join(mut j) => {
            j.left = Box::new(walk(*j.left, None)?);
            j.right = Box::new(walk(*j.right, None)?);
            LogicalPlan::Join(j)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(walk(*input, None)?),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(walk(*input, None)?),
            keys,
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            // Each UNION ALL branch individually needs at most the
            // bound (the union concatenates).
            inputs: inputs
                .into_iter()
                .map(|i| walk(i, bound))
                .collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(walk(*input, None)?),
        },
        leaf @ (LogicalPlan::Values { .. } | LogicalPlan::ViewScan { .. }) => leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scans in a plan tree with their fetch bounds.
    fn scan_fetches(plan: &LogicalPlan) -> Vec<Option<usize>> {
        plan.scans().iter().map(|s| s.fetch).collect()
    }

    // Plan construction needs a catalog; the integration tests in
    // `core/tests/optimizer_rules.rs` exercise the rule end-to-end.
    // Here we only check the bound arithmetic on synthetic nodes.
    #[test]
    fn bound_combination() {
        let v = LogicalPlan::Values {
            schema: std::sync::Arc::new(gis_types::Schema::new(vec![gis_types::Field::new(
                "x",
                gis_types::DataType::Int64,
            )])),
            rows: vec![],
        };
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Limit {
                input: Box::new(v),
                skip: 0,
                fetch: Some(100),
            }),
            skip: 5,
            fetch: Some(10),
        };
        // No scans: rule is a structural no-op but must not error.
        let out = push_limits(plan).unwrap();
        assert_eq!(scan_fetches(&out), Vec::<Option<usize>>::new());
        assert!(matches!(out, LogicalPlan::Limit { .. }));
    }
}
