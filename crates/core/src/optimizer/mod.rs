//! The logical optimizer.
//!
//! A fixed pipeline of rewrite rules, each individually toggleable so
//! the benchmark harness can ablate them:
//!
//! 1. [`fold::fold_constants`] — expression simplification.
//! 2. [`pushdown::push_predicates`] — move filters toward (and into)
//!    table scans; in a federation this is the single highest-leverage
//!    rewrite, because a filter inside a scan executes *at the source*
//!    and shrinks what crosses the network (experiment T1).
//! 3. [`join_order::reorder_joins`] — cost-based DP over inner-join
//!    regions (experiment T2).
//! 4. [`prune::prune_projections`] — drop unused columns so fragments
//!    request only what the query needs (the other half of T1).

pub mod fold;
pub mod identity;
pub mod join_order;
pub mod limits;
pub mod prune;
pub mod pushdown;
pub mod view_match;

use crate::plan::logical::LogicalPlan;
use gis_types::Result;

/// Which rules run (ablation knobs for the harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Fold constant subexpressions.
    pub fold_constants: bool,
    /// Push predicates toward scans.
    pub predicate_pushdown: bool,
    /// Prune unused columns.
    pub projection_pruning: bool,
    /// Reorder inner joins by estimated cost.
    pub join_reorder: bool,
    /// Push LIMIT bounds into scans.
    pub limit_pushdown: bool,
    /// Maximum relations in one DP join-ordering region; larger
    /// regions fall back to a greedy ordering.
    pub dp_relation_limit: usize,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            fold_constants: true,
            predicate_pushdown: true,
            projection_pruning: true,
            join_reorder: true,
            limit_pushdown: true,
            dp_relation_limit: 10,
        }
    }
}

impl OptimizerOptions {
    /// Everything off — the "naive mediator" baseline the experiments
    /// compare against.
    pub fn naive() -> Self {
        OptimizerOptions {
            fold_constants: false,
            predicate_pushdown: false,
            projection_pruning: false,
            join_reorder: false,
            limit_pushdown: false,
            dp_relation_limit: 0,
        }
    }
}

/// Runs the configured rules over a bound plan.
pub fn optimize(plan: LogicalPlan, options: &OptimizerOptions) -> Result<LogicalPlan> {
    let mut plan = plan;
    if options.fold_constants {
        plan = fold::fold_constants(plan)?;
    }
    if options.predicate_pushdown {
        plan = pushdown::push_predicates(plan)?;
    }
    if options.join_reorder {
        plan = join_order::reorder_joins(plan, options.dp_relation_limit)?;
    }
    if options.projection_pruning {
        plan = prune::prune_projections(plan)?;
        plan = identity::eliminate_identity_projections(plan)?;
    }
    if options.limit_pushdown {
        plan = limits::push_limits(plan)?;
    }
    Ok(plan)
}
