//! Constant folding over every expression in a plan.

use crate::expr::simplify::{is_false, is_true, simplify};
use crate::plan::logical::{AggregateExpr, JoinNode, LogicalPlan, SortExpr};
use gis_types::Result;

/// Simplifies every expression; removes filters reduced to `TRUE`
/// and replaces subtrees under a `FALSE` filter with an empty
/// relation (nothing crosses the wire for a contradiction).
pub fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = Box::new(fold_constants(*input)?);
            let predicate = simplify(predicate);
            if is_true(&predicate) {
                return Ok(*input);
            }
            if is_false(&predicate) {
                return Ok(LogicalPlan::Values {
                    schema: input.schema().clone(),
                    rows: vec![],
                });
            }
            LogicalPlan::Filter { input, predicate }
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(fold_constants(*input)?),
            exprs: exprs.into_iter().map(simplify).collect(),
            schema,
        },
        LogicalPlan::Join(j) => LogicalPlan::Join(JoinNode {
            left: Box::new(fold_constants(*j.left)?),
            right: Box::new(fold_constants(*j.right)?),
            kind: j.kind,
            on: j.on.map(simplify),
            schema: j.schema,
        }),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants(*input)?),
            group_exprs: group_exprs.into_iter().map(simplify).collect(),
            aggregates: aggregates
                .into_iter()
                .map(|a| AggregateExpr {
                    arg: a.arg.map(simplify),
                    ..a
                })
                .collect(),
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants(*input)?),
            keys: keys
                .into_iter()
                .map(|k| SortExpr {
                    expr: simplify(k.expr),
                    ..k
                })
                .collect(),
        },
        LogicalPlan::Limit { input, skip, fetch } => LogicalPlan::Limit {
            input: Box::new(fold_constants(*input)?),
            skip,
            fetch,
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(fold_constants)
                .collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(fold_constants(*input)?),
        },
        LogicalPlan::TableScan(mut t) => {
            t.filters = t.filters.into_iter().map(simplify).collect();
            // A FALSE filter inside the scan empties it.
            if t.filters.iter().any(is_false) {
                return Ok(LogicalPlan::Values {
                    schema: t.schema.clone(),
                    rows: vec![],
                });
            }
            t.filters.retain(|f| !is_true(f));
            LogicalPlan::TableScan(t)
        }
        leaf @ (LogicalPlan::Values { .. } | LogicalPlan::ViewScan { .. }) => leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use gis_types::{DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn values_plan() -> LogicalPlan {
        LogicalPlan::Values {
            schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)])),
            rows: vec![vec![Value::Int64(1)]],
        }
    }

    #[test]
    fn true_filter_removed() {
        let plan = LogicalPlan::Filter {
            input: Box::new(values_plan()),
            predicate: ScalarExpr::lit(Value::Int64(1)).eq(ScalarExpr::lit(Value::Int64(1))),
        };
        let folded = fold_constants(plan).unwrap();
        assert!(matches!(folded, LogicalPlan::Values { .. }));
    }

    #[test]
    fn false_filter_empties_relation() {
        let plan = LogicalPlan::Filter {
            input: Box::new(values_plan()),
            predicate: ScalarExpr::lit(Value::Int64(1)).eq(ScalarExpr::lit(Value::Int64(2))),
        };
        let folded = fold_constants(plan).unwrap();
        match folded {
            LogicalPlan::Values { rows, .. } => assert!(rows.is_empty()),
            other => panic!("expected empty Values, got {other:?}"),
        }
    }
}
