//! Identity-projection elimination.
//!
//! Pruning and binding leave behind projections that merely pass
//! every input column through in order (possibly renaming). Interior
//! ones are pure noise — and worse, they hide `Sort(TableScan)` /
//! `Aggregate(TableScan)` shapes from the physical planner's pushdown
//! pattern matches. The root projection is preserved: it owns the
//! query's output column names.

use crate::expr::ScalarExpr;
use crate::plan::logical::{JoinNode, LogicalPlan};
use gis_types::Result;

/// Removes interior identity projections.
pub fn eliminate_identity_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    // Keep the root node itself (names), but clean its children.
    Ok(match plan {
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(walk(*input)?),
            exprs,
            schema,
        },
        other => walk(other)?,
    })
}

fn walk(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => {
            let input = walk(*input)?;
            if is_identity(&exprs, input.schema().len()) && types_match(&schema, input.schema()) {
                input
            } else {
                LogicalPlan::Projection {
                    input: Box::new(input),
                    exprs,
                    schema,
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(walk(*input)?),
            predicate,
        },
        LogicalPlan::Join(j) => LogicalPlan::Join(JoinNode {
            left: Box::new(walk(*j.left)?),
            right: Box::new(walk(*j.right)?),
            kind: j.kind,
            on: j.on,
            schema: j.schema,
        }),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(walk(*input)?),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(walk(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, skip, fetch } => LogicalPlan::Limit {
            input: Box::new(walk(*input)?),
            skip,
            fetch,
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(walk).collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(walk(*input)?),
        },
        leaf => leaf,
    })
}

fn is_identity(exprs: &[ScalarExpr], input_len: usize) -> bool {
    exprs.len() == input_len
        && exprs
            .iter()
            .enumerate()
            .all(|(i, e)| matches!(e, ScalarExpr::Column(c) if *c == i))
}

fn types_match(a: &gis_types::Schema, b: &gis_types::Schema) -> bool {
    a.len() == b.len()
        && a.fields()
            .iter()
            .zip(b.fields())
            .all(|(x, y)| x.data_type == y.data_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn values2() -> LogicalPlan {
        LogicalPlan::Values {
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
            ])),
            rows: vec![vec![Value::Int64(1), Value::Utf8("x".into())]],
        }
    }

    fn identity_proj(input: LogicalPlan, names: &[&str]) -> LogicalPlan {
        let exprs: Vec<ScalarExpr> = (0..input.schema().len()).map(ScalarExpr::col).collect();
        LogicalPlan::project_named(input, exprs, names.iter().map(|s| s.to_string()).collect())
            .unwrap()
    }

    #[test]
    fn interior_identity_removed_root_kept() {
        // Root identity projection survives (it owns output names);
        // an interior one under a Sort is removed.
        let inner = identity_proj(values2(), &["x", "y"]);
        let sorted = LogicalPlan::Sort {
            input: Box::new(inner),
            keys: vec![],
        };
        let root = identity_proj(sorted, &["p", "q"]);
        let out = eliminate_identity_projections(root).unwrap();
        let LogicalPlan::Projection { input, .. } = &out else {
            panic!("root projection must remain");
        };
        let LogicalPlan::Sort { input: sort_in, .. } = input.as_ref() else {
            panic!("expected sort under root: {out}");
        };
        assert!(
            matches!(sort_in.as_ref(), LogicalPlan::Values { .. }),
            "interior identity projection should be gone: {out}"
        );
    }

    #[test]
    fn non_identity_projections_survive() {
        let reorder = LogicalPlan::Projection {
            exprs: vec![ScalarExpr::col(1), ScalarExpr::col(0)],
            schema: Arc::new(Schema::new(vec![
                Field::new("b", DataType::Utf8),
                Field::new("a", DataType::Int64),
            ])),
            input: Box::new(values2()),
        };
        let wrapped = LogicalPlan::Distinct {
            input: Box::new(reorder),
        };
        let out = eliminate_identity_projections(wrapped).unwrap();
        let LogicalPlan::Distinct { input } = &out else {
            panic!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Projection { .. }));
    }

    #[test]
    fn type_changing_projection_survives() {
        // Identity ordinals but a cast changes the type: must stay.
        let cast = LogicalPlan::Projection {
            exprs: vec![
                ScalarExpr::Cast {
                    expr: Box::new(ScalarExpr::col(0)),
                    to: DataType::Float64,
                },
                ScalarExpr::col(1),
            ],
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Float64),
                Field::new("b", DataType::Utf8),
            ])),
            input: Box::new(values2()),
        };
        let wrapped = LogicalPlan::Limit {
            input: Box::new(cast),
            skip: 0,
            fetch: None,
        };
        let out = eliminate_identity_projections(wrapped).unwrap();
        let LogicalPlan::Limit { input, .. } = &out else {
            panic!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Projection { .. }));
    }
}
