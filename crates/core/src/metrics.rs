//! Per-query execution metrics.
//!
//! The currency of a federated engine is traffic, not CPU: every
//! experiment in EXPERIMENTS.md reports bytes, messages and virtual
//! network time per query. Metrics are computed by snapshotting each
//! link's counters before and after execution and diffing, so
//! concurrent accounting stays exact without threading a context
//! through every operator.

use gis_net::Link;
use gis_observe::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Traffic attributed to one source during one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceTraffic {
    /// Bytes over the link (both directions), as priced by the
    /// simulated network — i.e. *after* wire compression.
    pub bytes: u64,
    /// The same traffic before compression (decoded payload size).
    /// Equal to `bytes` when compression is off; the gap between the
    /// two is what the adaptive codecs saved on this link.
    pub raw_bytes: u64,
    /// Messages over the link.
    pub messages: u64,
    /// Transient failures observed (including retried ones).
    pub failures: u64,
    /// Retry attempts the adapter made against the link.
    pub retries: u64,
    /// Virtual time the link was busy, microseconds.
    pub busy_us: u64,
}

/// Everything measured about one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Total bytes shipped over all links — the *wire* size the
    /// simulated network actually charged for (post-compression).
    pub bytes_shipped: u64,
    /// Total payload bytes before compression. `bytes_raw -
    /// bytes_wire` is what the codecs saved this query; the two are
    /// equal when compression is off.
    pub bytes_raw: u64,
    /// Alias of [`QueryMetrics::bytes_shipped`], kept as a separate
    /// counter so report code can print the raw/wire pair without
    /// knowing which legacy name carries the wire meaning.
    pub bytes_wire: u64,
    /// Total messages.
    pub messages: u64,
    /// Total transient failures (retried or fatal).
    pub failures: u64,
    /// Total retry attempts across all links.
    pub retries: u64,
    /// Virtual network time elapsed on the shared clock, µs.
    pub virtual_network_us: u64,
    /// Rows in the final result.
    pub rows_returned: usize,
    /// Host wall-clock time, µs (CPU + simulated accounting overhead;
    /// *not* comparable across machines — use `virtual_network_us`).
    pub wall_us: u128,
    /// Per-source traffic breakdown.
    pub per_source: BTreeMap<String, SourceTraffic>,
    /// Number of source fragments the plan shipped.
    pub fragments: usize,
    /// Runtime-assigned query id (0 for ad-hoc `Federation::query`
    /// calls outside a runtime session).
    pub query_id: u64,
    /// True when the frontend (parse→bind→optimize) was skipped
    /// because the runtime's plan cache already held the plan.
    pub plan_cache_hit: bool,
    /// True when the whole result came from the runtime's result
    /// cache (no planning, no execution, no traffic).
    pub result_cache_hit: bool,
    /// Host time the query spent waiting in the scheduler queue
    /// before a worker picked it up, µs.
    pub queue_wait_us: u64,
    /// Per-operator span tree, present when the query ran with
    /// [`crate::ExecOptions::tracing`] on (`EXPLAIN ANALYZE`, the
    /// slow-query log). Remote-fragment subtrees were reported by the
    /// sources themselves over the wire.
    pub trace: Option<Span>,
    /// Names of the materialized views that answered (parts of) this
    /// query, in match order; a view appears once per subtree it
    /// replaced. Empty when the plan ran entirely from sources.
    pub views_used: Vec<String>,
}

impl QueryMetrics {
    /// Virtual network time in milliseconds.
    pub fn virtual_network_ms(&self) -> f64 {
        self.virtual_network_us as f64 / 1_000.0
    }

    /// The *parallel* virtual-time lower bound: the busiest single
    /// link's time. When fragments fetch concurrently
    /// (`ExecOptions::parallel_fetch`), elapsed network time
    /// approaches this instead of the sequential sum.
    pub fn virtual_parallel_us(&self) -> u64 {
        self.per_source
            .values()
            .map(|t| t.busy_us)
            .max()
            .unwrap_or(0)
    }

    /// [`QueryMetrics::virtual_parallel_us`] in milliseconds.
    pub fn virtual_parallel_ms(&self) -> f64 {
        self.virtual_parallel_us() as f64 / 1_000.0
    }

    /// A compact single-line summary for reports. Runtime-tier fields
    /// (query id, cache hits, queue wait) appear only when set, so
    /// ad-hoc queries keep the short classic form.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "rows={} bytes={} msgs={} net_ms={:.2} fragments={}",
            self.rows_returned,
            self.bytes_shipped,
            self.messages,
            self.virtual_network_ms(),
            self.fragments
        );
        if self.bytes_raw != self.bytes_wire {
            s.push_str(&format!(" raw_bytes={}", self.bytes_raw));
        }
        if self.query_id != 0 {
            s.push_str(&format!(" qid={}", self.query_id));
        }
        if self.plan_cache_hit {
            s.push_str(" plan_cache=hit");
        }
        if self.result_cache_hit {
            s.push_str(" result_cache=hit");
        }
        if self.queue_wait_us != 0 {
            s.push_str(&format!(
                " queue_wait_ms={:.2}",
                self.queue_wait_us as f64 / 1_000.0
            ));
        }
        if !self.views_used.is_empty() {
            s.push_str(&format!(" views=[{}]", self.views_used.join(", ")));
        }
        s
    }

    /// A two-column table rendering of every counter — what report
    /// binaries print when they want the full picture without
    /// hand-rolled formatting.
    pub fn to_table(&self) -> String {
        let mut rows: Vec<(String, String)> = vec![
            ("rows_returned".into(), self.rows_returned.to_string()),
            ("bytes_shipped".into(), self.bytes_shipped.to_string()),
            ("bytes_raw".into(), self.bytes_raw.to_string()),
            ("messages".into(), self.messages.to_string()),
            ("failures".into(), self.failures.to_string()),
            ("retries".into(), self.retries.to_string()),
            ("fragments".into(), self.fragments.to_string()),
            (
                "virtual_network_ms".into(),
                format!("{:.3}", self.virtual_network_ms()),
            ),
            (
                "virtual_parallel_ms".into(),
                format!("{:.3}", self.virtual_parallel_ms()),
            ),
            (
                "wall_ms".into(),
                format!("{:.3}", self.wall_us as f64 / 1_000.0),
            ),
            ("query_id".into(), self.query_id.to_string()),
            (
                "plan_cache".into(),
                if self.plan_cache_hit { "hit" } else { "miss" }.into(),
            ),
            (
                "result_cache".into(),
                if self.result_cache_hit { "hit" } else { "miss" }.into(),
            ),
            (
                "queue_wait_ms".into(),
                format!("{:.3}", self.queue_wait_us as f64 / 1_000.0),
            ),
        ];
        for (src, t) in &self.per_source {
            rows.push((
                format!("source[{src}]"),
                format!(
                    "bytes={} msgs={} busy_us={}",
                    t.bytes, t.messages, t.busy_us
                ),
            ));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }
}

impl fmt::Display for QueryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for (src, t) in &self.per_source {
            writeln!(
                f,
                "  {src}: bytes={} msgs={} busy_ms={:.2}{}",
                t.bytes,
                t.messages,
                t.busy_us as f64 / 1_000.0,
                if t.failures > 0 || t.retries > 0 {
                    format!(" failures={} retries={}", t.failures, t.retries)
                } else {
                    String::new()
                }
            )?;
        }
        Ok(())
    }
}

/// One source a degraded query could not reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedSource {
    /// The logical source name.
    pub source: String,
    /// The availability error that exhausted every replica,
    /// rendered (`CODE: message`).
    pub error: String,
}

/// What a partial result is missing.
///
/// Produced only under [`crate::ExecOptions::partial_results`]: when a
/// source (and every replica of it) is unreachable, its fragments
/// contribute zero rows and the query *succeeds* with this report
/// attached to [`crate::QueryResult::degraded`]. A degraded result is
/// an explicit lower bound on the true answer — callers must treat it
/// as incomplete, and caches must never store it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// The unreachable sources, sorted by name, one entry per source.
    pub missing: Vec<DegradedSource>,
}

impl DegradedReport {
    /// Names of the missing sources, in report order.
    pub fn sources(&self) -> Vec<&str> {
        self.missing.iter().map(|d| d.source.as_str()).collect()
    }

    /// One-line rendering: `missing=[a, b]`.
    pub fn summary(&self) -> String {
        format!("missing=[{}]", self.sources().join(", "))
    }
}

/// A point-in-time snapshot of a set of links' counters.
#[derive(Debug, Clone)]
pub struct TrafficSnapshot {
    per_link: BTreeMap<String, SourceTraffic>,
    clock_us: u64,
}

impl TrafficSnapshot {
    /// Captures the counters of `links` and the shared clock.
    pub fn capture<'a>(
        links: impl IntoIterator<Item = &'a Link>,
        clock: &gis_net::SimClock,
    ) -> Self {
        let per_link = links
            .into_iter()
            .map(|l| {
                let m = l.metrics();
                (
                    l.name().to_string(),
                    SourceTraffic {
                        bytes: m.bytes(),
                        raw_bytes: m.raw_bytes(),
                        messages: m.messages(),
                        failures: m.failures(),
                        retries: m.retries(),
                        busy_us: m.busy_us(),
                    },
                )
            })
            .collect();
        TrafficSnapshot {
            per_link,
            clock_us: clock.now_us(),
        }
    }

    /// Traffic since `self`, per source and total.
    pub fn diff_against<'a>(
        &self,
        links: impl IntoIterator<Item = &'a Link>,
        clock: &gis_net::SimClock,
    ) -> QueryMetrics {
        let now = TrafficSnapshot::capture(links, clock);
        let mut m = QueryMetrics {
            virtual_network_us: now.clock_us.saturating_sub(self.clock_us),
            ..QueryMetrics::default()
        };
        for (name, after) in &now.per_link {
            let before = self.per_link.get(name).copied().unwrap_or_default();
            let d = SourceTraffic {
                bytes: after.bytes - before.bytes,
                raw_bytes: after.raw_bytes - before.raw_bytes,
                messages: after.messages - before.messages,
                failures: after.failures - before.failures,
                retries: after.retries - before.retries,
                busy_us: after.busy_us - before.busy_us,
            };
            m.bytes_shipped += d.bytes;
            m.bytes_raw += d.raw_bytes;
            m.bytes_wire += d.bytes;
            m.messages += d.messages;
            m.failures += d.failures;
            m.retries += d.retries;
            if d.messages > 0 || d.bytes > 0 || d.failures > 0 {
                m.per_source.insert(name.clone(), d);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_net::{NetworkConditions, SimClock};

    #[test]
    fn snapshot_diff_isolates_a_query() {
        let clock = SimClock::new();
        let a = Link::new(
            "a",
            NetworkConditions {
                latency_us: 10,
                bandwidth_bytes_per_sec: 0,
            },
            clock.clone(),
        );
        let b = Link::new("b", NetworkConditions::instant(), clock.clone());
        // pre-query noise
        a.transfer(100).unwrap();
        let snap = TrafficSnapshot::capture([&a, &b], &clock);
        a.transfer(50).unwrap();
        a.transfer(50).unwrap();
        b.transfer(7).unwrap();
        let m = snap.diff_against([&a, &b], &clock);
        assert_eq!(m.bytes_shipped, 107);
        assert_eq!(m.bytes_raw, 107); // transfer() prices raw == wire
        assert_eq!(m.bytes_wire, 107);
        assert_eq!(m.messages, 3);
        assert_eq!(m.virtual_network_us, 20);
        assert_eq!(m.per_source["a"].bytes, 100);
        assert_eq!(m.per_source["b"].messages, 1);
    }

    #[test]
    fn display_formats() {
        let mut m = QueryMetrics {
            rows_returned: 3,
            bytes_shipped: 1024,
            ..QueryMetrics::default()
        };
        m.per_source.insert(
            "crm".into(),
            SourceTraffic {
                bytes: 1024,
                messages: 2,
                failures: 1,
                busy_us: 1500,
                ..SourceTraffic::default()
            },
        );
        let s = m.to_string();
        assert!(s.contains("rows=3"));
        assert!(s.contains("crm"));
        assert!(s.contains("failures=1"));
    }
}
