//! Co-located join pushdown: an inner equi-join of two tables on the
//! same (join-capable) source ships as ONE fragment; only the joined
//! result crosses the wire.

use gis_adapters::{ColumnarAdapter, RelationalAdapter, SourceAdapter};
use gis_core::{ExecOptions, Federation};
use gis_net::NetworkConditions;
use gis_storage::{ColumnStore, RowStore};
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

fn fed() -> Federation {
    let fed = Federation::new();
    let erp = RelationalAdapter::new("erp");
    let emp = Schema::new(vec![
        Field::required("emp_id", DataType::Int64),
        Field::new("dept_id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("salary", DataType::Int64),
    ])
    .into_ref();
    erp.add_table(RowStore::new("employees", emp, Some(0)).unwrap());
    erp.load(
        "employees",
        (0..500i64).map(|i| {
            vec![
                Value::Int64(i),
                Value::Int64(i % 20),
                Value::Utf8(format!("emp-{i}-{}", "pad".repeat(8))),
                Value::Int64(30_000 + (i * 73) % 90_000),
            ]
        }),
    )
    .unwrap();
    let dept = Schema::new(vec![
        Field::required("dept_id", DataType::Int64),
        Field::new("dept_name", DataType::Utf8),
        Field::new("budget", DataType::Int64),
    ])
    .into_ref();
    erp.add_table(RowStore::new("departments", dept, Some(0)).unwrap());
    erp.load(
        "departments",
        (0..20i64).map(|d| {
            vec![
                Value::Int64(d),
                Value::Utf8(format!("dept{d}")),
                Value::Int64(d * 1_000_000),
            ]
        }),
    )
    .unwrap();
    fed.add_source(
        Arc::new(erp) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    // A scan-only source for the negative case.
    let lake = ColumnarAdapter::new("lake");
    let ev = Schema::new(vec![
        Field::required("eid", DataType::Int64),
        Field::new("dept_id", DataType::Int64),
    ])
    .into_ref();
    lake.add_table(ColumnStore::new("events", ev.clone()));
    lake.add_table(ColumnStore::new("events2", ev));
    lake.load(
        "events",
        (0..100i64).map(|i| vec![Value::Int64(i), Value::Int64(i % 20)]),
    )
    .unwrap();
    lake.load(
        "events2",
        (0..100i64).map(|i| vec![Value::Int64(i), Value::Int64(i % 20)]),
    )
    .unwrap();
    fed.add_source(
        Arc::new(lake) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed
}

const SQL: &str = "SELECT e.name, d.dept_name FROM erp.employees e \
                   JOIN erp.departments d ON e.dept_id = d.dept_id \
                   WHERE d.budget > 15000000 AND e.salary > 60000";

#[test]
fn colocated_join_ships_one_fragment() {
    let f = fed();
    let plan = f.explain(SQL).unwrap();
    assert!(plan.contains("RemoteJoin[erp]"), "{plan}");
    let r = f.query(SQL).unwrap();
    assert_eq!(r.metrics.fragments, 1);
    assert!(r.batch.num_rows() > 0);
    // Same query with the pushdown off: two fragments, way more bytes.
    f.set_exec_options(ExecOptions {
        colocated_join: false,
        ..ExecOptions::default()
    });
    let r2 = f.query(SQL).unwrap();
    assert_eq!(r2.metrics.fragments, 2);
    let mut a = r.batch.to_rows();
    let mut b = r2.batch.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b, "pushdown changed results");
    assert!(
        r.metrics.bytes_shipped < r2.metrics.bytes_shipped,
        "pushed {} vs unpushed {}",
        r.metrics.bytes_shipped,
        r2.metrics.bytes_shipped
    );
}

#[test]
fn colocated_join_respects_on_residual() {
    let f = fed();
    // Non-equi ON conjunct stays mediator-side but must still apply.
    let sql = "SELECT e.emp_id FROM erp.employees e \
               JOIN erp.departments d ON e.dept_id = d.dept_id AND e.salary > d.budget";
    let r = f.query(sql).unwrap();
    f.set_exec_options(ExecOptions {
        colocated_join: false,
        ..ExecOptions::default()
    });
    let r2 = f.query(sql).unwrap();
    let mut a = r.batch.to_rows();
    let mut b = r2.batch.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    // dept 0 has budget 0: all its 25 employees qualify; others don't
    // (budgets are millions, salaries ≤ 120k... dept 0 only).
    assert_eq!(a.len(), 25);
}

#[test]
fn scan_only_source_does_not_push_joins() {
    let f = fed();
    let sql = "SELECT a.eid FROM lake.events a JOIN lake.events2 b ON a.eid = b.eid";
    let plan = f.explain(sql).unwrap();
    assert!(!plan.contains("RemoteJoin"), "{plan}");
    let r = f.query(sql).unwrap();
    assert_eq!(r.batch.num_rows(), 100);
}

#[test]
fn cross_source_joins_unaffected() {
    let f = fed();
    let sql = "SELECT e.emp_id FROM erp.employees e JOIN lake.events v ON e.dept_id = v.dept_id \
               WHERE e.emp_id < 3";
    let plan = f.explain(sql).unwrap();
    assert!(!plan.contains("RemoteJoin"), "{plan}");
    let r = f.query(sql).unwrap();
    assert_eq!(r.batch.num_rows(), 15); // 3 employees × 5 matching events each
}

#[test]
fn aggregate_above_colocated_join() {
    let f = fed();
    let sql = "SELECT d.dept_name, count(*) AS n FROM erp.employees e \
               JOIN erp.departments d ON e.dept_id = d.dept_id \
               GROUP BY d.dept_name ORDER BY n DESC, d.dept_name LIMIT 3";
    let r = f.query(sql).unwrap();
    assert_eq!(r.batch.num_rows(), 3);
    assert_eq!(r.batch.row_values(0)[1], Value::Int64(25));
}
