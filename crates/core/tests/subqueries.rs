//! `IN (SELECT ...)` membership tests: semi/anti rewrite semantics,
//! cross-source execution, and the documented NULL-handling dialect.

use gis_adapters::{RelationalAdapter, SourceAdapter};
use gis_core::Federation;
use gis_net::NetworkConditions;
use gis_storage::RowStore;
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

fn fed() -> Federation {
    let fed = Federation::new();
    let a = RelationalAdapter::new("a");
    let people = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("team", DataType::Utf8),
    ])
    .into_ref();
    a.add_table(RowStore::new("people", people, Some(0)).unwrap());
    a.load(
        "people",
        [
            (1i64, Some("red")),
            (2, Some("blue")),
            (3, None),
            (4, Some("red")),
            (5, Some("green")),
        ]
        .into_iter()
        .map(|(id, t)| {
            vec![
                Value::Int64(id),
                t.map_or(Value::Null, |x| Value::Utf8(x.into())),
            ]
        }),
    )
    .unwrap();
    let winners = Schema::new(vec![
        Field::required("wid", DataType::Int64),
        Field::new("person", DataType::Int64),
    ])
    .into_ref();
    a.add_table(RowStore::new("winners", winners, Some(0)).unwrap());
    a.load(
        "winners",
        [(100i64, Some(1i64)), (101, Some(4)), (102, None)]
            .into_iter()
            .map(|(w, p)| vec![Value::Int64(w), p.map_or(Value::Null, Value::Int64)]),
    )
    .unwrap();
    fed.add_source(
        Arc::new(a) as Arc<dyn SourceAdapter>,
        NetworkConditions::lan(),
    )
    .unwrap();
    fed
}

#[test]
fn in_subquery_is_semi_join() {
    let f = fed();
    let r = f
        .query("SELECT id FROM a.people WHERE id IN (SELECT person FROM a.winners) ORDER BY id")
        .unwrap();
    let ids: Vec<Value> = r.batch.column(0).iter_values().collect();
    assert_eq!(ids, vec![Value::Int64(1), Value::Int64(4)]);
    let plan = f
        .explain("SELECT id FROM a.people WHERE id IN (SELECT person FROM a.winners)")
        .unwrap();
    assert!(plan.contains("SEMI"), "{plan}");
}

#[test]
fn not_in_subquery_is_anti_join_null_stripped() {
    let f = fed();
    // Documented dialect: subquery NULLs are non-matching; tested
    // NULLs never qualify. So: people {2,3,5} minus the NULL-team
    // person... id column has no NULLs; winners.person has a NULL
    // which we strip. Expect 2, 3, 5.
    let r = f
        .query("SELECT id FROM a.people WHERE id NOT IN (SELECT person FROM a.winners) ORDER BY id")
        .unwrap();
    let ids: Vec<Value> = r.batch.column(0).iter_values().collect();
    assert_eq!(ids, vec![Value::Int64(2), Value::Int64(3), Value::Int64(5)]);
    // A NULL tested value never passes NOT IN.
    let r2 = f
        .query(
            "SELECT id FROM a.people WHERE team NOT IN (SELECT team FROM a.people WHERE id = 1) ORDER BY id",
        )
        .unwrap();
    // team='red' excluded (ids 1,4); NULL team (id 3) excluded too.
    let ids2: Vec<Value> = r2.batch.column(0).iter_values().collect();
    assert_eq!(ids2, vec![Value::Int64(2), Value::Int64(5)]);
}

#[test]
fn in_subquery_composes_with_other_predicates() {
    let f = fed();
    let r = f
        .query(
            "SELECT id FROM a.people \
             WHERE id IN (SELECT person FROM a.winners) AND team = 'red' AND id > 1",
        )
        .unwrap();
    assert_eq!(r.batch.num_rows(), 1);
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(4));
}

#[test]
fn in_subquery_with_inner_shaping() {
    let f = fed();
    // Subquery with its own filter/distinct/limit machinery.
    let r = f
        .query(
            "SELECT count(*) FROM a.people \
             WHERE id IN (SELECT DISTINCT person FROM a.winners WHERE wid <= 101)",
        )
        .unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(2));
}

#[test]
fn errors_for_malformed_membership() {
    let f = fed();
    // Multi-column subquery.
    let err = f
        .query("SELECT id FROM a.people WHERE id IN (SELECT wid, person FROM a.winners)")
        .unwrap_err();
    assert!(err.to_string().contains("exactly one column"), "{err}");
    // Incomparable types.
    let err2 = f
        .query("SELECT id FROM a.people WHERE team IN (SELECT person FROM a.winners)")
        .unwrap_err();
    assert!(err2.to_string().contains("cannot compare"), "{err2}");
    // Not a top-level conjunct.
    let err3 = f
        .query(
            "SELECT id FROM a.people \
             WHERE id = 1 OR id IN (SELECT person FROM a.winners)",
        )
        .unwrap_err();
    assert!(
        err3.to_string().contains("top-level WHERE conjunct"),
        "{err3}"
    );
}

#[test]
fn parser_roundtrips_in_subquery() {
    let sql = "SELECT id FROM people WHERE id IN (SELECT person FROM winners WHERE wid < 5)";
    let ast = gis_sql::parse(sql).unwrap();
    let rendered = gis_sql::unparse::statement_to_sql(&ast);
    assert_eq!(gis_sql::parse(&rendered).unwrap(), ast);
    assert!(gis_sql::parse("SELECT 1 WHERE 1 NOT IN (SELECT)").is_err());
}
