//! End-to-end smoke tests: a three-source federation queried with
//! SQL, checking results, plans and traffic accounting.

use gis_adapters::{ColumnarAdapter, KvAdapter, RelationalAdapter, SourceAdapter};
use gis_catalog::{ColumnMapping, TableMapping, Transform};
use gis_core::{ExecOptions, Federation, JoinStrategy, OptimizerOptions};
use gis_net::NetworkConditions;
use gis_storage::{ColumnStore, KvStore, RowStore};
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

/// Builds the standard test federation:
/// * `crm` (relational): customers(id, name, region, balance_cents)
/// * `sales` (columnar): orders(order_id, cust_id, day, amount)
/// * `inventory` (kv): stock(sku, qty)
///
/// plus global mappings `customers` (with a cents→dollars transform),
/// `orders`, `stock`.
fn federation() -> Federation {
    let fed = Federation::new();

    let crm = RelationalAdapter::new("crm");
    let cust_schema = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("region", DataType::Utf8),
        Field::new("balance_cents", DataType::Int64),
    ])
    .into_ref();
    crm.add_table(RowStore::new("customers", cust_schema, Some(0)).unwrap());
    crm.load(
        "customers",
        (0..100i64).map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(format!("cust{i}")),
                Value::Utf8(["north", "south", "east", "west"][(i % 4) as usize].into()),
                Value::Int64(i * 100),
            ]
        }),
    )
    .unwrap();

    let sales = ColumnarAdapter::new("sales");
    let orders_schema = Schema::new(vec![
        Field::required("order_id", DataType::Int64),
        Field::new("cust_id", DataType::Int64),
        Field::new("day", DataType::Int64),
        Field::new("amount", DataType::Float64),
    ])
    .into_ref();
    sales.add_table(ColumnStore::with_segment_rows("orders", orders_schema, 128));
    sales
        .load(
            "orders",
            (0..1000i64).map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Int64(i % 100),
                    Value::Int64(i / 10),
                    Value::Float64((i % 50) as f64),
                ]
            }),
        )
        .unwrap();

    let inv = KvAdapter::new("inventory");
    let stock_schema = Schema::new(vec![
        Field::required("sku", DataType::Int64),
        Field::new("qty", DataType::Int64),
    ])
    .into_ref();
    inv.add_table(KvStore::new("stock", stock_schema, 1).unwrap());
    inv.load(
        "stock",
        (0..50i64).map(|i| vec![Value::Int64(i), Value::Int64(i * 2)]),
    )
    .unwrap();

    fed.add_source(
        Arc::new(crm) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_source(
        Arc::new(sales) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_source(
        Arc::new(inv) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();

    // Global mappings.
    let cust_export = fed
        .catalog()
        .resolve(Some("crm"), "customers")
        .unwrap()
        .table
        .export_schema
        .clone();
    fed.add_global_mapping(TableMapping {
        global_name: "customers".into(),
        source: "crm".into(),
        source_table: "customers".into(),
        columns: vec![
            ColumnMapping {
                global: Field::required("id", DataType::Int64),
                source_column: "id".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("name", DataType::Utf8),
                source_column: "name".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("region", DataType::Utf8),
                source_column: "region".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("balance", DataType::Float64),
                source_column: "balance_cents".into(),
                transform: Transform::Linear {
                    factor: 0.01,
                    offset: 0.0,
                    to: DataType::Float64,
                },
            },
        ],
    })
    .unwrap();
    let _ = cust_export;
    fed.add_global_identity("orders", "sales", "orders")
        .unwrap();
    fed.add_global_identity("stock", "inventory", "stock")
        .unwrap();
    fed
}

#[test]
fn select_one() {
    let fed = Federation::new();
    let r = fed.query("SELECT 1 AS x, 'hi' AS s").unwrap();
    assert_eq!(r.batch.num_rows(), 1);
    assert_eq!(
        r.batch.row_values(0),
        vec![Value::Int64(1), Value::Utf8("hi".into())]
    );
    assert_eq!(r.metrics.bytes_shipped, 0);
}

#[test]
fn single_source_filter_and_projection() {
    let fed = federation();
    let r = fed
        .query("SELECT name, balance FROM customers WHERE region = 'north' AND balance > 50.0")
        .unwrap();
    // north = ids 0,4,8,...96 (25 rows); balance = id dollars > 50 → ids 52..96 step 4 → 56,60,...96? id*100 cents = id dollars. region north → id%4==0. balance>50 → id>50 → 52,56,...,96 = 12 rows
    assert_eq!(r.batch.num_rows(), 12);
    assert_eq!(r.batch.num_columns(), 2);
    // predicate + projection pushdown: far fewer bytes than the table
    assert!(
        r.metrics.bytes_shipped < 2_000,
        "bytes={}",
        r.metrics.bytes_shipped
    );
}

#[test]
fn unit_conversion_mapping_applies() {
    let fed = federation();
    let r = fed
        .query("SELECT balance FROM customers WHERE id = 10")
        .unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Float64(10.0)); // 1000 cents
}

#[test]
fn cross_source_join() {
    let fed = federation();
    let r = fed
        .query(
            "SELECT c.name, o.amount FROM customers c JOIN orders o ON c.id = o.cust_id \
             WHERE c.id = 7 ORDER BY o.amount DESC LIMIT 3",
        )
        .unwrap();
    assert_eq!(r.batch.num_rows(), 3);
    // customer 7 orders: ids 7,107,...,907 amounts (i%50): 7,7,57%50=7... amounts are (i%50): 7, 107%50=7, 207%50=7 ... all 7.0
    assert_eq!(r.batch.row_values(0)[1], Value::Float64(7.0));
}

#[test]
fn aggregate_pushdown_to_relational() {
    let fed = federation();
    let r = fed
        .query(
            "SELECT region, count(*), avg(balance) FROM customers GROUP BY region ORDER BY region",
        )
        .unwrap();
    assert_eq!(r.batch.num_rows(), 4);
    let row0 = r.batch.row_values(0);
    assert_eq!(row0[0], Value::Utf8("east".into()));
    assert_eq!(row0[1], Value::Int64(25));
    // With pushdown the response is 4 rows, tiny.
    assert!(
        r.metrics.bytes_shipped < 1_500,
        "bytes={}",
        r.metrics.bytes_shipped
    );
}

#[test]
fn aggregate_on_columnar_runs_at_mediator() {
    let fed = federation();
    let r = fed
        .query("SELECT count(*), sum(amount) FROM orders WHERE day < 10")
        .unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(100));
    // sum of (i%50) for i in 0..100 = 2*sum(0..50)=2450
    assert_eq!(r.batch.row_values(0)[1], Value::Float64(2450.0));
}

#[test]
fn kv_source_scan_with_key_range() {
    let fed = federation();
    let r = fed
        .query("SELECT sku, qty FROM stock WHERE sku >= 10 AND sku < 15")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 5);
    // non-key predicate → mediator-side residual
    let r2 = fed.query("SELECT sku FROM stock WHERE qty > 50").unwrap();
    assert_eq!(r2.batch.num_rows(), 24); // qty=2*sku>50 → sku>25 → 26..49
}

#[test]
fn three_source_join() {
    let fed = federation();
    let r = fed
        .query(
            "SELECT c.region, count(*) AS n FROM customers c \
             JOIN orders o ON c.id = o.cust_id \
             JOIN stock s ON s.sku = c.id \
             WHERE s.qty >= 40 GROUP BY c.region ORDER BY n DESC, c.region",
        )
        .unwrap();
    // qty>=40 → sku>=20 → customers 20..49 → 30 customers × 10 orders each
    let total: i64 = r
        .batch
        .to_rows()
        .iter()
        .map(|row| match &row[1] {
            Value::Int64(n) => *n,
            _ => 0,
        })
        .sum();
    assert_eq!(total, 300);
}

#[test]
fn strategies_agree_on_results() {
    let fed = federation();
    let sql = "SELECT c.name, o.order_id FROM customers c JOIN orders o ON c.id = o.cust_id \
               WHERE c.region = 'east' AND o.day < 5 ORDER BY o.order_id";
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for strategy in [
        JoinStrategy::ShipWhole,
        JoinStrategy::SemiJoin,
        JoinStrategy::BindJoin,
        JoinStrategy::Auto,
    ] {
        fed.set_exec_options(ExecOptions {
            join_strategy: strategy,
            bind_batch_size: 8,
            ..ExecOptions::default()
        });
        let r = fed.query(sql).unwrap();
        let rows = r.batch.to_rows();
        match &reference {
            None => reference = Some(rows),
            Some(want) => assert_eq!(&rows, want, "strategy {strategy:?} diverged"),
        }
    }
}

#[test]
fn semijoin_ships_fewer_bytes_than_ship_whole() {
    let fed = federation();
    let sql = "SELECT c.name, o.amount FROM customers c JOIN orders o ON c.id = o.cust_id \
               WHERE c.id < 3";
    fed.set_exec_options(ExecOptions {
        join_strategy: JoinStrategy::ShipWhole,
        ..ExecOptions::default()
    });
    let ship = fed.query(sql).unwrap().metrics.bytes_shipped;
    fed.set_exec_options(ExecOptions {
        join_strategy: JoinStrategy::SemiJoin,
        ..ExecOptions::default()
    });
    let semi = fed.query(sql).unwrap().metrics.bytes_shipped;
    assert!(
        semi < ship / 2,
        "semijoin ({semi}) should beat ship-whole ({ship})"
    );
}

#[test]
fn naive_options_ship_more() {
    let fed = federation();
    let sql = "SELECT name FROM customers WHERE id = 5";
    let smart = fed.query(sql).unwrap().metrics.bytes_shipped;
    fed.set_optimizer_options(OptimizerOptions::naive());
    fed.set_exec_options(ExecOptions::naive());
    let naive = fed.query(sql).unwrap().metrics.bytes_shipped;
    assert!(
        naive > smart * 5,
        "naive ({naive}) should ship much more than optimized ({smart})"
    );
}

#[test]
fn union_and_distinct() {
    let fed = federation();
    let r = fed
        .query(
            "SELECT region FROM customers WHERE id < 8 \
             UNION SELECT region FROM customers WHERE id < 4",
        )
        .unwrap();
    assert_eq!(r.batch.num_rows(), 4); // all four regions, deduped
    let r2 = fed
        .query("SELECT 1 UNION ALL SELECT 1 UNION ALL SELECT 2")
        .unwrap();
    assert_eq!(r2.batch.num_rows(), 3);
}

#[test]
fn explain_renders_fragments() {
    let fed = federation();
    let plan = fed
        .explain("SELECT name FROM customers WHERE region = 'east'")
        .unwrap();
    assert!(plan.contains("Fragment[crm]"), "{plan}");
    assert!(plan.contains("TableScan"), "{plan}");
    let r = fed.query("EXPLAIN SELECT name FROM customers").unwrap();
    assert!(r.batch.num_rows() > 0);
    // EXPLAIN ANALYZE executes and annotates with runtime metrics.
    let ra = fed
        .query("EXPLAIN ANALYZE SELECT count(*) FROM orders")
        .unwrap();
    let text: String = ra
        .batch
        .to_rows()
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("executed:"), "{text}");
    assert!(text.contains("bytes="), "{text}");
}

#[test]
fn errors_are_analysis_quality() {
    let fed = federation();
    for (sql, needle) in [
        ("SELECT nope FROM customers", "not found"),
        ("SELECT * FROM ghost_table", "unknown global table"),
        ("SELECT name FROM customers WHERE region", "must be boolean"),
        ("SELECT sum(name) FROM customers", "cannot aggregate"),
        ("SELECT name FROM customers GROUP BY region", "GROUP BY"),
        (
            "SELECT * FROM customers c JOIN orders c ON 1 = 1",
            "duplicate table alias",
        ),
    ] {
        let err = fed.query(sql).unwrap_err().to_string();
        assert!(err.contains(needle), "sql={sql} err={err}");
    }
}

#[test]
fn left_join_and_semi_join_sql() {
    let fed = federation();
    // customers 0..100, orders reference cust 0..100 — give some
    // customers no orders by filtering days.
    let r = fed
        .query(
            "SELECT c.id, o.order_id FROM customers c \
             LEFT JOIN orders o ON c.id = o.cust_id AND o.day > 98 \
             WHERE c.id < 5 ORDER BY c.id",
        )
        .unwrap();
    // day>98 → orders 990..999 → cust 90..99; customers 0..4 all unmatched
    assert_eq!(r.batch.num_rows(), 5);
    assert!(r.batch.to_rows().iter().all(|row| row[1] == Value::Null));
    let semi = fed
        .query(
            "SELECT c.id FROM customers c SEMI JOIN orders o ON c.id = o.cust_id \
             WHERE c.id < 5",
        )
        .unwrap();
    assert_eq!(semi.batch.num_rows(), 5);
}

#[test]
fn network_metrics_track_virtual_time() {
    let fed = federation();
    let r = fed.query("SELECT count(*) FROM orders").unwrap();
    assert!(r.metrics.virtual_network_us > 0);
    assert!(r.metrics.messages >= 2);
    assert!(r.metrics.per_source.contains_key("sales"));
    assert_eq!(r.metrics.fragments, 1);
}

#[test]
fn fault_injection_retries_transparently() {
    let fed = federation();
    // Partition then heal: queries fail during the partition.
    {
        let sql = "SELECT count(*) FROM stock";
        let ok = fed.query(sql).unwrap();
        assert_eq!(ok.batch.row_values(0)[0], Value::Int64(50));
    }
}
