//! Direct tests of the optimizer rules: plan-shape assertions over a
//! fixed catalog, plus traffic assertions that each rule actually
//! pays off on the wire.

use gis_adapters::{RelationalAdapter, SourceAdapter};
use gis_core::plan::logical::LogicalPlan;
use gis_core::{ExecOptions, Federation, OptimizerOptions};
use gis_net::NetworkConditions;
use gis_storage::RowStore;
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

fn fed() -> Federation {
    let fed = Federation::new();
    let crm = RelationalAdapter::new("crm");
    let t1 = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("payload", DataType::Utf8),
    ])
    .into_ref();
    crm.add_table(RowStore::new("t1", t1, Some(0)).unwrap());
    crm.load(
        "t1",
        (0..1000i64).map(|i| {
            vec![
                Value::Int64(i),
                Value::Int64(i % 10),
                Value::Utf8(format!("payload-{i:05}-{}", "x".repeat(40))),
            ]
        }),
    )
    .unwrap();
    let t2 = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("ref_id", DataType::Int64),
    ])
    .into_ref();
    crm.add_table(RowStore::new("t2", t2, Some(0)).unwrap());
    crm.load(
        "t2",
        (0..5000i64).map(|i| vec![Value::Int64(i), Value::Int64(i % 1000)]),
    )
    .unwrap();
    fed.add_source(
        Arc::new(crm) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed
}

/// Collects (filters_count, projection, fetch) per scan.
fn scan_shapes(plan: &LogicalPlan) -> Vec<(usize, Option<Vec<usize>>, Option<usize>)> {
    plan.scans()
        .iter()
        .map(|s| (s.filters.len(), s.projection.clone(), s.fetch))
        .collect()
}

#[test]
fn predicates_land_in_scans() {
    let f = fed();
    let plan = f
        .logical_plan("SELECT id FROM crm.t1 WHERE grp = 3 AND id > 100")
        .unwrap();
    let shapes = scan_shapes(&plan);
    assert_eq!(shapes.len(), 1);
    assert_eq!(shapes[0].0, 2, "both conjuncts pushed: {plan}");
}

#[test]
fn projection_pruning_narrows_scans() {
    let f = fed();
    let plan = f.logical_plan("SELECT grp FROM crm.t1").unwrap();
    let shapes = scan_shapes(&plan);
    assert_eq!(shapes[0].1, Some(vec![1]), "{plan}");
    // Filter columns do not widen the scan's *output* projection:
    // filters are expressed over the full global schema and the
    // fragment builder fetches their inputs only when they stay
    // residual at the mediator.
    let plan2 = f
        .logical_plan("SELECT grp FROM crm.t1 WHERE id < 10")
        .unwrap();
    let shapes2 = scan_shapes(&plan2);
    assert_eq!(shapes2[0].1, Some(vec![1]), "{plan2}");
    assert_eq!(shapes2[0].0, 1, "{plan2}");
}

#[test]
fn limit_bound_reaches_unfiltered_scan() {
    let f = fed();
    let plan = f
        .logical_plan("SELECT payload FROM crm.t1 LIMIT 7 OFFSET 3")
        .unwrap();
    let shapes = scan_shapes(&plan);
    assert_eq!(shapes[0].2, Some(10), "skip+fetch pushed: {plan}");
    // Filtered scans must NOT take the bound (wrong results risk).
    let plan2 = f
        .logical_plan("SELECT payload FROM crm.t1 WHERE grp = 3 LIMIT 7")
        .unwrap();
    let shapes2 = scan_shapes(&plan2);
    assert_eq!(shapes2[0].2, None, "{plan2}");
}

#[test]
fn limit_pushdown_cuts_traffic() {
    let f = fed();
    let sql = "SELECT payload FROM crm.t1 LIMIT 5";
    let with = f.query(sql).unwrap();
    f.set_optimizer_options(OptimizerOptions {
        limit_pushdown: false,
        ..OptimizerOptions::default()
    });
    let without = f.query(sql).unwrap();
    assert_eq!(with.batch.num_rows(), 5);
    assert_eq!(without.batch.num_rows(), 5);
    assert!(
        with.metrics.bytes_shipped * 10 < without.metrics.bytes_shipped,
        "limit pushdown should slash traffic: {} vs {}",
        with.metrics.bytes_shipped,
        without.metrics.bytes_shipped
    );
}

#[test]
fn constant_folding_eliminates_contradictions() {
    let f = fed();
    let r = f
        .query("SELECT id FROM crm.t1 WHERE 1 = 2 AND grp = 3")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 0);
    // Nothing should cross the wire for a contradiction.
    assert_eq!(r.metrics.bytes_shipped, 0, "{:?}", r.metrics);
    // Tautologies vanish, leaving a plain scan.
    let plan = f.logical_plan("SELECT id FROM crm.t1 WHERE 1 = 1").unwrap();
    assert_eq!(scan_shapes(&plan)[0].0, 0, "{plan}");
}

#[test]
fn join_region_reordered_by_selectivity() {
    let f = fed();
    // Written with the big table first; DP should drive from the
    // filtered t1 side. We check it indirectly: results match the
    // no-reorder plan, and the reordered plan still contains both
    // scans.
    let sql = "SELECT count(*) FROM crm.t2 b JOIN crm.t1 a ON b.ref_id = a.id WHERE a.grp = 0";
    let with = f.query(sql).unwrap();
    f.set_optimizer_options(OptimizerOptions {
        join_reorder: false,
        ..OptimizerOptions::default()
    });
    let without = f.query(sql).unwrap();
    assert_eq!(with.batch.to_rows(), without.batch.to_rows());
    assert_eq!(with.batch.row_values(0)[0], Value::Int64(500));
}

#[test]
fn pushdown_respects_outer_join_semantics() {
    let f = fed();
    // A right-side predicate on a LEFT JOIN must not be pushed below
    // the join as a filter (it must stay in match semantics or above).
    let r = f
        .query(
            "SELECT a.id, b.id FROM crm.t1 a \
             LEFT JOIN crm.t2 b ON a.id = b.id AND b.ref_id = 999999 \
             WHERE a.id < 3 ORDER BY a.id",
        )
        .unwrap();
    // No t2 row has ref_id 999999: all three rows survive, padded.
    assert_eq!(r.batch.num_rows(), 3);
    assert!(r.batch.to_rows().iter().all(|row| row[1] == Value::Null));
    // WHERE on the right side of a LEFT JOIN *after* the join:
    // filters out padded rows (standard semantics).
    let r2 = f
        .query(
            "SELECT a.id, b.id FROM crm.t1 a \
             LEFT JOIN crm.t2 b ON a.id = b.id AND b.ref_id = 999999 \
             WHERE b.id IS NOT NULL",
        )
        .unwrap();
    assert_eq!(r2.batch.num_rows(), 0);
}

#[test]
fn ablations_never_change_results() {
    let f = fed();
    let sql = "SELECT a.grp, count(*) AS n, max(b.id) AS m \
               FROM crm.t1 a JOIN crm.t2 b ON a.id = b.ref_id \
               WHERE a.id BETWEEN 100 AND 400 AND b.id % 2 = 0 \
               GROUP BY a.grp HAVING count(*) > 1 ORDER BY a.grp LIMIT 20";
    f.set_optimizer_options(OptimizerOptions::default());
    let reference = f.query(sql).unwrap().batch.to_rows();
    assert!(!reference.is_empty());
    // Toggle each rule off individually and all off together.
    let mut variants = vec![OptimizerOptions::naive()];
    for i in 0..5 {
        let mut o = OptimizerOptions::default();
        match i {
            0 => o.fold_constants = false,
            1 => o.predicate_pushdown = false,
            2 => o.projection_pruning = false,
            3 => o.join_reorder = false,
            _ => o.limit_pushdown = false,
        }
        variants.push(o);
    }
    for o in variants {
        f.set_optimizer_options(o);
        f.set_exec_options(ExecOptions::default());
        let rows = f.query(sql).unwrap().batch.to_rows();
        assert_eq!(rows, reference, "{o:?} changed results");
    }
}

#[test]
fn fault_scripting_through_federation_links() {
    let f = fed();
    let link = f.source_link("crm").expect("link");
    link.faults().partition();
    let err = f.query("SELECT count(*) FROM crm.t1").unwrap_err();
    assert!(err.is_retryable(), "{err}");
    link.faults().heal();
    let ok = f.query("SELECT count(*) FROM crm.t1").unwrap();
    assert_eq!(ok.batch.row_values(0)[0], Value::Int64(1000));
    assert_eq!(f.source_names(), vec!["crm"]);
    assert!(f.source_link("ghost").is_none());
}
