//! Property test: the engine's two-pointer `like_match` must agree
//! with a naive O(n·m) recursive oracle on arbitrary Unicode text and
//! patterns — including raw NUL/SOH characters (which an earlier
//! sentinel encoding silently turned into wildcards) and trailing
//! backslashes.

use gis_core::expr::like::like_match;
use proptest::collection::vec;
use proptest::prelude::*;

/// Straight-off-the-spec recursive LIKE matcher: `%` tries every
/// split, `_` consumes one char, `\` escapes the next char (a
/// trailing backslash is a literal backslash). Exponential in the
/// worst case, which is fine at the sizes the strategy generates.
fn naive_match(text: &[char], pat: &[char]) -> bool {
    match pat.first() {
        None => text.is_empty(),
        Some('\\') => {
            let lit = pat.get(1).copied().unwrap_or('\\');
            let rest = if pat.len() >= 2 { &pat[2..] } else { &pat[1..] };
            text.first() == Some(&lit) && naive_match(&text[1..], rest)
        }
        Some('%') => (0..=text.len()).any(|k| naive_match(&text[k..], &pat[1..])),
        Some('_') => !text.is_empty() && naive_match(&text[1..], &pat[1..]),
        Some(&c) => text.first() == Some(&c) && naive_match(&text[1..], &pat[1..]),
    }
}

/// A small adversarial alphabet: wildcards, the escape char, the two
/// code points the old encoding used as sentinels, ASCII, and
/// multibyte Unicode.
fn alphabet() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('a'),
        Just('b'),
        Just('%'),
        Just('_'),
        Just('\\'),
        Just('\u{0}'),
        Just('\u{1}'),
        Just('é'),
        Just('語'),
    ]
}

fn chars(max: usize) -> impl Strategy<Value = Vec<char>> {
    vec(alphabet(), 0..=max)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        ..ProptestConfig::default()
    })]

    #[test]
    fn like_match_agrees_with_naive_oracle(t in chars(10), p in chars(7)) {
        let text: String = t.iter().collect();
        let pattern: String = p.iter().collect();
        let fast = like_match(&text, &pattern);
        let slow = naive_match(&t, &p);
        prop_assert_eq!(
            fast,
            slow,
            "text={:?} pattern={:?}",
            text,
            pattern
        );
    }
}

#[test]
fn pinned_regressions() {
    // The exact divergences the pre-fix sentinel encoding produced.
    assert!(!like_match("ab", "a\u{0}"));
    assert!(!like_match("ax", "a\u{1}"));
    assert!(like_match("a\u{0}", "a\u{0}"));
    // Trailing backslash matches a literal backslash.
    assert!(like_match("a\\", "a\\"));
    assert!(!like_match("ab", "a\\"));
}
