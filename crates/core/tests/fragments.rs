//! Fragment-builder behavior: what ships vs what stays, pushed sorts
//! and limits, bind-joins on composite and transformed keys.

use gis_adapters::{KvAdapter, RelationalAdapter, SourceAdapter};
use gis_catalog::{ColumnMapping, TableMapping, Transform};
use gis_core::{ExecOptions, Federation, JoinStrategy};
use gis_net::NetworkConditions;
use gis_storage::{KvStore, RowStore};
use gis_types::{DataType, Field, Schema, Value};
use std::sync::Arc;

fn fed() -> Federation {
    let fed = Federation::new();
    let crm = RelationalAdapter::new("crm");
    let schema = Schema::new(vec![
        Field::required("id", DataType::Int32), // legacy narrow id
        Field::new("label", DataType::Utf8),
        Field::new("cents", DataType::Int64),
    ])
    .into_ref();
    crm.add_table(RowStore::new("items", schema, Some(0)).unwrap());
    crm.load(
        "items",
        (0..200i64).map(|i| {
            vec![
                Value::Int32(i as i32),
                Value::Utf8(format!("item{i}")),
                Value::Int64(i * 100),
            ]
        }),
    )
    .unwrap();
    fed.add_source(
        Arc::new(crm) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    // Mapped global view: widened ids, dollars.
    fed.add_global_mapping(TableMapping {
        global_name: "items".into(),
        source: "crm".into(),
        source_table: "items".into(),
        columns: vec![
            ColumnMapping {
                global: Field::required("id", DataType::Int64),
                source_column: "id".into(),
                transform: Transform::Cast(DataType::Int64),
            },
            ColumnMapping {
                global: Field::new("label", DataType::Utf8),
                source_column: "label".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("price", DataType::Float64),
                source_column: "cents".into(),
                transform: Transform::Linear {
                    factor: 0.01,
                    offset: 0.0,
                    to: DataType::Float64,
                },
            },
        ],
    })
    .unwrap();
    // A KV source with a composite key.
    let kv = KvAdapter::new("inv");
    let stock = Schema::new(vec![
        Field::required("item_id", DataType::Int64),
        Field::required("site", DataType::Utf8),
        Field::new("qty", DataType::Int64),
    ])
    .into_ref();
    kv.add_table(KvStore::new("stock", stock, 2).unwrap());
    kv.load(
        "stock",
        (0..200i64).flat_map(|i| {
            ["a", "b"]
                .into_iter()
                .map(move |s| vec![Value::Int64(i), Value::Utf8(s.into()), Value::Int64(i % 7)])
        }),
    )
    .unwrap();
    fed.add_source(
        Arc::new(kv) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_global_identity("stock", "inv", "stock").unwrap();
    fed
}

#[test]
fn sort_pushes_into_capable_source() {
    let f = fed();
    let plan = f
        .explain("SELECT id, price FROM items ORDER BY price DESC LIMIT 4")
        .unwrap();
    assert!(
        plan.contains("sort=1"),
        "sort should ride the fragment:\n{plan}"
    );
    let r = f
        .query("SELECT id, price FROM items ORDER BY price DESC LIMIT 4")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 4);
    assert_eq!(r.batch.row_values(0)[1], Value::Float64(199.0));
    // The limit rides too: tiny transfer.
    assert!(
        r.metrics.bytes_shipped < 400,
        "bytes={}",
        r.metrics.bytes_shipped
    );
}

#[test]
fn sort_does_not_push_to_incapable_source() {
    let f = fed();
    let plan = f
        .explain("SELECT item_id FROM stock ORDER BY qty DESC LIMIT 3")
        .unwrap();
    assert!(
        plan.contains("Sort:"),
        "mediator sort expected for KV:\n{plan}"
    );
    let r = f
        .query("SELECT item_id, qty FROM stock ORDER BY qty DESC, item_id LIMIT 3")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 3);
    assert_eq!(r.batch.row_values(0)[1], Value::Int64(6));
}

#[test]
fn predicates_invert_through_cast_and_linear() {
    let f = fed();
    // price is cents*0.01; an exact-dollar predicate inverts.
    let r = f.query("SELECT id FROM items WHERE price = 42.0").unwrap();
    assert_eq!(r.batch.num_rows(), 1);
    assert!(
        r.metrics.bytes_shipped < 250,
        "pushed: {}",
        r.metrics.bytes_shipped
    );
    // A price that is not a whole cent cannot exist: predicate stays
    // mediator-side (full column ships) but the answer is right.
    let r2 = f
        .query("SELECT id FROM items WHERE price = 42.005")
        .unwrap();
    assert_eq!(r2.batch.num_rows(), 0);
    assert!(r2.metrics.bytes_shipped > r.metrics.bytes_shipped);
    // Range through monotonic linear transform: pushed.
    let r3 = f
        .query("SELECT id FROM items WHERE price >= 198.0")
        .unwrap();
    assert_eq!(r3.batch.num_rows(), 2);
    assert!(
        r3.metrics.bytes_shipped < 300,
        "pushed: {}",
        r3.metrics.bytes_shipped
    );
}

#[test]
fn bind_join_on_composite_kv_key() {
    let f = fed();
    f.set_exec_options(ExecOptions {
        join_strategy: JoinStrategy::SemiJoin,
        ..ExecOptions::default()
    });
    // Join on the full composite key (item_id, site).
    let sql = "SELECT i.label, s.qty FROM items i \
               JOIN stock s ON i.id = s.item_id AND i.label = s.site \
               WHERE i.id < 50";
    // label never equals site ('itemN' vs 'a'/'b'): zero rows, but the
    // machinery must run (composite keys are not a KV prefix when the
    // second component is non-key... here (item_id, site) IS the key).
    let r = f.query(sql).unwrap();
    assert_eq!(r.batch.num_rows(), 0);
    // Single-column prefix bind join with real matches:
    let sql2 = "SELECT i.label, s.qty FROM items i \
                JOIN stock s ON i.id = s.item_id WHERE i.id < 5";
    let r2 = f.query(sql2).unwrap();
    assert_eq!(r2.batch.num_rows(), 10); // 5 items x 2 sites
}

#[test]
fn bind_join_inverts_keys_through_cast() {
    let f = fed();
    f.set_exec_options(ExecOptions {
        join_strategy: JoinStrategy::BindJoin,
        bind_batch_size: 3,
        ..ExecOptions::default()
    });
    // The inner (items) key is a global int64 that is Cast from a
    // legacy int32: bind keys must invert to int32 for the lookup.
    let sql = "SELECT s.site, i.price FROM stock s \
               JOIN items i ON s.item_id = i.id \
               WHERE s.item_id >= 10 AND s.item_id < 13";
    let plan = f.explain(sql).unwrap();
    assert!(plan.contains("BindJoin"), "{plan}");
    let r = f.query(sql).unwrap();
    assert_eq!(r.batch.num_rows(), 6);
    let rows = r.batch.to_rows();
    assert!(rows
        .iter()
        .all(|row| matches!(&row[1], Value::Float64(v) if (10.0..13.0).contains(v))));
}

#[test]
fn kv_scan_with_limit_rides_the_request() {
    let f = fed();
    let r = f.query("SELECT item_id FROM stock LIMIT 3").unwrap();
    assert_eq!(r.batch.num_rows(), 3);
    // KV honors limits natively: far less than the 400-row table.
    assert!(
        r.metrics.bytes_shipped < 500,
        "bytes={}",
        r.metrics.bytes_shipped
    );
}
