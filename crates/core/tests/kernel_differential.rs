//! Differential property suite for the vectorized key kernels.
//!
//! Randomized batches — every key type, NULLs, heavy duplicates, and
//! collision-prone configurations — must produce **row-identical**
//! results (content *and* order) from the new hashed/fixed kernels
//! and the retained `Vec<Value>` reference implementations, for every
//! `JoinKind`, GROUP BY, and DISTINCT. Each comparison runs three
//! kernel configurations: serial, forced partitioned parallelism, and
//! a 3-bit hash mask that crams every row into 8 buckets so the
//! columnar collision-verification path does real work.
//!
//! Float keys only ever generate the positive quiet NaN: the pinned
//! kernel semantics ("any NaN equals any NaN") and the reference's
//! total-order equality agree on that payload, so the oracle stays
//! valid while NaN grouping is still exercised.

use gis_adapters::AggFunc;
use gis_core::exec::aggregate::{
    distinct_kernel, distinct_ref, hash_aggregate_kernel, hash_aggregate_ref,
};
use gis_core::exec::join::{hash_join_kernel, hash_join_ref};
use gis_core::exec::keys::{KernelGov, KernelOptions};
use gis_core::expr::ScalarExpr;
use gis_core::plan::logical::{AggregateExpr, JoinNode};
use gis_sql::ast::JoinKind;
use gis_types::{Batch, DataType, Field, MemBudget, Schema, SchemaRef, Value};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Key-column flavors. Small value domains force duplicates (the
/// interesting case for grouping and joins).
#[derive(Debug, Clone, Copy)]
enum KeyKind {
    Int64,
    Int32,
    Float64,
    Utf8Short,
    Utf8Long,
    Date,
    Boolean,
    Timestamp,
}

const KINDS: [KeyKind; 8] = [
    KeyKind::Int64,
    KeyKind::Int32,
    KeyKind::Float64,
    KeyKind::Utf8Short,
    KeyKind::Utf8Long,
    KeyKind::Date,
    KeyKind::Boolean,
    KeyKind::Timestamp,
];

impl KeyKind {
    fn data_type(self) -> DataType {
        match self {
            KeyKind::Int64 => DataType::Int64,
            KeyKind::Int32 => DataType::Int32,
            KeyKind::Float64 => DataType::Float64,
            KeyKind::Utf8Short | KeyKind::Utf8Long => DataType::Utf8,
            KeyKind::Date => DataType::Date,
            KeyKind::Boolean => DataType::Boolean,
            KeyKind::Timestamp => DataType::Timestamp,
        }
    }

    /// Materializes raw draw `v` (a small non-negative domain value)
    /// as a key of this kind.
    fn value(self, v: i64) -> Value {
        match self {
            KeyKind::Int64 => Value::Int64(v),
            KeyKind::Int32 => Value::Int32(v as i32),
            KeyKind::Float64 => match v % 5 {
                // One NaN payload only: see module docs.
                0 => Value::Float64(f64::NAN),
                1 => Value::Float64(0.0),
                2 => Value::Float64(-0.0),
                _ => Value::Float64(v as f64 / 2.0),
            },
            KeyKind::Utf8Short => Value::Utf8(format!("k{v}")),
            // Long enough to defeat the u128 fixed-key layout.
            KeyKind::Utf8Long => Value::Utf8(format!("key-{v:+060}")),
            KeyKind::Date => Value::Date(v as i32 - 3),
            KeyKind::Boolean => Value::Boolean(v % 2 == 0),
            KeyKind::Timestamp => Value::Timestamp(v * 1_000_003),
        }
    }
}

/// A raw column draw: `(null, domain_value)` per row.
type RawCol = Vec<(bool, i64)>;

/// The three kernel configurations every comparison sweeps.
fn kernel_modes() -> [(&'static str, KernelOptions); 3] {
    [
        ("serial", KernelOptions::serial()),
        (
            "parallel",
            KernelOptions {
                parallel_rows: 0,
                partitions: 4,
                hash_mask: u64::MAX,
            },
        ),
        (
            "collide",
            KernelOptions {
                parallel_rows: usize::MAX,
                partitions: 1,
                hash_mask: 0x7,
            },
        ),
    ]
}

/// Governor flavors: unbounded (the pre-governor behavior) and a
/// one-byte soft limit with a large spill cap, which forces every
/// hash table through the radix spill path. Spilled execution must
/// stay row-identical to the reference too.
fn budgets() -> [(&'static str, Option<MemBudget>); 2] {
    [
        ("unbounded", None),
        ("spill", Some(MemBudget::standalone(1, 1 << 30))),
    ]
}

/// Builds a batch with `raw` key columns of `kinds` plus one Int64
/// payload column drawn from a small domain (so full-row duplicates
/// occur for DISTINCT).
fn build_batch(kinds: &[KeyKind], raw: &[RawCol], payload: &RawCol) -> Batch {
    let n = payload.len();
    let mut fields: Vec<Field> = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| Field::new(format!("k{i}"), k.data_type()).with_nullable(true))
        .collect();
    fields.push(Field::new("payload", DataType::Int64).with_nullable(true));
    let schema = Schema::new(fields).into_ref();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|r| {
            let mut row: Vec<Value> = kinds
                .iter()
                .zip(raw)
                .map(|(k, col)| {
                    let (null, v) = col[r];
                    if null {
                        Value::Null
                    } else {
                        k.value(v)
                    }
                })
                .collect();
            let (null, v) = payload[r];
            row.push(if null { Value::Null } else { Value::Int64(v) });
            row
        })
        .collect();
    Batch::from_rows(schema, &rows).expect("batch")
}

/// Raw rows for one side: every key column plus the payload share the
/// row count, values in `0..domain`, ~1 in 8 NULL.
fn side(
    columns: usize,
    domain: i64,
    rows: impl Into<proptest::collection::SizeRange>,
) -> impl Strategy<Value = Vec<RawCol>> {
    pvec(
        pvec((proptest::arbitrary::any::<u8>(), 0..domain), rows),
        columns + 1,
    )
    .prop_map(|cols| {
        // Equalize lengths (vec-of-vec draws may differ): truncate to
        // the shortest, then split nulls off the u8 draw.
        let n = cols.iter().map(Vec::len).min().unwrap_or(0);
        cols.into_iter()
            .map(|c| {
                c.into_iter()
                    .take(n)
                    .map(|(b, v)| (b % 8 == 0, v))
                    .collect()
            })
            .collect()
    })
}

fn all_join_kinds() -> [JoinKind; 6] {
    [
        JoinKind::Inner,
        JoinKind::Left,
        JoinKind::Right,
        JoinKind::Full,
        JoinKind::Semi,
        JoinKind::Anti,
    ]
}

fn join_schema(l: &Batch, r: &Batch, kind: JoinKind) -> SchemaRef {
    JoinNode::compute_schema(l.schema(), r.schema(), kind)
}

fn check_join(kinds: &[KeyKind], left: &Batch, right: &Batch) -> Result<(), TestCaseError> {
    let key_cols: Vec<usize> = (0..kinds.len()).collect();
    for jk in all_join_kinds() {
        let schema = join_schema(left, right, jk);
        let want = hash_join_ref(left, right, &key_cols, &key_cols, jk, None, schema.clone())
            .expect("reference join")
            .to_rows();
        for (mode, opts) in kernel_modes() {
            for (bmode, budget) in budgets() {
                let gov = match &budget {
                    Some(b) => KernelGov::new(b, None, 0),
                    None => KernelGov::unbounded(),
                };
                let (got, _) = hash_join_kernel(
                    left,
                    right,
                    &key_cols,
                    &key_cols,
                    jk,
                    None,
                    schema.clone(),
                    &opts,
                    &gov,
                )
                .expect("kernel join");
                prop_assert_eq!(
                    got.to_rows(),
                    want.clone(),
                    "join kind {:?}, kernel mode {}, budget {}, kinds {:?}",
                    jk,
                    mode,
                    bmode,
                    kinds
                );
            }
        }
    }
    Ok(())
}

fn agg_exprs() -> Vec<AggregateExpr> {
    let arg = || Some(ScalarExpr::col(1));
    vec![
        AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Count,
            arg: arg(),
            distinct: true,
        },
        AggregateExpr {
            func: AggFunc::Sum,
            arg: arg(),
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Min,
            arg: arg(),
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Max,
            arg: arg(),
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Avg,
            arg: arg(),
            distinct: false,
        },
        AggregateExpr {
            func: AggFunc::Sum,
            arg: arg(),
            distinct: true,
        },
    ]
}

fn agg_schema(key: KeyKind, aggs: &[AggregateExpr]) -> SchemaRef {
    let mut fields = vec![Field::new("k0", key.data_type()).with_nullable(true)];
    for a in aggs {
        let t = match a.func {
            AggFunc::Avg => DataType::Float64,
            _ => DataType::Int64,
        };
        fields.push(Field::new(a.display_name(), t).with_nullable(true));
    }
    Schema::new(fields).into_ref()
}

fn check_group_by(kind: KeyKind, input: &Batch) -> Result<(), TestCaseError> {
    // The key column doubles as payload column 1's neighbor: group by
    // column 0, aggregate column 1 (the Int64 payload).
    let aggs = agg_exprs();
    let schema = agg_schema(kind, &aggs);
    let groups = [ScalarExpr::col(0)];
    let want = hash_aggregate_ref(input, &groups, &aggs, schema.clone())
        .expect("reference aggregate")
        .to_rows();
    for (mode, opts) in kernel_modes() {
        for (bmode, budget) in budgets() {
            let gov = match &budget {
                Some(b) => KernelGov::new(b, None, 0),
                None => KernelGov::unbounded(),
            };
            let (got, _) =
                hash_aggregate_kernel(input, &groups, &aggs, schema.clone(), &opts, &gov)
                    .expect("kernel aggregate");
            prop_assert_eq!(
                got.to_rows(),
                want.clone(),
                "group-by kernel mode {}, budget {}, key kind {:?}",
                mode,
                bmode,
                kind
            );
        }
    }
    Ok(())
}

fn check_distinct(input: &Batch) -> Result<(), TestCaseError> {
    let want = distinct_ref(input).to_rows();
    for (mode, opts) in kernel_modes() {
        for (bmode, budget) in budgets() {
            let gov = match &budget {
                Some(b) => KernelGov::new(b, None, 0),
                None => KernelGov::unbounded(),
            };
            let (got, _) = distinct_kernel(input, &opts, &gov).expect("kernel distinct");
            prop_assert_eq!(
                got.to_rows(),
                want.clone(),
                "distinct kernel mode {}, budget {}",
                mode,
                bmode
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn single_key_joins_match_reference(
        kind_ix in 0usize..8,
        lraw in side(1, 6, 0..60usize),
        rraw in side(1, 6, 0..60usize),
    ) {
        let kinds = [KINDS[kind_ix]];
        let left = build_batch(&kinds, &lraw[..1], &lraw[1]);
        let right = build_batch(&kinds, &rraw[..1], &rraw[1]);
        check_join(&kinds, &left, &right)?;
    }

    #[test]
    fn two_key_joins_match_reference(
        ka in 0usize..8,
        kb in 0usize..8,
        lraw in side(2, 4, 0..50usize),
        rraw in side(2, 4, 0..50usize),
    ) {
        let kinds = [KINDS[ka], KINDS[kb]];
        let left = build_batch(&kinds, &lraw[..2], &lraw[2]);
        let right = build_batch(&kinds, &rraw[..2], &rraw[2]);
        check_join(&kinds, &left, &right)?;
    }

    #[test]
    fn group_by_matches_reference(
        kind_ix in 0usize..8,
        raw in side(1, 5, 0..80usize),
    ) {
        let kind = KINDS[kind_ix];
        let input = build_batch(&[kind], &raw[..1], &raw[1]);
        check_group_by(kind, &input)?;
    }

    #[test]
    fn distinct_matches_reference(
        ka in 0usize..8,
        kb in 0usize..8,
        raw in side(2, 3, 0..80usize),
    ) {
        let kinds = [KINDS[ka], KINDS[kb]];
        let input = build_batch(&kinds, &raw[..2], &raw[2]);
        check_distinct(&input)?;
    }
}
