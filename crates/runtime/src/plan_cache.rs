//! The plan cache: memoized parse→bind→optimize results.
//!
//! Frontend work is pure CPU, but for the short parameter-free
//! queries a federation serves interactively it dominates host
//! latency — the experiment in `f6_concurrency` measures the
//! collapse when it is skipped. Entries key on the *normalized* SQL
//! text, the catalog's metadata version, and a fingerprint of the
//! optimizer options, so any schema change or ablation toggle
//! naturally misses instead of serving a stale plan.

use gis_core::{LogicalPlan, OptimizerOptions};
use gis_types::mem::MemPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Collapses runs of whitespace so formatting differences share one
/// cache entry. SQL string literals are preserved verbatim.
pub(crate) fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_string = false;
    let mut pending_space = false;
    for ch in sql.trim().chars() {
        if in_string {
            out.push(ch);
            if ch == '\'' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '\'' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                in_string = true;
                out.push(ch);
            }
            c if c.is_whitespace() => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
            }
        }
    }
    out
}

/// Hash of a `Debug`-rendered value; both option structs are plain
/// field bags, so their debug form is a faithful fingerprint.
pub(crate) fn debug_fingerprint(value: &impl std::fmt::Debug) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{value:?}").hash(&mut h);
    h.finish()
}

/// Cache key: what must match for a cached plan to be valid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub sql: String,
    pub catalog_version: u64,
    pub optimizer_fp: u64,
}

impl PlanKey {
    pub fn new(sql: &str, catalog_version: u64, optimizer: &OptimizerOptions) -> Self {
        PlanKey {
            sql: normalize_sql(sql),
            catalog_version,
            optimizer_fp: debug_fingerprint(optimizer),
        }
    }
}

struct Entry {
    plan: Arc<LogicalPlan>,
    /// Stable fingerprint of the plan itself — the result cache keys
    /// on this, so equivalent SQL texts share result entries.
    fingerprint: u64,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
}

/// The pool charge per resident plan. Plans are irregular linked
/// structures whose true footprint is not cheaply measurable, so the
/// governor books a fixed conservative estimate per entry — enough
/// that a large plan cache visibly occupies the pool without
/// per-node accounting.
const PLAN_ENTRY_COST: u64 = 64 * 1024;

/// An LRU cache of optimized logical plans. Each resident entry
/// charges a fixed estimate against the process memory pool; under
/// pool pressure the cache evicts rather than crowding out queries.
pub(crate) struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    pool: Arc<MemPool>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub fn new(capacity: usize, pool: Arc<MemPool>) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            pool,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a plan, bumping its recency. Counts a hit or miss.
    pub fn get(&self, key: &PlanKey) -> Option<(Arc<LogicalPlan>, u64)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.plan.clone(), entry.fingerprint))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a miss without a lookup (cache disabled for the call).
    pub fn count_bypass(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts a plan, evicting the least-recently-used entry when
    /// over capacity. A zero capacity disables the cache entirely.
    pub fn put(&self, key: PlanKey, plan: Arc<LogicalPlan>, fingerprint: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let replacing = inner.map.contains_key(&key);
        if !replacing {
            // Evict for pool pressure before charging the new entry;
            // if the pool stays full even with the cache drained,
            // decline the insert — queries outrank memoized plans.
            while !self.pool.try_reserve(PLAN_ENTRY_COST) {
                let oldest = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        inner.map.remove(&k);
                        self.pool.release(PLAN_ENTRY_COST);
                    }
                    None => return,
                }
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                fingerprint,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    inner.map.remove(&k);
                    self.pool.release(PLAN_ENTRY_COST);
                }
                None => break,
            };
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_not_literals() {
        assert_eq!(
            normalize_sql("SELECT  x\n FROM t\tWHERE y = 'a  b'"),
            "SELECT x FROM t WHERE y = 'a  b'"
        );
        assert_eq!(normalize_sql("  SELECT 1  "), "SELECT 1");
    }

    #[test]
    fn keys_distinguish_catalog_versions_and_options() {
        let opts = OptimizerOptions::default();
        let a = PlanKey::new("SELECT 1", 1, &opts);
        let b = PlanKey::new("SELECT  1", 1, &opts);
        let c = PlanKey::new("SELECT 1", 2, &opts);
        let d = PlanKey::new("SELECT 1", 1, &OptimizerOptions::naive());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    fn test_cache(capacity: usize) -> PlanCache {
        PlanCache::new(capacity, Arc::new(MemPool::new(u64::MAX)))
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = test_cache(2);
        let opts = OptimizerOptions::default();
        let plan = |sql: &str| -> Arc<LogicalPlan> {
            // Values-only plans avoid needing a catalog here.
            let fed = gis_core::Federation::new();
            Arc::new(fed.logical_plan(sql).unwrap())
        };
        let k1 = PlanKey::new("SELECT 1", 0, &opts);
        let k2 = PlanKey::new("SELECT 2", 0, &opts);
        let k3 = PlanKey::new("SELECT 3", 0, &opts);
        cache.put(k1.clone(), plan("SELECT 1"), 1);
        cache.put(k2.clone(), plan("SELECT 2"), 2);
        assert!(cache.get(&k1).is_some()); // k1 now most recent
        cache.put(k3.clone(), plan("SELECT 3"), 3);
        assert!(cache.get(&k2).is_none(), "k2 was LRU and evicted");
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = test_cache(0);
        let opts = OptimizerOptions::default();
        let k = PlanKey::new("SELECT 1", 0, &opts);
        let fed = gis_core::Federation::new();
        cache.put(
            k.clone(),
            Arc::new(fed.logical_plan("SELECT 1").unwrap()),
            1,
        );
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.len(), 0);
    }
}
