//! The slow-query log: a bounded ring of recent offenders.
//!
//! A federation's tail latency is dominated by a few bad queries —
//! a bind join that degenerated to thousands of round trips, a
//! residual filter that shipped a whole table to discard it. The
//! slow log captures exactly those: any query whose wall time
//! crosses the configured threshold is recorded with its metrics
//! summary *and* its operator span tree, so the diagnosis (which
//! operator, which source, how many bytes) is in the entry — no
//! need to reproduce the query later under `EXPLAIN ANALYZE`.

use gis_observe::{BoundedRing, Span};

/// One recorded slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Runtime-assigned query id.
    pub query_id: u64,
    /// The SQL text as submitted.
    pub sql: String,
    /// Host wall time, µs.
    pub wall_us: u64,
    /// Host time spent waiting in the admission queue, µs.
    pub queue_wait_us: u64,
    /// The metrics summary line (rows, bytes, messages, net time).
    pub summary: String,
    /// The stitched operator span tree, when tracing produced one.
    pub trace: Option<Span>,
}

impl SlowQueryEntry {
    /// Renders the entry: a header line plus the span tree.
    pub fn render(&self) -> String {
        let mut out = format!(
            "slow query id={} wall_ms={:.2} queue_ms={:.2}: {}\n  {}\n",
            self.query_id,
            self.wall_us as f64 / 1_000.0,
            self.queue_wait_us as f64 / 1_000.0,
            self.sql,
            self.summary
        );
        if let Some(trace) = &self.trace {
            for line in trace.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// A fixed-capacity ring buffer of [`SlowQueryEntry`]s, built on the
/// shared bounded-history primitive so eviction is always counted.
pub(crate) struct SlowLog {
    ring: BoundedRing<SlowQueryEntry>,
}

impl SlowLog {
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            ring: BoundedRing::new(capacity),
        }
    }

    pub fn record(&self, entry: SlowQueryEntry) {
        self.ring.push(entry);
    }

    /// Resident entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring.snapshot()
    }

    /// Total recorded since startup (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// Entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.overflow_dropped()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn entry(id: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            query_id: id,
            sql: format!("SELECT {id}"),
            wall_us: 10_000,
            queue_wait_us: 500,
            summary: "rows=1 bytes=0".into(),
            trace: Some(Span::leaf("Values: 1 row(s)").with_rows_out(1)),
        }
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_total_count() {
        let log = SlowLog::new(2);
        for id in 1..=3 {
            log.record(entry(id));
        }
        let ids: Vec<u64> = log.entries().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn render_includes_sql_and_trace() {
        let text = entry(7).render();
        assert!(text.contains("id=7"), "{text}");
        assert!(text.contains("SELECT 7"), "{text}");
        assert!(text.contains("Values: 1 row(s)"), "{text}");
    }
}
