//! Runtime tuning knobs.

use std::path::PathBuf;
use std::time::Duration;

/// Configuration for a [`crate::Runtime`].
///
/// The defaults suit tests and small experiments; report binaries
/// override `workers` and the cache sizes to match the scenario under
/// measurement.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads executing queries. Each worker runs one query
    /// at a time, so this is also the execution concurrency bound.
    pub workers: usize,
    /// Maximum queued (admitted but not yet executing) queries.
    /// Submissions beyond this fast-fail with
    /// [`gis_types::GisError::Overloaded`] instead of blocking —
    /// clients own the backoff policy.
    pub queue_depth: usize,
    /// Deadline applied to queries whose session does not set one.
    /// `None` means queries run to completion.
    pub default_deadline: Option<Duration>,
    /// Entries held by the plan cache (parse→bind→optimize results).
    /// Zero disables the cache.
    pub plan_cache_capacity: usize,
    /// Byte budget for the result cache, measured in result wire
    /// size. Zero disables the cache.
    pub result_cache_bytes: u64,
    /// Wall-time threshold above which a completed query is recorded
    /// in the slow-query log, with its operator span tree. Queries in
    /// a runtime with this set execute with tracing on (the trace
    /// must exist *before* the query turns out slow). `None` disables
    /// the log and the tracing overhead.
    pub slow_query_us: Option<u64>,
    /// Entries the slow-query ring buffer retains (oldest evicted).
    pub slow_log_capacity: usize,
    /// Per-query memory budget (soft limit) in bytes. A hash kernel
    /// that would exceed it degrades to spilled execution; with
    /// spilling disabled (`spill_cap` 0) the query is cancelled with
    /// [`gis_types::GisError::ResourceExhausted`]. `u64::MAX`
    /// disables governance entirely.
    pub query_mem_limit: u64,
    /// Process-wide memory pool capacity in bytes, shared by every
    /// concurrent query plus the resident caches and views. A query
    /// whose reservation would overflow the pool is cancelled, and
    /// new submissions are refused at admission while the pool is
    /// exhausted. `u64::MAX` disables the pool bound.
    pub total_mem_pool: u64,
    /// Directory for spill files; `None` uses the OS temp directory.
    pub spill_dir: Option<PathBuf>,
    /// Max bytes one query may spill to disk; 0 disables spilling
    /// (budget excess then kills instead of degrading).
    pub spill_cap: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline: None,
            plan_cache_capacity: 256,
            result_cache_bytes: 8 * 1024 * 1024,
            slow_query_us: None,
            slow_log_capacity: 64,
            query_mem_limit: u64::MAX,
            total_mem_pool: u64::MAX,
            spill_dir: None,
            spill_cap: 256 * 1024 * 1024,
        }
    }
}

impl RuntimeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the default per-query deadline.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Sets the plan cache capacity (entries).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Sets the result cache byte budget.
    pub fn with_result_cache_bytes(mut self, bytes: u64) -> Self {
        self.result_cache_bytes = bytes;
        self
    }

    /// Enables the slow-query log for queries slower than `us` µs.
    pub fn with_slow_query_us(mut self, us: Option<u64>) -> Self {
        self.slow_query_us = us;
        self
    }

    /// Sets the slow-query ring-buffer capacity.
    pub fn with_slow_log_capacity(mut self, capacity: usize) -> Self {
        self.slow_log_capacity = capacity.max(1);
        self
    }

    /// Sets the per-query memory budget (soft limit) in bytes.
    pub fn with_query_mem_limit(mut self, bytes: u64) -> Self {
        self.query_mem_limit = bytes;
        self
    }

    /// Sets the process-wide memory pool capacity in bytes.
    pub fn with_total_mem_pool(mut self, bytes: u64) -> Self {
        self.total_mem_pool = bytes;
        self
    }

    /// Sets the spill directory (`None` = the OS temp directory).
    pub fn with_spill_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.spill_dir = dir;
        self
    }

    /// Sets the per-query spill disk cap in bytes (0 disables
    /// spilling).
    pub fn with_spill_cap(mut self, bytes: u64) -> Self {
        self.spill_cap = bytes;
        self
    }
}
