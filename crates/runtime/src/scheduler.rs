//! The query scheduler: a bounded two-lane queue and a worker pool.
//!
//! Admission control is deliberately *fail-fast*: when the queue is
//! full, `submit` returns [`GisError::Overloaded`] immediately rather
//! than blocking the client — in a federation the client is often
//! another mediator, and blocking propagates congestion upstream.
//! Two lanes (high, normal) give interactive queries a way past bulk
//! work without a full priority queue.

use crate::plan_cache::{debug_fingerprint, PlanCache, PlanKey};
use crate::result_cache::{ResultCache, ResultKey};
use crate::slow_log::{SlowLog, SlowQueryEntry};
use crate::stats::RuntimeStats;
use crate::RuntimeConfig;
use crossbeam::channel;
use gis_core::{ExecOptions, Federation, OptimizerOptions, QueryMetrics, QueryResult};
use gis_sql::ast::Statement;
use gis_types::mem::{MemBudget, MemPool};
use gis_types::{GisError, Result};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Which lane a session's queries enter the queue through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before any normal-lane work.
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// One admitted query, waiting for (or on) a worker.
pub(crate) struct Job {
    pub sql: String,
    pub optimizer: OptimizerOptions,
    pub exec: ExecOptions,
    pub use_plan_cache: bool,
    pub use_result_cache: bool,
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    pub query_id: u64,
    pub reply: channel::Sender<Result<QueryResult>>,
}

struct QueueInner {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    closed: bool,
}

impl QueueInner {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// The bounded two-lane admission queue.
pub(crate) struct JobQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
    depth: usize,
}

impl JobQueue {
    pub fn new(depth: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            depth,
        }
    }

    /// Admits a job or fails fast with [`GisError::Overloaded`].
    pub fn push(&self, job: Job, priority: Priority) -> Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(GisError::Overloaded("runtime is shutting down".into()));
        }
        if inner.len() >= self.depth {
            return Err(GisError::Overloaded(format!(
                "admission queue full ({} queued); back off and retry",
                self.depth
            )));
        }
        match priority {
            Priority::High => inner.high.push_back(job),
            Priority::Normal => inner.normal.push_back(job),
        }
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job (high lane first). `None` once the
    /// queue is closed and drained.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.high.pop_front() {
                return Some(job);
            }
            if let Some(job) = inner.normal.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue and returns any jobs still waiting, so the
    /// caller can reply to them.
    pub fn close(&self) -> Vec<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        let mut drained: Vec<Job> = inner.high.drain(..).collect();
        drained.extend(inner.normal.drain(..));
        drop(inner);
        self.available.notify_all();
        drained
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Everything a worker needs; shared between the [`crate::Runtime`],
/// its [`crate::Session`]s, and the worker threads.
pub(crate) struct Shared {
    pub federation: Arc<Federation>,
    pub config: RuntimeConfig,
    pub queue: JobQueue,
    pub plan_cache: PlanCache,
    pub result_cache: ResultCache,
    pub stats: RuntimeStats,
    pub slow_log: SlowLog,
    /// The process-wide memory pool every per-query budget draws from.
    pub mem_pool: Arc<MemPool>,
}

/// The worker loop: pop, account queue wait, execute, reply.
pub(crate) fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // Interval view refreshes ride the worker loop: the virtual
        // clock only advances with query activity, so a wall-clock
        // timer thread could never pace it. Cheap when nothing is due.
        shared.federation.maintain_views();
        // Likewise for statistics: re-ANALYZE tables whose cardinality
        // feedback shows persistent drift, paced by the same virtual
        // clock and its cooldown.
        shared.federation.maintain_stats();
        let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
        let result = run_job(shared, &job, queue_wait_us);
        match &result {
            Ok(_) => RuntimeStats::bump(&shared.stats.completed),
            Err(GisError::Deadline(_)) => RuntimeStats::bump(&shared.stats.deadline_expired),
            Err(GisError::ResourceExhausted(_)) => RuntimeStats::bump(&shared.stats.mem_killed),
            Err(_) => RuntimeStats::bump(&shared.stats.failed),
        }
        if let (Some(threshold), Ok(r)) = (shared.config.slow_query_us, &result) {
            let wall_us = r.metrics.wall_us as u64;
            if wall_us >= threshold {
                shared.slow_log.record(SlowQueryEntry {
                    query_id: job.query_id,
                    sql: job.sql.clone(),
                    wall_us,
                    queue_wait_us,
                    summary: r.metrics.summary(),
                    trace: r.metrics.trace.clone(),
                });
            }
        }
        // A dropped receiver just means the client stopped waiting.
        let _ = job.reply.send(result);
    }
}

/// Executes one job through the cache hierarchy:
/// result cache → plan cache → full parse→bind→optimize→execute.
fn run_job(shared: &Shared, job: &Job, queue_wait_us: u64) -> Result<QueryResult> {
    if let Some(deadline) = job.deadline {
        if Instant::now() >= deadline {
            return Err(GisError::Deadline(format!(
                "query {} expired after {:.1} ms in the queue",
                job.query_id,
                queue_wait_us as f64 / 1_000.0
            )));
        }
    }
    let started = Instant::now();
    // With the slow log armed, every query traces: the span tree must
    // already exist by the time a query turns out to be slow. Applied
    // before the exec fingerprint, so traced and untraced runs never
    // share a result-cache slot.
    let mut exec = job.exec;
    if shared.config.slow_query_us.is_some() {
        exec.tracing = true;
    }
    // Every job executes under its own memory budget drawing on the
    // shared pool; dropping the budget (any exit path) releases the
    // pool bytes it charged.
    let budget = MemBudget::new(
        shared.config.query_mem_limit,
        Some(shared.mem_pool.clone()),
        shared.config.spill_dir.clone(),
        shared.config.spill_cap,
    );
    let stmt = gis_sql::parse(&job.sql)?;
    if !matches!(stmt, Statement::Query(_)) {
        // EXPLAIN and friends bypass both caches: they are about the
        // *current* plan, and their output is cheap.
        let outcome = shared
            .federation
            .query_with_budget(&job.sql, &job.optimizer, &exec, &budget);
        note_spills(shared, &budget);
        let mut result = outcome?;
        result.metrics.query_id = job.query_id;
        result.metrics.queue_wait_us = queue_wait_us;
        return Ok(result);
    }

    // Frontend: plan cache, or parse→bind→optimize on miss.
    let catalog_version = shared.federation.catalog_version();
    let key = PlanKey::new(&job.sql, catalog_version, &job.optimizer);
    // Kept past the plan-cache insert (which consumes `key`): the
    // result cache verifies it on every hit, since its fingerprints
    // alone can collide.
    let normalized_sql = key.sql.clone();
    let (plan, plan_fp, plan_cache_hit) = if job.use_plan_cache {
        match shared.plan_cache.get(&key) {
            Some((plan, fp)) => (plan, fp, true),
            None => {
                let plan = Arc::new(
                    shared
                        .federation
                        .plan_statement_with(&stmt, &job.optimizer)?,
                );
                let fp = plan_fingerprint(&key);
                shared.plan_cache.put(key, plan.clone(), fp);
                (plan, fp, false)
            }
        }
    } else {
        shared.plan_cache.count_bypass();
        let plan = Arc::new(
            shared
                .federation
                .plan_statement_with(&stmt, &job.optimizer)?,
        );
        (plan, plan_fingerprint(&key), false)
    };

    // Result cache: keyed on plan + exec options, valid only while
    // every source still reports the versions pinned at execution.
    let result_key = ResultKey {
        plan_fp,
        exec_fp: debug_fingerprint(&exec),
    };
    // Pin only the sources this plan actually reads: a write to an
    // unrelated source must not evict (or block reuse of) the entry.
    // Get and put use the same plan-derived set, so the map compares
    // exactly.
    let versions = shared.federation.data_versions_for(&plan.source_names());
    if job.use_result_cache {
        if let Some(batch) = shared
            .result_cache
            .get(&result_key, &normalized_sql, &versions)
        {
            let metrics = QueryMetrics {
                rows_returned: batch.num_rows(),
                query_id: job.query_id,
                plan_cache_hit,
                result_cache_hit: true,
                queue_wait_us,
                wall_us: started.elapsed().as_micros(),
                ..QueryMetrics::default()
            };
            // Only complete results are ever cached, so a hit is by
            // construction not degraded.
            return Ok(QueryResult {
                batch,
                metrics,
                degraded: None,
            });
        }
    } else {
        shared.result_cache.count_bypass();
    }

    // Backend: execute under the job's deadline, query id and budget.
    let outcome = shared.federation.execute_logical_governed(
        &plan,
        &exec,
        job.query_id,
        job.deadline,
        &budget,
    );
    note_spills(shared, &budget);
    let mut result = outcome?;
    result.metrics.plan_cache_hit = plan_cache_hit;
    result.metrics.queue_wait_us = queue_wait_us;
    result.metrics.wall_us = started.elapsed().as_micros();
    // A degraded (partial) result must never enter the result cache:
    // it is a lower bound on the true answer, and serving it after the
    // missing source heals would silently return wrong rows.
    if job.use_result_cache && result.degraded.is_none() {
        shared
            .result_cache
            .put(result_key, normalized_sql, result.batch.clone(), versions);
    }
    Ok(result)
}

/// Folds a finished (or killed) query's spill accounting into the
/// runtime counters — charged on success *and* failure, since a query
/// can spill plenty before its budget finally kills it.
fn note_spills(shared: &Shared, budget: &MemBudget) {
    let bytes = budget.spilled();
    let events = budget.spill_events();
    if bytes > 0 {
        shared
            .stats
            .spilled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }
    if events > 0 {
        shared
            .stats
            .spill_events
            .fetch_add(events, Ordering::Relaxed);
    }
}

/// The plan fingerprint used as the result-cache key component. The
/// [`PlanKey`] already encodes normalized SQL, catalog version and
/// optimizer options, so hashing it is both stable and collision-safe
/// across catalog changes.
fn plan_fingerprint(key: &PlanKey) -> u64 {
    debug_fingerprint(&(&key.sql, key.catalog_version, key.optimizer_fp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(id: u64) -> (Job, channel::Receiver<Result<QueryResult>>) {
        let (tx, rx) = channel::bounded(1);
        (
            Job {
                sql: "SELECT 1".into(),
                optimizer: OptimizerOptions::default(),
                exec: ExecOptions::default(),
                use_plan_cache: true,
                use_result_cache: true,
                deadline: None,
                enqueued: Instant::now(),
                query_id: id,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn queue_rejects_when_full() {
        let q = JobQueue::new(2);
        let (j1, _r1) = dummy_job(1);
        let (j2, _r2) = dummy_job(2);
        let (j3, _r3) = dummy_job(3);
        q.push(j1, Priority::Normal).unwrap();
        q.push(j2, Priority::Normal).unwrap();
        let err = q.push(j3, Priority::Normal).unwrap_err();
        assert_eq!(err.code(), "OVERLOADED");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn high_lane_pops_first() {
        let q = JobQueue::new(8);
        let (j1, _r1) = dummy_job(1);
        let (j2, _r2) = dummy_job(2);
        q.push(j1, Priority::Normal).unwrap();
        q.push(j2, Priority::High).unwrap();
        assert_eq!(q.pop().unwrap().query_id, 2);
        assert_eq!(q.pop().unwrap().query_id, 1);
    }

    #[test]
    fn close_drains_and_rejects() {
        let q = JobQueue::new(8);
        let (j1, _r1) = dummy_job(1);
        q.push(j1, Priority::Normal).unwrap();
        let drained = q.close();
        assert_eq!(drained.len(), 1);
        assert!(q.pop().is_none());
        let (j2, _r2) = dummy_job(2);
        assert!(q.push(j2, Priority::Normal).is_err());
    }
}
