//! Sessions: per-client handles with scoped option overrides.

use crate::scheduler::{Job, Priority, Shared};
use crate::stats::RuntimeStats;
use crossbeam::channel;
use gis_core::{ExecOptions, OptimizerOptions, QueryResult};
use gis_types::{GisError, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A client handle onto a [`crate::Runtime`].
///
/// Sessions are cheap and thread-confined (`&mut self` setters); the
/// runtime behind them is shared. Every knob is session-scoped — two
/// sessions on one runtime can run with different optimizer settings,
/// deadlines and cache policies without touching each other, because
/// options travel with each submitted job instead of mutating
/// federation state.
pub struct Session {
    pub(crate) shared: Arc<Shared>,
    pub(crate) id: u64,
    optimizer: OptimizerOptions,
    exec: ExecOptions,
    plan_cache_enabled: bool,
    result_cache_enabled: bool,
    deadline: Option<Duration>,
    priority: Priority,
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>, id: u64) -> Self {
        let deadline = shared.config.default_deadline;
        Session {
            optimizer: shared.federation.optimizer_options(),
            exec: shared.federation.exec_options(),
            shared,
            id,
            plan_cache_enabled: true,
            result_cache_enabled: true,
            deadline,
            priority: Priority::Normal,
        }
    }

    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Overrides the optimizer options for this session only.
    pub fn set_optimizer_options(&mut self, options: OptimizerOptions) -> &mut Self {
        self.optimizer = options;
        self
    }

    /// Current session optimizer options.
    pub fn optimizer_options(&self) -> OptimizerOptions {
        self.optimizer
    }

    /// Overrides the execution options for this session only.
    pub fn set_exec_options(&mut self, options: ExecOptions) -> &mut Self {
        self.exec = options;
        self
    }

    /// Current session execution options.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Enables or disables the plan cache for this session (ablation).
    pub fn set_plan_cache(&mut self, enabled: bool) -> &mut Self {
        self.plan_cache_enabled = enabled;
        self
    }

    /// Enables or disables the result cache for this session.
    pub fn set_result_cache(&mut self, enabled: bool) -> &mut Self {
        self.result_cache_enabled = enabled;
        self
    }

    /// Disables both caches — the cold-path baseline for ablations.
    pub fn set_caching(&mut self, enabled: bool) -> &mut Self {
        self.plan_cache_enabled = enabled;
        self.result_cache_enabled = enabled;
        self
    }

    /// Sets the per-query deadline (`None` = run to completion),
    /// overriding the runtime default.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> &mut Self {
        self.deadline = deadline;
        self
    }

    /// Sets the admission lane for this session's queries.
    pub fn set_priority(&mut self, priority: Priority) -> &mut Self {
        self.priority = priority;
        self
    }

    /// Submits `sql` and blocks for the result.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.submit(sql)?.wait()
    }

    /// Submits `sql` without waiting. Fails fast with
    /// [`GisError::Overloaded`] when the admission queue is full, or
    /// [`GisError::ResourceExhausted`] when the process memory pool
    /// has no headroom for another query.
    pub fn submit(&self, sql: &str) -> Result<PendingQuery> {
        // Admission control for memory, distinct from queue pressure:
        // dispatching into an exhausted pool would just burn a worker
        // until the budget kills the query anyway.
        if self.shared.mem_pool.available() == 0 {
            RuntimeStats::bump(&self.shared.stats.mem_rejected);
            return Err(GisError::ResourceExhausted(
                "process memory pool exhausted; admission refused".into(),
            ));
        }
        let query_id = self.shared.federation.next_query_id();
        let (reply, rx) = channel::bounded(1);
        let job = Job {
            sql: sql.to_string(),
            optimizer: self.optimizer,
            exec: self.exec,
            use_plan_cache: self.plan_cache_enabled,
            use_result_cache: self.result_cache_enabled,
            deadline: self.deadline.map(|d| Instant::now() + d),
            enqueued: Instant::now(),
            query_id,
            reply,
        };
        match self.shared.queue.push(job, self.priority) {
            Ok(()) => {
                RuntimeStats::bump(&self.shared.stats.submitted);
                Ok(PendingQuery { rx, query_id })
            }
            Err(e) => {
                RuntimeStats::bump(&self.shared.stats.rejected);
                Err(e)
            }
        }
    }
}

/// A submitted query that has not been waited on yet.
pub struct PendingQuery {
    rx: channel::Receiver<Result<QueryResult>>,
    query_id: u64,
}

impl PendingQuery {
    /// The runtime-assigned query id (also in the result's metrics).
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Blocks until the query finishes.
    pub fn wait(self) -> Result<QueryResult> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(GisError::Overloaded(
                "runtime shut down before the query completed".into(),
            ))
        })
    }

    /// Returns the result if it is ready, `None` otherwise.
    pub fn try_wait(&self) -> Option<Result<QueryResult>> {
        self.rx.try_recv().ok()
    }
}
