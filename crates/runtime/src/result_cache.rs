//! The result cache: whole result sets for read-only queries.
//!
//! A hit skips planning *and* execution — zero bytes cross any link.
//! Because the federation's sources are autonomous, correctness
//! hinges on invalidation: every entry pins the per-source data
//! versions observed before execution, and a lookup only hits when
//! every source still reports the same version. Loads and mapping
//! changes bump versions, so stale entries die on their next probe
//! (and are removed eagerly then, freeing budget).

use gis_types::mem::MemPool;
use gis_types::Batch;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: the fingerprint of the optimized plan (which already
/// encodes SQL text, catalog version, and optimizer options) plus a
/// fingerprint of the execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ResultKey {
    pub plan_fp: u64,
    pub exec_fp: u64,
}

struct Entry {
    batch: Batch,
    bytes: u64,
    /// The normalized SQL the entry was built from. The key is only a
    /// pair of 64-bit fingerprints, so a hit must verify the text
    /// before serving — a fingerprint collision must never let one
    /// query serve another query's result.
    sql: String,
    /// Per-source data versions at execution time.
    versions: BTreeMap<String, u64>,
    last_used: u64,
}

struct Inner {
    map: HashMap<ResultKey, Entry>,
    bytes: u64,
    tick: u64,
}

/// A byte-budgeted LRU cache of query results. Resident bytes are
/// also charged against the process memory pool, so cached results
/// compete with running queries for the same headroom; under pool
/// pressure the cache evicts (or declines inserts) rather than
/// squeezing queries out.
pub(crate) struct ResultCache {
    inner: Mutex<Inner>,
    budget: u64,
    pool: Arc<MemPool>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl ResultCache {
    pub fn new(budget: u64, pool: Arc<MemPool>) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget,
            pool,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Looks up a result. Hits only when the entry's normalized SQL
    /// matches `sql` (fingerprints can collide) *and* its pinned
    /// source versions match `current` exactly; stale entries are
    /// dropped. A verified SQL mismatch counts as a miss (and a
    /// collision) and leaves the resident entry alone — it is still
    /// valid for its own query.
    pub fn get(
        &self,
        key: &ResultKey,
        sql: &str,
        current: &BTreeMap<String, u64>,
    ) -> Option<Batch> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let stale = match inner.map.get_mut(key) {
            Some(entry) if entry.sql != sql => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                false
            }
            Some(entry) if entry.versions == *current => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.batch.clone());
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            if let Some(entry) = inner.map.remove(key) {
                inner.bytes -= entry.bytes;
                self.pool.release(entry.bytes);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a miss without a lookup (cache disabled for the call).
    pub fn count_bypass(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts a result, evicting LRU entries until it fits. Results
    /// larger than the whole budget are not cached.
    pub fn put(&self, key: ResultKey, sql: String, batch: Batch, versions: BTreeMap<String, u64>) {
        let bytes = batch.wire_size() as u64;
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
            self.pool.release(old.bytes);
        }
        // Evict for the cache's own byte budget first, then keep
        // evicting for *pool* pressure: a cache entry is always the
        // right thing to sacrifice for query headroom.
        while inner.bytes + bytes > self.budget
            || (self.pool.available() < bytes && !inner.map.is_empty())
        {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match oldest {
                Some(k) => {
                    if let Some(evicted) = inner.map.remove(&k) {
                        inner.bytes -= evicted.bytes;
                        self.pool.release(evicted.bytes);
                    }
                }
                None => break,
            }
        }
        if !self.pool.try_reserve(bytes) {
            // Even a fully drained cache cannot make room — queries
            // and views own the pool right now; skip the insert.
            return;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                batch,
                bytes,
                sql,
                versions,
                last_used: tick,
            },
        );
    }

    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups whose fingerprints matched a resident entry but whose
    /// SQL did not — each one a wrong result served before the fix.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema, Value};

    fn batch(n: i64) -> Batch {
        let schema = Schema::new(vec![Field::required("x", DataType::Int64)]).into_ref();
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int64(i)]).collect();
        Batch::from_rows(schema, &rows).unwrap()
    }

    fn versions(v: u64) -> BTreeMap<String, u64> {
        BTreeMap::from([("s".to_string(), v)])
    }

    fn cache(budget: u64) -> ResultCache {
        ResultCache::new(budget, Arc::new(MemPool::new(u64::MAX)))
    }

    const SQL: &str = "select x from t";

    #[test]
    fn hit_requires_matching_versions() {
        let cache = cache(1 << 20);
        let key = ResultKey {
            plan_fp: 1,
            exec_fp: 2,
        };
        cache.put(key, SQL.into(), batch(3), versions(1));
        assert!(cache.get(&key, SQL, &versions(1)).is_some());
        // Source moved on: entry invalidated and removed.
        assert!(cache.get(&key, SQL, &versions(2)).is_none());
        assert_eq!(cache.bytes(), 0);
        // Even going back to the old version misses now.
        assert!(cache.get(&key, SQL, &versions(1)).is_none());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let one = batch(1).wire_size() as u64;
        let cache = cache(2 * one);
        let k = |i| ResultKey {
            plan_fp: i,
            exec_fp: 0,
        };
        cache.put(k(1), SQL.into(), batch(1), versions(1));
        cache.put(k(2), SQL.into(), batch(1), versions(1));
        assert!(cache.get(&k(1), SQL, &versions(1)).is_some()); // k1 recent
        cache.put(k(3), SQL.into(), batch(1), versions(1));
        assert!(cache.get(&k(2), SQL, &versions(1)).is_none(), "k2 evicted");
        assert!(cache.get(&k(1), SQL, &versions(1)).is_some());
        assert!(cache.get(&k(3), SQL, &versions(1)).is_some());
        assert!(cache.bytes() <= 2 * one);
    }

    #[test]
    fn oversized_results_skip_the_cache() {
        let cache = cache(8);
        let key = ResultKey {
            plan_fp: 1,
            exec_fp: 1,
        };
        cache.put(key, SQL.into(), batch(1000), versions(1));
        assert_eq!(cache.bytes(), 0);
        assert!(cache.get(&key, SQL, &versions(1)).is_none());
    }

    #[test]
    fn pool_pressure_evicts_entries_and_declines_inserts() {
        let one = batch(1).wire_size() as u64;
        // Pool fits exactly one cached result; the cache's own budget
        // would happily hold two.
        let pool = Arc::new(MemPool::new(one));
        let cache = ResultCache::new(4 * one, pool.clone());
        let k = |i| ResultKey {
            plan_fp: i,
            exec_fp: 0,
        };
        cache.put(k(1), SQL.into(), batch(1), versions(1));
        assert_eq!(pool.used(), one);
        // A second insert evicts the first for pool headroom.
        cache.put(k(2), SQL.into(), batch(1), versions(1));
        assert!(cache.get(&k(1), SQL, &versions(1)).is_none());
        assert!(cache.get(&k(2), SQL, &versions(1)).is_some());
        assert_eq!(pool.used(), one);
        // With the pool held by someone else entirely, inserts are
        // declined once the cache has nothing left to evict.
        assert!(pool.try_reserve(0)); // sanity: pool API reachable
        let outside = pool.available();
        if outside > 0 {
            assert!(pool.try_reserve(outside));
        }
        cache.put(k(3), "other".into(), batch(2), versions(1));
        assert!(cache.get(&k(3), "other", &versions(1)).is_none());
    }

    #[test]
    fn fingerprint_collision_is_a_verified_miss_not_a_false_hit() {
        // Two *different* queries forced onto the same fingerprint
        // pair — exactly what a u64 collision looks like. Before the
        // fix, the second query was served the first query's rows.
        let cache = cache(1 << 20);
        let key = ResultKey {
            plan_fp: 42,
            exec_fp: 7,
        };
        cache.put(key, "select x from t".into(), batch(3), versions(1));

        let colliding = cache.get(&key, "select y from u", &versions(1));
        assert!(
            colliding.is_none(),
            "collision must not serve another query's result"
        );
        assert_eq!(cache.collisions(), 1);

        // The rightful owner still hits, untouched by the collision.
        assert!(cache.get(&key, "select x from t", &versions(1)).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
