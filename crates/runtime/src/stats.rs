//! Aggregate runtime counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters the scheduler and caches bump as they work.
#[derive(Debug, Default)]
pub(crate) struct RuntimeStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub mem_rejected: AtomicU64,
    pub mem_killed: AtomicU64,
    pub spilled_bytes: AtomicU64,
    pub spill_events: AtomicU64,
}

impl RuntimeStats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every runtime counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries admitted to the queue.
    pub submitted: u64,
    /// Queries that produced a result (ok).
    pub completed: u64,
    /// Queries that produced an error (excluding rejections and
    /// deadline expiries, which have their own counters).
    pub failed: u64,
    /// Submissions refused at admission (queue full).
    pub rejected: u64,
    /// Queries cancelled because their deadline passed — in the queue
    /// or mid-execution.
    pub deadline_expired: u64,
    /// Plan cache hits.
    pub plan_cache_hits: u64,
    /// Plan cache misses (includes bypasses with the cache disabled).
    pub plan_cache_misses: u64,
    /// Plan cache entries currently resident.
    pub plan_cache_entries: u64,
    /// Result cache hits.
    pub result_cache_hits: u64,
    /// Result cache misses (includes bypasses and invalidations).
    pub result_cache_misses: u64,
    /// Result cache lookups whose fingerprints matched an entry built
    /// from different SQL — verified and counted as misses.
    pub result_cache_collisions: u64,
    /// Result cache bytes currently resident.
    pub result_cache_bytes: u64,
    /// Queries recorded in the slow-query log so far.
    pub slow_queries: u64,
    /// Slow-query log entries evicted because the ring was full.
    pub slow_log_dropped: u64,
    /// Submissions refused at admission because the memory pool was
    /// exhausted (distinct from queue-full rejections).
    pub mem_rejected: u64,
    /// Queries cancelled mid-execution with `ResourceExhausted`.
    pub mem_killed: u64,
    /// Cumulative bytes hash kernels spilled to disk.
    pub spilled_bytes: u64,
    /// Spill degradations (kernels that fell back to disk).
    pub spill_events: u64,
    /// Memory pool bytes currently reserved.
    pub mem_pool_used: u64,
    /// Memory pool high-water mark since startup.
    pub mem_pool_peak: u64,
    /// Memory pool configured capacity.
    pub mem_pool_capacity: u64,
}

impl StatsSnapshot {
    /// A two-column table rendering, mirroring
    /// `QueryMetrics::to_table` for report binaries.
    pub fn to_table(&self) -> String {
        let rows = [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("rejected", self.rejected),
            ("deadline_expired", self.deadline_expired),
            ("plan_cache_hits", self.plan_cache_hits),
            ("plan_cache_misses", self.plan_cache_misses),
            ("plan_cache_entries", self.plan_cache_entries),
            ("result_cache_hits", self.result_cache_hits),
            ("result_cache_misses", self.result_cache_misses),
            ("result_cache_collisions", self.result_cache_collisions),
            ("result_cache_bytes", self.result_cache_bytes),
            ("slow_queries", self.slow_queries),
            ("slow_log_dropped", self.slow_log_dropped),
            ("mem_rejected", self.mem_rejected),
            ("mem_killed", self.mem_killed),
            ("spilled_bytes", self.spilled_bytes),
            ("spill_events", self.spill_events),
            ("mem_pool_used", self.mem_pool_used),
            ("mem_pool_peak", self.mem_pool_peak),
        ];
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }
}
