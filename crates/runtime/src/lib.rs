//! # gis-runtime — the serving layer over a [`Federation`]
//!
//! The core crates answer *how* to run one federated query well; this
//! crate answers what a mediator actually deploys: many concurrent
//! clients, repeated query shapes, and sources whose data moves under
//! it. It wraps a [`Federation`] in four cooperating pieces:
//!
//! * **Sessions** ([`Session`]) — per-client handles carrying scoped
//!   [`OptimizerOptions`]/[`ExecOptions`] overrides, deadlines, an
//!   admission priority, and cache-ablation switches. Options travel
//!   with each job, so sessions never mutate shared federation state.
//! * **Scheduler** — a fixed worker pool fed by a bounded two-lane
//!   queue. Admission control fails fast: a full queue returns
//!   [`gis_types::GisError::Overloaded`] instead of blocking, and
//!   queries whose deadline passes are cancelled — in the queue or
//!   mid-execution via the engine's deadline checks.
//! * **Plan cache** — memoized parse→bind→optimize keyed on
//!   normalized SQL + catalog version + optimizer options. Skips the
//!   frontend entirely on repeated query shapes.
//! * **Result cache** — whole results for read-only queries, keyed on
//!   plan fingerprint + execution options, pinned to per-source data
//!   versions. A hit ships zero bytes over any link; any source load
//!   or mapping change invalidates affected entries.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use gis_core::Federation;
//! # use gis_runtime::{Runtime, RuntimeConfig};
//! let fed = Arc::new(Federation::new());
//! let runtime = Runtime::new(fed, RuntimeConfig::default());
//! let session = runtime.session();
//! let result = session.query("SELECT 1 AS x")?;
//! assert_eq!(result.metrics.query_id, 1);
//! # Ok::<(), gis_types::GisError>(())
//! ```

mod config;
mod plan_cache;
mod result_cache;
mod scheduler;
mod session;
mod stats;

pub use config::RuntimeConfig;
pub use scheduler::Priority;
pub use session::{PendingQuery, Session};
pub use stats::StatsSnapshot;

use gis_core::{ExecOptions, Federation, OptimizerOptions};
use plan_cache::PlanCache;
use result_cache::ResultCache;
use scheduler::{worker_loop, JobQueue, Shared};
use stats::RuntimeStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The serving runtime: a worker pool plus caches over a federation.
pub struct Runtime {
    shared: Arc<Shared>,
    next_session: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Starts a runtime with `config.workers` worker threads.
    pub fn new(federation: Arc<Federation>, config: RuntimeConfig) -> Runtime {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_depth),
            plan_cache: PlanCache::new(config.plan_cache_capacity),
            result_cache: ResultCache::new(config.result_cache_bytes),
            stats: RuntimeStats::default(),
            federation,
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gis-runtime-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            shared,
            next_session: AtomicU64::new(1),
            workers,
        }
    }

    /// The federation this runtime serves.
    pub fn federation(&self) -> &Arc<Federation> {
        &self.shared.federation
    }

    /// The configuration the runtime was started with.
    pub fn config(&self) -> RuntimeConfig {
        self.shared.config
    }

    /// Opens a new session with the federation's current options.
    pub fn session(&self) -> Session {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        Session::new(self.shared.clone(), id)
    }

    /// Opens a session with explicit option overrides.
    pub fn session_with(&self, optimizer: OptimizerOptions, exec: ExecOptions) -> Session {
        let mut session = self.session();
        session.set_optimizer_options(optimizer);
        session.set_exec_options(exec);
        session
    }

    /// Queries currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// A snapshot of every runtime counter.
    pub fn stats(&self) -> StatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        let s = &self.shared.stats;
        StatsSnapshot {
            submitted: s.submitted.load(Relaxed),
            completed: s.completed.load(Relaxed),
            failed: s.failed.load(Relaxed),
            rejected: s.rejected.load(Relaxed),
            deadline_expired: s.deadline_expired.load(Relaxed),
            plan_cache_hits: self.shared.plan_cache.hits(),
            plan_cache_misses: self.shared.plan_cache.misses(),
            plan_cache_entries: self.shared.plan_cache.len() as u64,
            result_cache_hits: self.shared.result_cache.hits(),
            result_cache_misses: self.shared.result_cache.misses(),
            result_cache_bytes: self.shared.result_cache.bytes(),
        }
    }

    /// Stops accepting work, fails queued queries with
    /// [`gis_types::GisError::Overloaded`], and joins the workers.
    /// In-flight queries run to completion first.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for job in self.shared.queue.close() {
            let _ = job.reply.send(Err(gis_types::GisError::Overloaded(
                "runtime is shutting down".into(),
            )));
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
