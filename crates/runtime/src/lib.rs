//! # gis-runtime — the serving layer over a [`Federation`]
//!
//! The core crates answer *how* to run one federated query well; this
//! crate answers what a mediator actually deploys: many concurrent
//! clients, repeated query shapes, and sources whose data moves under
//! it. It wraps a [`Federation`] in four cooperating pieces:
//!
//! * **Sessions** ([`Session`]) — per-client handles carrying scoped
//!   [`OptimizerOptions`]/[`ExecOptions`] overrides, deadlines, an
//!   admission priority, and cache-ablation switches. Options travel
//!   with each job, so sessions never mutate shared federation state.
//! * **Scheduler** — a fixed worker pool fed by a bounded two-lane
//!   queue. Admission control fails fast: a full queue returns
//!   [`gis_types::GisError::Overloaded`] instead of blocking, and
//!   queries whose deadline passes are cancelled — in the queue or
//!   mid-execution via the engine's deadline checks.
//! * **Plan cache** — memoized parse→bind→optimize keyed on
//!   normalized SQL + catalog version + optimizer options. Skips the
//!   frontend entirely on repeated query shapes.
//! * **Result cache** — whole results for read-only queries, keyed on
//!   plan fingerprint + execution options, pinned to per-source data
//!   versions. A hit ships zero bytes over any link; any source load
//!   or mapping change invalidates affected entries.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use gis_core::Federation;
//! # use gis_runtime::{Runtime, RuntimeConfig};
//! let fed = Arc::new(Federation::new());
//! let runtime = Runtime::new(fed, RuntimeConfig::default());
//! let session = runtime.session();
//! let result = session.query("SELECT 1 AS x")?;
//! assert_eq!(result.metrics.query_id, 1);
//! # Ok::<(), gis_types::GisError>(())
//! ```

mod config;
mod plan_cache;
mod result_cache;
mod scheduler;
mod session;
mod slow_log;
mod stats;

pub use config::RuntimeConfig;
pub use scheduler::Priority;
pub use session::{PendingQuery, Session};
pub use slow_log::SlowQueryEntry;
pub use stats::StatsSnapshot;

use gis_core::{ExecOptions, Federation, OptimizerOptions};
use gis_observe::TextExposition;
use gis_types::mem::MemPool;
use plan_cache::PlanCache;
use result_cache::ResultCache;
use scheduler::{worker_loop, JobQueue, Shared};
use slow_log::SlowLog;
use stats::RuntimeStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The serving runtime: a worker pool plus caches over a federation.
pub struct Runtime {
    shared: Arc<Shared>,
    next_session: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Starts a runtime with `config.workers` worker threads.
    pub fn new(federation: Arc<Federation>, config: RuntimeConfig) -> Runtime {
        let worker_count = config.workers.max(1);
        // One process-wide pool: per-query budgets, the result cache,
        // and resident views all draw from (or overcommit against) it.
        let mem_pool = Arc::new(MemPool::new(config.total_mem_pool));
        federation.views().set_mem_pool(mem_pool.clone());
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_depth),
            plan_cache: PlanCache::new(config.plan_cache_capacity, mem_pool.clone()),
            result_cache: ResultCache::new(config.result_cache_bytes, mem_pool.clone()),
            stats: RuntimeStats::default(),
            slow_log: SlowLog::new(config.slow_log_capacity),
            federation,
            config,
            mem_pool,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gis-runtime-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            shared,
            next_session: AtomicU64::new(1),
            workers,
        }
    }

    /// The federation this runtime serves.
    pub fn federation(&self) -> &Arc<Federation> {
        &self.shared.federation
    }

    /// The configuration the runtime was started with.
    pub fn config(&self) -> RuntimeConfig {
        self.shared.config.clone()
    }

    /// Opens a new session with the federation's current options.
    pub fn session(&self) -> Session {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        Session::new(self.shared.clone(), id)
    }

    /// Opens a session with explicit option overrides.
    pub fn session_with(&self, optimizer: OptimizerOptions, exec: ExecOptions) -> Session {
        let mut session = self.session();
        session.set_optimizer_options(optimizer);
        session.set_exec_options(exec);
        session
    }

    /// Queries currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// A snapshot of every runtime counter.
    pub fn stats(&self) -> StatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        let s = &self.shared.stats;
        StatsSnapshot {
            submitted: s.submitted.load(Relaxed),
            completed: s.completed.load(Relaxed),
            failed: s.failed.load(Relaxed),
            rejected: s.rejected.load(Relaxed),
            deadline_expired: s.deadline_expired.load(Relaxed),
            plan_cache_hits: self.shared.plan_cache.hits(),
            plan_cache_misses: self.shared.plan_cache.misses(),
            plan_cache_entries: self.shared.plan_cache.len() as u64,
            result_cache_hits: self.shared.result_cache.hits(),
            result_cache_misses: self.shared.result_cache.misses(),
            result_cache_collisions: self.shared.result_cache.collisions(),
            result_cache_bytes: self.shared.result_cache.bytes(),
            slow_queries: self.shared.slow_log.recorded(),
            slow_log_dropped: self.shared.slow_log.dropped(),
            mem_rejected: s.mem_rejected.load(Relaxed),
            mem_killed: s.mem_killed.load(Relaxed),
            spilled_bytes: s.spilled_bytes.load(Relaxed),
            spill_events: s.spill_events.load(Relaxed),
            mem_pool_used: self.shared.mem_pool.used(),
            mem_pool_peak: self.shared.mem_pool.peak(),
            mem_pool_capacity: self.shared.mem_pool.capacity(),
        }
    }

    /// Resident slow-query log entries, oldest first. Empty unless
    /// [`RuntimeConfig::slow_query_us`] is set.
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.shared.slow_log.entries()
    }

    /// Renders every runtime, cache, per-link, and per-source counter
    /// in the Prometheus text exposition format — the scrape surface a
    /// deployment wires to its monitoring.
    pub fn render_text(&self) -> String {
        let stats = self.stats();
        let mut expo = TextExposition::new();
        expo.header("gis_queries_total", "counter", "Queries by final state");
        for (state, value) in [
            ("submitted", stats.submitted),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("rejected", stats.rejected),
            ("deadline_expired", stats.deadline_expired),
            ("mem_rejected", stats.mem_rejected),
            ("mem_killed", stats.mem_killed),
        ] {
            expo.sample("gis_queries_total", &[("state", state)], value);
        }
        expo.header(
            "gis_mem_pool_bytes",
            "gauge",
            "Process memory pool (used may overcommit capacity via resident views)",
        );
        for (state, value) in [
            ("used", stats.mem_pool_used),
            ("peak", stats.mem_pool_peak),
            ("capacity", stats.mem_pool_capacity),
        ] {
            expo.sample("gis_mem_pool_bytes", &[("state", state)], value);
        }
        expo.header(
            "gis_spill_bytes_total",
            "counter",
            "Bytes hash kernels spilled to disk under memory pressure",
        );
        expo.sample("gis_spill_bytes_total", &[], stats.spilled_bytes);
        expo.header(
            "gis_spill_events_total",
            "counter",
            "Kernel degradations to spilled execution",
        );
        expo.sample("gis_spill_events_total", &[], stats.spill_events);
        expo.header("gis_queue_depth", "gauge", "Queries waiting for a worker");
        expo.sample("gis_queue_depth", &[], self.queued() as u64);
        expo.header("gis_plan_cache_total", "counter", "Plan cache outcomes");
        expo.sample(
            "gis_plan_cache_total",
            &[("event", "hit")],
            stats.plan_cache_hits,
        );
        expo.sample(
            "gis_plan_cache_total",
            &[("event", "miss")],
            stats.plan_cache_misses,
        );
        expo.header("gis_plan_cache_entries", "gauge", "Resident cached plans");
        expo.sample("gis_plan_cache_entries", &[], stats.plan_cache_entries);
        expo.header("gis_result_cache_total", "counter", "Result cache outcomes");
        expo.sample(
            "gis_result_cache_total",
            &[("event", "hit")],
            stats.result_cache_hits,
        );
        expo.sample(
            "gis_result_cache_total",
            &[("event", "miss")],
            stats.result_cache_misses,
        );
        expo.sample(
            "gis_result_cache_total",
            &[("event", "collision")],
            stats.result_cache_collisions,
        );
        expo.header("gis_result_cache_bytes", "gauge", "Resident result bytes");
        expo.sample("gis_result_cache_bytes", &[], stats.result_cache_bytes);
        expo.header(
            "gis_slow_queries_total",
            "counter",
            "Queries recorded in the slow-query log",
        );
        expo.sample("gis_slow_queries_total", &[], stats.slow_queries);
        expo.header(
            "gis_slow_log_dropped_total",
            "counter",
            "Slow-log entries evicted because the ring was full",
        );
        expo.sample("gis_slow_log_dropped_total", &[], stats.slow_log_dropped);
        let fed = &self.shared.federation;
        expo.header(
            "gis_wire_bytes",
            "counter",
            "Response payload bytes before (raw) and after (compressed) wire encoding",
        );
        let wire = fed.wire_stats();
        expo.sample("gis_wire_bytes", &[("kind", "raw")], wire.raw_bytes());
        expo.sample(
            "gis_wire_bytes",
            &[("kind", "compressed")],
            wire.wire_bytes(),
        );
        expo.header(
            "gis_wire_frames_total",
            "counter",
            "Response frames encoded for the wire",
        );
        expo.sample("gis_wire_frames_total", &[], wire.frames());
        expo.header(
            "gis_wire_columns_total",
            "counter",
            "Encoded columns by the codec each one selected",
        );
        for codec in gis_net::ColumnCodec::all() {
            expo.sample(
                "gis_wire_columns_total",
                &[("codec", codec.name())],
                wire.columns(codec),
            );
        }
        expo.header("gis_link_bytes_total", "counter", "Bytes shipped per link");
        // One series per *link*, not per logical source: every replica
        // reports under its own link name (`crm`, `crm@r1`, …).
        let links: Vec<_> = fed
            .all_links()
            .into_iter()
            .map(|l| (l.name().to_string(), l))
            .collect();
        for (name, link) in &links {
            expo.sample(
                "gis_link_bytes_total",
                &[("source", name)],
                link.metrics().bytes(),
            );
        }
        expo.header("gis_link_messages_total", "counter", "Messages per link");
        for (name, link) in &links {
            expo.sample(
                "gis_link_messages_total",
                &[("source", name)],
                link.metrics().messages(),
            );
        }
        expo.header(
            "gis_link_failures_total",
            "counter",
            "Transient link failures (including retried)",
        );
        for (name, link) in &links {
            expo.sample(
                "gis_link_failures_total",
                &[("source", name)],
                link.metrics().failures(),
            );
        }
        expo.header(
            "gis_link_busy_us_total",
            "counter",
            "Virtual microseconds each link was busy",
        );
        for (name, link) in &links {
            expo.sample(
                "gis_link_busy_us_total",
                &[("source", name)],
                link.metrics().busy_us(),
            );
        }
        expo.header(
            "gis_link_retries_total",
            "counter",
            "Retry attempts per link",
        );
        for (name, link) in &links {
            expo.sample(
                "gis_link_retries_total",
                &[("source", name)],
                link.metrics().retries(),
            );
        }
        expo.header(
            "gis_link_breaker_state",
            "gauge",
            "Circuit-breaker state per link (0=closed, 1=half-open, 2=open)",
        );
        for (name, link) in &links {
            expo.sample(
                "gis_link_breaker_state",
                &[("source", name)],
                link.breaker_state().as_gauge(),
            );
        }
        expo.header(
            "gis_link_breaker_opens_total",
            "counter",
            "Closed-to-open breaker transitions per link",
        );
        for (name, link) in &links {
            expo.sample(
                "gis_link_breaker_opens_total",
                &[("source", name)],
                link.breaker().opens(),
            );
        }
        expo.header(
            "gis_link_fast_failures_total",
            "counter",
            "Requests failed fast by an open breaker (no wire latency paid)",
        );
        for (name, link) in &links {
            expo.sample(
                "gis_link_fast_failures_total",
                &[("source", name)],
                link.breaker().fast_failures(),
            );
        }
        expo.header(
            "gis_source_data_version",
            "gauge",
            "Per-source data version (bumps invalidate cached results)",
        );
        for (name, version) in fed.data_versions() {
            expo.sample("gis_source_data_version", &[("source", &name)], version);
        }
        let views = fed.view_gauges();
        if !views.is_empty() {
            expo.header(
                "gis_view_fresh",
                "gauge",
                "1 when the materialized view is fresh, 0 when stale or empty",
            );
            for v in &views {
                expo.sample(
                    "gis_view_fresh",
                    &[("view", &v.name), ("policy", &v.policy)],
                    v.fresh,
                );
            }
            expo.header(
                "gis_view_lagging_sources",
                "gauge",
                "Sources whose data_version moved past the view's pinned snapshot",
            );
            for v in &views {
                expo.sample(
                    "gis_view_lagging_sources",
                    &[("view", &v.name)],
                    v.lagging_sources,
                );
            }
            expo.header("gis_view_rows", "gauge", "Materialized rows per view");
            for v in &views {
                expo.sample("gis_view_rows", &[("view", &v.name)], v.rows);
            }
            expo.header(
                "gis_view_bytes",
                "gauge",
                "Materialized wire bytes per view",
            );
            for v in &views {
                expo.sample("gis_view_bytes", &[("view", &v.name)], v.bytes);
            }
            expo.header(
                "gis_view_hits_total",
                "counter",
                "Queries answered (in part) from this view",
            );
            for v in &views {
                expo.sample("gis_view_hits_total", &[("view", &v.name)], v.hits);
            }
            expo.header(
                "gis_view_stale_skips_total",
                "counter",
                "Matches the rewriter declined because the view was stale",
            );
            for v in &views {
                expo.sample(
                    "gis_view_stale_skips_total",
                    &[("view", &v.name)],
                    v.stale_skips,
                );
            }
            expo.header(
                "gis_view_refreshes_total",
                "counter",
                "Completed (re-)materializations per view",
            );
            for v in &views {
                expo.sample(
                    "gis_view_refreshes_total",
                    &[("view", &v.name)],
                    v.refreshes,
                );
            }
            expo.header(
                "gis_view_refresh_rows_total",
                "counter",
                "Cumulative rows shipped by refreshes (the refresh cost)",
            );
            for v in &views {
                expo.sample(
                    "gis_view_refresh_rows_total",
                    &[("view", &v.name)],
                    v.refresh_rows,
                );
            }
        }
        let stats = fed.stats_gauges();
        expo.header(
            "gis_stats_tables_analyzed_total",
            "counter",
            "Tables ANALYZE has collected statistics for (counting repeats)",
        );
        expo.sample(
            "gis_stats_tables_analyzed_total",
            &[],
            stats.tables_analyzed,
        );
        expo.header(
            "gis_stats_analyze_bytes_total",
            "counter",
            "Wire bytes shipped by ANALYZE traffic (priced on the virtual clock)",
        );
        expo.sample("gis_stats_analyze_bytes_total", &[], stats.analyze_bytes);
        expo.header(
            "gis_stats_reanalyze_scheduled_total",
            "counter",
            "Re-ANALYZEs the cardinality-feedback loop has scheduled",
        );
        expo.sample(
            "gis_stats_reanalyze_scheduled_total",
            &[],
            stats.reanalyze_scheduled,
        );
        expo.header(
            "gis_stats_feedback_samples_total",
            "counter",
            "Estimated-vs-actual cardinality samples recorded",
        );
        expo.sample(
            "gis_stats_feedback_samples_total",
            &[],
            stats.samples_recorded,
        );
        expo.header(
            "gis_stats_qerror_median_milli",
            "gauge",
            "Median q-error over the feedback ring, scaled by 1000 (1000 = perfect)",
        );
        expo.sample(
            "gis_stats_qerror_median_milli",
            &[],
            (stats.qerror_median * 1_000.0).round() as u64,
        );
        expo.header(
            "gis_stats_qerror_max_milli",
            "gauge",
            "Maximum q-error over the feedback ring, scaled by 1000",
        );
        expo.sample(
            "gis_stats_qerror_max_milli",
            &[],
            (stats.qerror_max * 1_000.0).round() as u64,
        );
        if !stats.tables.is_empty() {
            expo.header(
                "gis_stats_table_drift_milli",
                "gauge",
                "Per-table median q-error over the recent window, scaled by 1000",
            );
            for t in &stats.tables {
                expo.sample(
                    "gis_stats_table_drift_milli",
                    &[("source", &t.source), ("table", &t.table)],
                    (t.median_q * 1_000.0).round() as u64,
                );
            }
            expo.header(
                "gis_stats_table_analyzed_total",
                "counter",
                "ANALYZE runs that have covered this table",
            );
            for t in &stats.tables {
                expo.sample(
                    "gis_stats_table_analyzed_total",
                    &[("source", &t.source), ("table", &t.table)],
                    t.analyzed,
                );
            }
        }
        expo.render()
    }

    /// Stops accepting work, fails queued queries with
    /// [`gis_types::GisError::Overloaded`], and joins the workers.
    /// In-flight queries run to completion first.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for job in self.shared.queue.close() {
            let _ = job.reply.send(Err(gis_types::GisError::Overloaded(
                "runtime is shutting down".into(),
            )));
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
