//! # gis-storage — the autonomous component information systems
//!
//! A Global Information System has no storage of its own: all data
//! lives in *component* systems that predate the federation and keep
//! full autonomy over their formats and access paths. This crate
//! implements three deliberately different engines so the mediator
//! must genuinely cope with heterogeneity:
//!
//! * [`row::RowStore`] — an OLTP-flavored row store: heap of tuples,
//!   B-tree primary key, optional secondary indexes, point and range
//!   access paths.
//! * [`column::ColumnStore`] — an analytics-flavored column store:
//!   segmented columns with per-segment zone maps and lightweight
//!   compression (RLE, dictionary), scan-only access.
//! * [`kv::KvStore`] — a key-value store: opaque composite keys,
//!   point `get` and key-range scans, no predicate evaluation at all.
//!
//! All three speak the shared [`predicate::ScanPredicate`] vocabulary
//! *to the extent their capability allows* — the adapter layer
//! (`gis-adapters`) is responsible for never asking an engine for
//! more than it can do.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod column;
pub mod kv;
pub mod predicate;
pub mod row;
pub mod spill;
pub mod stats;

pub use column::ColumnStore;
pub use kv::KvStore;
pub use predicate::{CmpOp, ScanPredicate};
pub use row::RowStore;
pub use spill::{SpillFile, SpillRecord, SpillWriter};
pub use stats::{ColumnStats, StatsCollector, TableStats};
