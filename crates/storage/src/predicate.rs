//! Storage-level scan predicates.
//!
//! Component engines do not understand the mediator's expression
//! language; they understand simple `column op constant` comparisons
//! (and conjunctions of them). This is the *native query interface*
//! of the engines — the adapter layer compiles whatever subset of a
//! WHERE clause fits this shape and leaves the rest to the mediator.

use gis_types::{Batch, Value};

/// Comparison operators a storage engine evaluates natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// Evaluates `left op right` with SQL NULL semantics
    /// (`None` when either side is NULL).
    pub fn eval(self, left: &Value, right: &Value) -> Option<bool> {
        if left.is_null() || right.is_null() {
            return None;
        }
        let ord = left.total_cmp(right);
        Some(match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::NotEq => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::LtEq => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::GtEq => ord.is_ge(),
        })
    }

    /// Whether rows in a `[min, max]` range could satisfy
    /// `column op value` — the zone-map pruning test. Conservative:
    /// returns `true` when unsure.
    pub fn range_may_match(self, min: &Value, max: &Value, value: &Value) -> bool {
        if value.is_null() || min.is_null() || max.is_null() {
            return true;
        }
        match self {
            CmpOp::Eq => min.total_cmp(value).is_le() && max.total_cmp(value).is_ge(),
            CmpOp::NotEq => {
                // Only prunable when the whole segment is one value.
                !(min == value && max == value)
            }
            CmpOp::Lt => min.total_cmp(value).is_lt(),
            CmpOp::LtEq => min.total_cmp(value).is_le(),
            CmpOp::Gt => max.total_cmp(value).is_gt(),
            CmpOp::GtEq => max.total_cmp(value).is_ge(),
        }
    }
}

/// One native predicate: `column <op> value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPredicate {
    /// Ordinal of the column in the table's schema.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub value: Value,
}

impl ScanPredicate {
    /// Builds a predicate.
    pub fn new(column: usize, op: CmpOp, value: Value) -> Self {
        ScanPredicate { column, op, value }
    }

    /// Evaluates against one materialized row. NULL comparisons are
    /// `false` (rows with NULL in the column never match).
    pub fn matches_row(&self, row: &[Value]) -> bool {
        self.op
            .eval(&row[self.column], &self.value)
            .unwrap_or(false)
    }

    /// Evaluates against row `i` of a batch.
    pub fn matches_batch_row(&self, batch: &Batch, i: usize) -> bool {
        self.op
            .eval(&batch.column(self.column).value_at(i), &self.value)
            .unwrap_or(false)
    }
}

/// Evaluates a conjunction of predicates on one row.
pub fn all_match(preds: &[ScanPredicate], row: &[Value]) -> bool {
    preds.iter().all(|p| p.matches_row(row))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_three_valued() {
        assert_eq!(
            CmpOp::Eq.eval(&Value::Int64(1), &Value::Int64(1)),
            Some(true)
        );
        assert_eq!(
            CmpOp::Lt.eval(&Value::Int64(2), &Value::Int64(1)),
            Some(false)
        );
        assert_eq!(CmpOp::Eq.eval(&Value::Null, &Value::Int64(1)), None);
    }

    #[test]
    fn row_matching_treats_null_as_false() {
        let p = ScanPredicate::new(0, CmpOp::Gt, Value::Int64(5));
        assert!(p.matches_row(&[Value::Int64(6)]));
        assert!(!p.matches_row(&[Value::Int64(5)]));
        assert!(!p.matches_row(&[Value::Null]));
    }

    #[test]
    fn zone_map_pruning() {
        let min = Value::Int64(10);
        let max = Value::Int64(20);
        // Eq inside / outside range
        assert!(CmpOp::Eq.range_may_match(&min, &max, &Value::Int64(15)));
        assert!(!CmpOp::Eq.range_may_match(&min, &max, &Value::Int64(25)));
        // Lt: possible only if min < v
        assert!(!CmpOp::Lt.range_may_match(&min, &max, &Value::Int64(10)));
        assert!(CmpOp::Lt.range_may_match(&min, &max, &Value::Int64(11)));
        // Gt: possible only if max > v
        assert!(!CmpOp::Gt.range_may_match(&min, &max, &Value::Int64(20)));
        assert!(CmpOp::Gt.range_may_match(&min, &max, &Value::Int64(19)));
        // NotEq on constant segment
        let c = Value::Int64(7);
        assert!(!CmpOp::NotEq.range_may_match(&c, &c, &c));
        assert!(CmpOp::NotEq.range_may_match(&min, &max, &Value::Int64(15)));
        // Unknown stats never prune
        assert!(CmpOp::Eq.range_may_match(&Value::Null, &max, &Value::Int64(99)));
    }

    #[test]
    fn conjunction() {
        let preds = vec![
            ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(1)),
            ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("x".into())),
        ];
        assert!(all_match(
            &preds,
            &[Value::Int64(1), Value::Utf8("x".into())]
        ));
        assert!(!all_match(
            &preds,
            &[Value::Int64(0), Value::Utf8("x".into())]
        ));
    }
}
