//! The key-value store: the least capable component engine.
//!
//! Models the flat-file / hierarchical systems a 1989 federation had
//! to absorb: composite byte-comparable keys, opaque values, point
//! `get`, prefix and range scans — and **no predicate evaluation at
//! all**. The mediator must fetch and filter on its side, or exploit
//! key structure. Keys are encoded order-preservingly so range scans
//! over the B-tree match value ordering.

use crate::stats::{StatsCollector, TableStats};
use gis_stats::SampleSpec;
use gis_types::{Batch, GisError, Result, SchemaRef, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Order-preserving key encoding.
///
/// Each component is tagged and padded such that byte-wise comparison
/// of encoded keys equals [`Value::total_cmp`] on the originals
/// (for the supported key types: integers, dates, strings).
pub fn encode_key_component(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(0x00),
        Value::Int32(x) => {
            out.push(0x02);
            // Flip the sign bit so byte order matches numeric order.
            out.extend_from_slice(&((*x as i64) as u64 ^ (1 << 63)).to_be_bytes());
        }
        Value::Int64(x) => {
            out.push(0x02);
            out.extend_from_slice(&((*x as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Date(x) => {
            out.push(0x02);
            out.extend_from_slice(&((*x as i64) as u64 ^ (1 << 63)).to_be_bytes());
        }
        Value::Timestamp(x) => {
            out.push(0x02);
            out.extend_from_slice(&((*x as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Utf8(s) => {
            out.push(0x03);
            // 0x00 bytes escaped as 0x00 0xFF; terminator 0x00 0x00.
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
        other => {
            return Err(GisError::Storage(format!(
                "unsupported key component type {}",
                other.data_type()
            )))
        }
    }
    Ok(())
}

/// Encodes a composite key.
pub fn encode_key(components: &[Value]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(components.len() * 9);
    for c in components {
        encode_key_component(&mut out, c)?;
    }
    Ok(out)
}

/// A key-value component store over an ordered map.
#[derive(Debug)]
pub struct KvStore {
    name: String,
    /// Schema of the *decoded rows* (key columns first, then payload).
    schema: SchemaRef,
    /// How many leading schema columns form the key.
    key_width: usize,
    map: BTreeMap<Vec<u8>, Vec<Value>>,
}

impl KvStore {
    /// An empty store. The first `key_width` schema columns are the
    /// composite key.
    pub fn new(name: impl Into<String>, schema: SchemaRef, key_width: usize) -> Result<Self> {
        if key_width == 0 || key_width > schema.len() {
            return Err(GisError::Storage(format!(
                "key width {key_width} invalid for {}-column schema",
                schema.len()
            )));
        }
        Ok(KvStore {
            name: name.into(),
            schema,
            key_width,
            map: BTreeMap::new(),
        })
    }

    /// Store name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row schema (key columns first).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of key columns.
    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts or replaces the row keyed by its first `key_width`
    /// columns. Returns true when an existing entry was replaced.
    pub fn put(&mut self, row: Vec<Value>) -> Result<bool> {
        if row.len() != self.schema.len() {
            return Err(GisError::Storage(format!(
                "row width {} does not match schema width {}",
                row.len(),
                self.schema.len()
            )));
        }
        let key = encode_key(&row[..self.key_width])?;
        Ok(self.map.insert(key, row).is_some())
    }

    /// Point lookup by full key.
    pub fn get(&self, key: &[Value]) -> Result<Option<&[Value]>> {
        if key.len() != self.key_width {
            return Err(GisError::Storage(format!(
                "key width {} does not match store key width {}",
                key.len(),
                self.key_width
            )));
        }
        Ok(self.map.get(&encode_key(key)?).map(Vec::as_slice))
    }

    /// Deletes by full key; returns whether an entry existed.
    pub fn delete(&mut self, key: &[Value]) -> Result<bool> {
        Ok(self.map.remove(&encode_key(key)?).is_some())
    }

    /// Scans entries whose key starts with `prefix` (possibly fewer
    /// components than the key width; empty = everything).
    pub fn scan_prefix(&self, prefix: &[Value], limit: Option<usize>) -> Result<Batch> {
        let encoded = encode_key(prefix)?;
        let limit = limit.unwrap_or(usize::MAX);
        let rows: Vec<Vec<Value>> = self
            .map
            .range((Bound::Included(encoded.clone()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(&encoded))
            .take(limit)
            .map(|(_, v)| v.clone())
            .collect();
        Batch::from_rows(self.schema.clone(), &rows)
    }

    /// Scans the key range `[low, high)` on the first key component
    /// (both bounds optional).
    pub fn scan_range(
        &self,
        low: Option<&Value>,
        high: Option<&Value>,
        limit: Option<usize>,
    ) -> Result<Batch> {
        let lo = match low {
            Some(v) => Bound::Included(encode_key(std::slice::from_ref(v))?),
            None => Bound::Unbounded,
        };
        let hi = match high {
            Some(v) => Bound::Excluded(encode_key(std::slice::from_ref(v))?),
            None => Bound::Unbounded,
        };
        if let (Bound::Included(l), Bound::Excluded(h)) = (&lo, &hi) {
            if l >= h {
                return Ok(Batch::empty(self.schema.clone()));
            }
        }
        let limit = limit.unwrap_or(usize::MAX);
        let rows: Vec<Vec<Value>> = self
            .map
            .range((lo, hi))
            .take(limit)
            .map(|(_, v)| v.clone())
            .collect();
        Batch::from_rows(self.schema.clone(), &rows)
    }

    /// Full scan.
    pub fn scan_all(&self, limit: Option<usize>) -> Result<Batch> {
        self.scan_prefix(&[], limit)
    }

    /// Collects fresh statistics.
    pub fn collect_stats(&self) -> TableStats {
        let mut c = StatsCollector::new(self.schema.len());
        for row in self.map.values() {
            c.observe_row(row);
        }
        c.finish()
    }

    /// Collects statistics from a key-range sample: the ordered key
    /// space is strided so only every `stride`-th entry is visited,
    /// then counts are extrapolated to the full keyspace.
    pub fn collect_stats_sampled(&self, spec: &SampleSpec) -> TableStats {
        let total = self.len() as u64;
        let stride = spec.stride(total) as usize;
        if stride <= 1 {
            return self.collect_stats();
        }
        let offset = (spec.seed as usize) % stride;
        let mut c = StatsCollector::with_seed(self.schema.len(), spec.seed);
        for row in self.map.values().skip(offset).step_by(stride) {
            c.observe_row(row);
        }
        c.finish().scaled_to(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema};
    use proptest::prelude::*;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::required("sku", DataType::Utf8),
            Field::required("warehouse", DataType::Int64),
            Field::new("qty", DataType::Int64),
        ])
        .into_ref()
    }

    fn store() -> KvStore {
        let mut s = KvStore::new("stock", schema(), 2).unwrap();
        for sku in ["apple", "banana", "cherry"] {
            for w in 0..3i64 {
                s.put(vec![
                    Value::Utf8(sku.into()),
                    Value::Int64(w),
                    Value::Int64(w * 10),
                ])
                .unwrap();
            }
        }
        s
    }

    #[test]
    fn put_get_delete() {
        let mut s = store();
        assert_eq!(s.len(), 9);
        let row = s
            .get(&[Value::Utf8("banana".into()), Value::Int64(2)])
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Int64(20));
        // put replaces
        assert!(s
            .put(vec![
                Value::Utf8("banana".into()),
                Value::Int64(2),
                Value::Int64(99)
            ])
            .unwrap());
        assert_eq!(s.len(), 9);
        assert!(s
            .delete(&[Value::Utf8("banana".into()), Value::Int64(2)])
            .unwrap());
        assert_eq!(s.len(), 8);
        assert!(s
            .get(&[Value::Utf8("banana".into()), Value::Int64(2)])
            .unwrap()
            .is_none());
    }

    #[test]
    fn prefix_scan_selects_one_sku() {
        let s = store();
        let b = s
            .scan_prefix(&[Value::Utf8("banana".into())], None)
            .unwrap();
        assert_eq!(b.num_rows(), 3);
        assert!(b
            .column(0)
            .iter_values()
            .all(|v| v == Value::Utf8("banana".into())));
    }

    #[test]
    fn prefix_scan_does_not_leak_neighbors() {
        let mut s = KvStore::new(
            "t",
            Schema::new(vec![
                Field::required("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            1,
        )
        .unwrap();
        s.put(vec![Value::Utf8("ab".into()), Value::Int64(1)])
            .unwrap();
        s.put(vec![Value::Utf8("abc".into()), Value::Int64(2)])
            .unwrap();
        s.put(vec![Value::Utf8("abd".into()), Value::Int64(3)])
            .unwrap();
        // Exact-key prefix "ab" must match only "ab": the terminator
        // makes "ab" and "abc" non-prefix-related on the wire.
        let b = s.scan_prefix(&[Value::Utf8("ab".into())], None).unwrap();
        assert_eq!(b.num_rows(), 1);
    }

    #[test]
    fn range_scan_on_first_component() {
        let s = store();
        let b = s
            .scan_range(
                Some(&Value::Utf8("banana".into())),
                Some(&Value::Utf8("cherry".into())),
                None,
            )
            .unwrap();
        assert_eq!(b.num_rows(), 3);
        // unbounded low
        let b2 = s
            .scan_range(None, Some(&Value::Utf8("banana".into())), None)
            .unwrap();
        assert_eq!(b2.num_rows(), 3); // apples only
    }

    #[test]
    fn key_order_matches_value_order_for_ints() {
        let mut s = KvStore::new(
            "t",
            Schema::new(vec![
                Field::required("k", DataType::Int64),
                Field::new("v", DataType::Int64),
            ])
            .into_ref(),
            1,
        )
        .unwrap();
        for k in [-5i64, 3, -1, 100, 0] {
            s.put(vec![Value::Int64(k), Value::Int64(k)]).unwrap();
        }
        let b = s.scan_all(None).unwrap();
        let keys: Vec<Value> = b.column(0).iter_values().collect();
        assert_eq!(
            keys,
            vec![
                Value::Int64(-5),
                Value::Int64(-1),
                Value::Int64(0),
                Value::Int64(3),
                Value::Int64(100)
            ]
        );
    }

    #[test]
    fn limits_respected() {
        let s = store();
        assert_eq!(s.scan_all(Some(4)).unwrap().num_rows(), 4);
        assert_eq!(
            s.scan_prefix(&[Value::Utf8("apple".into())], Some(2))
                .unwrap()
                .num_rows(),
            2
        );
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(KvStore::new("t", schema(), 0).is_err());
        assert!(KvStore::new("t", schema(), 4).is_err());
        let mut s = store();
        assert!(s.put(vec![Value::Int64(1)]).is_err());
        assert!(s.get(&[Value::Int64(1)]).is_err()); // wrong key width
    }

    #[test]
    fn stats() {
        let s = store();
        let stats = s.collect_stats();
        assert_eq!(stats.row_count, 9);
        assert_eq!(stats.columns[1].min, Some(Value::Int64(0)));
        assert_eq!(stats.columns[1].max, Some(Value::Int64(2)));
    }

    proptest! {
        /// Byte order of encoded single-component keys must equal
        /// value order.
        #[test]
        fn prop_int_key_order(a in any::<i64>(), b in any::<i64>()) {
            let ka = encode_key(&[Value::Int64(a)]).unwrap();
            let kb = encode_key(&[Value::Int64(b)]).unwrap();
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        }

        #[test]
        fn prop_string_key_order(a in ".*", b in ".*") {
            let ka = encode_key(&[Value::Utf8(a.clone())]).unwrap();
            let kb = encode_key(&[Value::Utf8(b.clone())]).unwrap();
            prop_assert_eq!(ka.cmp(&kb), a.as_bytes().cmp(b.as_bytes()));
        }

        #[test]
        fn prop_composite_key_order(
            a1 in -1000i64..1000, a2 in "[a-c]{0,3}",
            b1 in -1000i64..1000, b2 in "[a-c]{0,3}",
        ) {
            let ka = encode_key(&[Value::Int64(a1), Value::Utf8(a2.clone())]).unwrap();
            let kb = encode_key(&[Value::Int64(b1), Value::Utf8(b2.clone())]).unwrap();
            let expect = (a1, a2.as_bytes()).cmp(&(b1, b2.as_bytes()));
            prop_assert_eq!(ka.cmp(&kb), expect);
        }
    }
}
