//! The row store: an OLTP-style component engine.
//!
//! Tuples live in a heap with tombstones; a B-tree primary-key index
//! and optional secondary B-tree indexes provide point and range
//! access paths. `scan` chooses its own access path from the pushed
//! predicates (index equality, index range, or full scan) — the
//! engine is autonomous; the mediator only sees which predicates it
//! *accepted* and how many rows came back.

use crate::predicate::{all_match, CmpOp, ScanPredicate};
use crate::stats::{StatsCollector, TableStats};
use gis_types::{Batch, GisError, Result, SchemaRef, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Result of a scan: the matching rows plus how many tuples the
/// engine had to examine (shows access-path quality in experiments).
#[derive(Debug)]
pub struct ScanResult {
    /// Matching rows, projected.
    pub batch: Batch,
    /// Tuples examined to produce the batch.
    pub rows_examined: usize,
    /// Which access path the engine chose.
    pub access_path: AccessPath,
}

/// Access path chosen by the row store for a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Full heap scan.
    FullScan,
    /// Primary-key point/range access.
    Primary,
    /// Secondary index on the named column.
    Secondary(String),
}

/// An OLTP-style row store with B-tree indexes.
#[derive(Debug)]
pub struct RowStore {
    name: String,
    schema: SchemaRef,
    pk_column: Option<usize>,
    rows: Vec<Option<Vec<Value>>>,
    primary: BTreeMap<Value, usize>,
    secondary: HashMap<usize, BTreeMap<Value, Vec<usize>>>,
    live: usize,
}

impl RowStore {
    /// Creates an empty table. `pk_column` (if given) must be a
    /// non-nullable column; inserts enforce uniqueness on it.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        pk_column: Option<usize>,
    ) -> Result<Self> {
        if let Some(pk) = pk_column {
            if pk >= schema.len() {
                return Err(GisError::Storage(format!(
                    "primary key ordinal {pk} out of range"
                )));
            }
        }
        Ok(RowStore {
            name: name.into(),
            schema,
            pk_column,
            rows: Vec::new(),
            primary: BTreeMap::new(),
            secondary: HashMap::new(),
            live: 0,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Declares a secondary index on `column`, indexing existing rows.
    pub fn create_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.len() {
            return Err(GisError::Storage(format!(
                "index column {column} out of range"
            )));
        }
        let mut index: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            if let Some(r) = row {
                index.entry(r[column].clone()).or_default().push(rid);
            }
        }
        self.secondary.insert(column, index);
        Ok(())
    }

    /// True when `column` has a secondary index.
    pub fn has_index(&self, column: usize) -> bool {
        self.secondary.contains_key(&column)
    }

    /// Inserts one row (schema-width values, coercion is the caller's
    /// job). Enforces primary-key uniqueness and non-null.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(GisError::Storage(format!(
                "row width {} does not match schema width {}",
                row.len(),
                self.schema.len()
            )));
        }
        if let Some(pk) = self.pk_column {
            let key = &row[pk];
            if key.is_null() {
                return Err(GisError::Storage(format!(
                    "NULL primary key in table '{}'",
                    self.name
                )));
            }
            if self.primary.contains_key(key) {
                return Err(GisError::Storage(format!(
                    "duplicate primary key {key} in table '{}'",
                    self.name
                )));
            }
        }
        let rid = self.rows.len();
        if let Some(pk) = self.pk_column {
            self.primary.insert(row[pk].clone(), rid);
        }
        for (&col, index) in self.secondary.iter_mut() {
            index.entry(row[col].clone()).or_default().push(rid);
        }
        self.rows.push(Some(row));
        self.live += 1;
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_many(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &Value) -> Option<&[Value]> {
        let rid = *self.primary.get(key)?;
        self.rows[rid].as_deref()
    }

    /// Deletes by primary key; returns whether a row was removed.
    pub fn delete(&mut self, key: &Value) -> Result<bool> {
        let Some(pk) = self.pk_column else {
            return Err(GisError::Storage(format!(
                "table '{}' has no primary key; delete unsupported",
                self.name
            )));
        };
        let Some(rid) = self.primary.remove(key) else {
            return Ok(false);
        };
        let row = self.rows[rid].take().expect("index points at live row");
        debug_assert_eq!(&row[pk], key);
        for (&col, index) in self.secondary.iter_mut() {
            if let Some(rids) = index.get_mut(&row[col]) {
                rids.retain(|&r| r != rid);
                if rids.is_empty() {
                    index.remove(&row[col]);
                }
            }
        }
        self.live -= 1;
        Ok(true)
    }

    /// Replaces the row with primary key `key`; returns whether a row
    /// was updated.
    pub fn update(&mut self, key: &Value, new_row: Vec<Value>) -> Result<bool> {
        if !self.delete(key)? {
            return Ok(false);
        }
        self.insert(new_row)?;
        Ok(true)
    }

    /// Scans the table with native predicates, projecting `projection`
    /// ordinals (empty = all columns), returning at most `limit` rows
    /// (`None` = unbounded). The engine picks the access path itself.
    pub fn scan(
        &self,
        predicates: &[ScanPredicate],
        projection: &[usize],
        limit: Option<usize>,
    ) -> Result<ScanResult> {
        let (candidates, access_path, prechecked) = self.choose_access_path(predicates);
        let limit = limit.unwrap_or(usize::MAX);
        let mut matched: Vec<&Vec<Value>> = Vec::new();
        let mut examined = 0usize;
        for rid in candidates {
            let Some(row) = self.rows[rid].as_ref() else {
                continue;
            };
            examined += 1;
            // The index may have already guaranteed some predicates.
            let needs_check: Vec<ScanPredicate> = predicates
                .iter()
                .enumerate()
                .filter(|(i, _)| !prechecked.contains(i))
                .map(|(_, p)| p.clone())
                .collect();
            if all_match(&needs_check, row) {
                matched.push(row);
                if matched.len() >= limit {
                    break;
                }
            }
        }
        let out_schema = if projection.is_empty() {
            self.schema.clone()
        } else {
            self.schema.project(projection).into_ref()
        };
        let cols: Vec<usize> = if projection.is_empty() {
            (0..self.schema.len()).collect()
        } else {
            projection.to_vec()
        };
        let value_rows: Vec<Vec<Value>> = matched
            .iter()
            .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
            .collect();
        let batch = Batch::from_rows(out_schema, &value_rows)?;
        Ok(ScanResult {
            batch,
            rows_examined: examined,
            access_path,
        })
    }

    /// Chooses the cheapest access path for the given predicates.
    /// Returns (candidate row ids, path, indexes of predicates the
    /// path already guarantees).
    fn choose_access_path(
        &self,
        predicates: &[ScanPredicate],
    ) -> (Vec<usize>, AccessPath, Vec<usize>) {
        // 1. Primary-key equality.
        if let Some(pk) = self.pk_column {
            if let Some((i, p)) = predicates
                .iter()
                .enumerate()
                .find(|(_, p)| p.column == pk && p.op == CmpOp::Eq)
            {
                let rids = self
                    .primary
                    .get(&p.value)
                    .map(|&r| vec![r])
                    .unwrap_or_default();
                return (rids, AccessPath::Primary, vec![i]);
            }
        }
        // 2. Secondary-index equality.
        for (i, p) in predicates.iter().enumerate() {
            if p.op == CmpOp::Eq {
                if let Some(index) = self.secondary.get(&p.column) {
                    let rids = index.get(&p.value).cloned().unwrap_or_default();
                    let name = self.schema.field(p.column).name.clone();
                    return (rids, AccessPath::Secondary(name), vec![i]);
                }
            }
        }
        // 3. Primary-key range.
        if let Some(pk) = self.pk_column {
            let range_preds: Vec<(usize, &ScanPredicate)> = predicates
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.column == pk
                        && matches!(p.op, CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq)
                })
                .collect();
            if !range_preds.is_empty() {
                let (lo, hi) = bounds_of(&range_preds);
                let rids: Vec<usize> = if range_is_empty(&lo, &hi) {
                    vec![]
                } else {
                    self.primary.range((lo, hi)).map(|(_, &rid)| rid).collect()
                };
                let covered = range_preds.iter().map(|(i, _)| *i).collect();
                return (rids, AccessPath::Primary, covered);
            }
        }
        // 4. Secondary-index range.
        for (i, p) in predicates.iter().enumerate() {
            if matches!(p.op, CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq) {
                if let Some(index) = self.secondary.get(&p.column) {
                    let (lo, hi) = bounds_of(&[(i, p)]);
                    let rids: Vec<usize> = if range_is_empty(&lo, &hi) {
                        vec![]
                    } else {
                        index
                            .range((lo, hi))
                            .flat_map(|(_, rids)| rids.iter().copied())
                            .collect()
                    };
                    let name = self.schema.field(p.column).name.clone();
                    return (rids, AccessPath::Secondary(name), vec![i]);
                }
            }
        }
        // 5. Full scan.
        ((0..self.rows.len()).collect(), AccessPath::FullScan, vec![])
    }

    /// Collects fresh statistics over live rows.
    pub fn collect_stats(&self) -> TableStats {
        let mut c = StatsCollector::new(self.schema.len());
        for row in self.rows.iter().flatten() {
            c.observe_row(row);
        }
        c.finish()
    }
}

/// True when a `(lo, hi)` bound pair denotes an empty range (the
/// B-tree `range` API panics on inverted bounds).
fn range_is_empty(lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    let (l, l_excl) = match lo {
        Bound::Unbounded => return false,
        Bound::Included(v) => (v, false),
        Bound::Excluded(v) => (v, true),
    };
    let (h, h_excl) = match hi {
        Bound::Unbounded => return false,
        Bound::Included(v) => (v, false),
        Bound::Excluded(v) => (v, true),
    };
    match l.total_cmp(h) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Equal => l_excl || h_excl,
        std::cmp::Ordering::Less => false,
    }
}

/// Converts conjunctive range predicates over one column into B-tree
/// range bounds.
fn bounds_of(preds: &[(usize, &ScanPredicate)]) -> (Bound<Value>, Bound<Value>) {
    let mut lo = Bound::Unbounded;
    let mut hi = Bound::Unbounded;
    for (_, p) in preds {
        match p.op {
            CmpOp::Gt => lo = tighter_low(lo, Bound::Excluded(p.value.clone())),
            CmpOp::GtEq => lo = tighter_low(lo, Bound::Included(p.value.clone())),
            CmpOp::Lt => hi = tighter_high(hi, Bound::Excluded(p.value.clone())),
            CmpOp::LtEq => hi = tighter_high(hi, Bound::Included(p.value.clone())),
            _ => {}
        }
    }
    (lo, hi)
}

fn tighter_low(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.total_cmp(y) {
                std::cmp::Ordering::Less => b,
                std::cmp::Ordering::Greater => a,
                std::cmp::Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighter_high(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.total_cmp(y) {
                std::cmp::Ordering::Greater => b,
                std::cmp::Ordering::Less => a,
                std::cmp::Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_types::{DataType, Field, Schema};

    fn store() -> RowStore {
        let schema = Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("city", DataType::Utf8),
            Field::new("balance", DataType::Float64),
        ])
        .into_ref();
        let mut s = RowStore::new("customers", schema, Some(0)).unwrap();
        for i in 0..100i64 {
            s.insert(vec![
                Value::Int64(i),
                Value::Utf8(if i % 10 == 0 { "oslo" } else { "pune" }.into()),
                Value::Float64(i as f64 * 1.5),
            ])
            .unwrap();
        }
        s
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut s = store();
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(&Value::Int64(5)).unwrap()[2], Value::Float64(7.5));
        assert!(s.delete(&Value::Int64(5)).unwrap());
        assert!(!s.delete(&Value::Int64(5)).unwrap());
        assert!(s.get(&Value::Int64(5)).is_none());
        assert_eq!(s.len(), 99);
    }

    #[test]
    fn duplicate_and_null_pk_rejected() {
        let mut s = store();
        assert!(s
            .insert(vec![Value::Int64(1), Value::Null, Value::Null])
            .is_err());
        assert!(s
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn pk_point_lookup_examines_one_row() {
        let s = store();
        let r = s
            .scan(
                &[ScanPredicate::new(0, CmpOp::Eq, Value::Int64(42))],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(r.batch.num_rows(), 1);
        assert_eq!(r.rows_examined, 1);
        assert_eq!(r.access_path, AccessPath::Primary);
    }

    #[test]
    fn pk_range_uses_btree() {
        let s = store();
        let r = s
            .scan(
                &[
                    ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(10)),
                    ScanPredicate::new(0, CmpOp::Lt, Value::Int64(20)),
                ],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(r.batch.num_rows(), 10);
        assert_eq!(r.rows_examined, 10);
        assert_eq!(r.access_path, AccessPath::Primary);
    }

    #[test]
    fn secondary_index_equality() {
        let mut s = store();
        s.create_index(1).unwrap();
        let r = s
            .scan(
                &[ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("oslo".into()))],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(r.batch.num_rows(), 10);
        assert_eq!(r.rows_examined, 10);
        assert_eq!(r.access_path, AccessPath::Secondary("city".into()));
    }

    #[test]
    fn full_scan_without_usable_index() {
        let s = store();
        let r = s
            .scan(
                &[ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("oslo".into()))],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(r.batch.num_rows(), 10);
        assert_eq!(r.rows_examined, 100);
        assert_eq!(r.access_path, AccessPath::FullScan);
    }

    #[test]
    fn projection_and_limit() {
        let s = store();
        let r = s.scan(&[], &[2, 0], Some(5)).unwrap();
        assert_eq!(r.batch.num_rows(), 5);
        assert_eq!(r.batch.num_columns(), 2);
        assert_eq!(r.batch.schema().field(0).name, "balance");
    }

    #[test]
    fn update_replaces_and_reindexes() {
        let mut s = store();
        s.create_index(1).unwrap();
        assert!(s
            .update(
                &Value::Int64(3),
                vec![
                    Value::Int64(3),
                    Value::Utf8("oslo".into()),
                    Value::Float64(0.0)
                ],
            )
            .unwrap());
        let r = s
            .scan(
                &[ScanPredicate::new(1, CmpOp::Eq, Value::Utf8("oslo".into()))],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(r.batch.num_rows(), 11);
        assert!(!s
            .update(
                &Value::Int64(999),
                vec![Value::Int64(999), Value::Null, Value::Null]
            )
            .unwrap());
    }

    #[test]
    fn deleted_rows_skipped_by_scan() {
        let mut s = store();
        s.delete(&Value::Int64(0)).unwrap();
        let r = s.scan(&[], &[], None).unwrap();
        assert_eq!(r.batch.num_rows(), 99);
    }

    #[test]
    fn stats_reflect_live_rows() {
        let mut s = store();
        s.delete(&Value::Int64(99)).unwrap();
        let stats = s.collect_stats();
        assert_eq!(stats.row_count, 99);
        assert_eq!(stats.columns[0].max, Some(Value::Int64(98)));
        assert!(stats.columns[1].ndv <= 2);
    }

    #[test]
    fn conflicting_range_is_empty() {
        let s = store();
        let r = s
            .scan(
                &[
                    ScanPredicate::new(0, CmpOp::Gt, Value::Int64(50)),
                    ScanPredicate::new(0, CmpOp::Lt, Value::Int64(10)),
                ],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(r.batch.num_rows(), 0);
    }
}
