//! The column store: an analytics-style component engine.
//!
//! Data is append-only and organized as *segments* of up to
//! `segment_rows` rows; within a segment each column is stored in one
//! of three encodings chosen automatically:
//!
//! * **Plain** — the raw array,
//! * **RLE** — run-length (wins on sorted / low-churn columns),
//! * **Dict** — dictionary (wins on low-cardinality strings).
//!
//! Every segment keeps a **zone map** (min/max/null-count per column);
//! scans prune whole segments whose zone map refutes a pushed
//! predicate — the mechanism that makes selective pushed filters
//! nearly free on this engine, which experiment T4 contrasts with the
//! other engines.

use crate::predicate::ScanPredicate;
use crate::stats::{StatsCollector, TableStats};
use gis_stats::SampleSpec;
use gis_types::{Array, ArrayBuilder, Batch, DataType, GisError, Result, SchemaRef, Value};

/// Default rows per segment.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// One encoded column within a segment.
#[derive(Debug, Clone)]
enum ColumnChunk {
    /// Uncompressed array.
    Plain(Array),
    /// Run-length encoded: (value, run length) pairs.
    Rle {
        dtype: DataType,
        runs: Vec<(Value, u32)>,
        len: usize,
    },
    /// Dictionary encoded: codes index into `dict`; `u32::MAX` = NULL.
    Dict {
        dtype: DataType,
        dict: Vec<Value>,
        codes: Vec<u32>,
    },
}

impl ColumnChunk {
    /// Decodes back to a plain array.
    fn decode(&self) -> Result<Array> {
        match self {
            ColumnChunk::Plain(a) => Ok(a.clone()),
            ColumnChunk::Rle { dtype, runs, len } => {
                let mut b = ArrayBuilder::with_capacity(*dtype, *len);
                for (v, n) in runs {
                    for _ in 0..*n {
                        b.push_value(v)?;
                    }
                }
                Ok(b.finish())
            }
            ColumnChunk::Dict { dtype, dict, codes } => {
                let mut b = ArrayBuilder::with_capacity(*dtype, codes.len());
                for &c in codes {
                    if c == u32::MAX {
                        b.push_null();
                    } else {
                        b.push_value(&dict[c as usize])?;
                    }
                }
                Ok(b.finish())
            }
        }
    }

    /// The encoding name (exposed in engine metrics / tests).
    fn encoding(&self) -> &'static str {
        match self {
            ColumnChunk::Plain(_) => "plain",
            ColumnChunk::Rle { .. } => "rle",
            ColumnChunk::Dict { .. } => "dict",
        }
    }

    /// Approximate in-memory footprint used to pick an encoding.
    fn size_score(&self) -> usize {
        match self {
            ColumnChunk::Plain(a) => a.wire_size(),
            ColumnChunk::Rle { runs, .. } => runs.iter().map(|(v, _)| v.wire_size() + 4).sum(),
            ColumnChunk::Dict { dict, codes, .. } => {
                dict.iter().map(Value::wire_size).sum::<usize>() + codes.len() * 4
            }
        }
    }
}

/// Encodes an array, choosing the smallest of the three encodings.
fn encode_column(array: &Array) -> Result<ColumnChunk> {
    let plain = ColumnChunk::Plain(array.clone());
    // Build RLE.
    let mut runs: Vec<(Value, u32)> = Vec::new();
    for i in 0..array.len() {
        let v = array.value_at(i);
        match runs.last_mut() {
            Some((last, n)) if *last == v && !v.is_null() || (last.is_null() && v.is_null()) => {
                *n += 1
            }
            _ => runs.push((v, 1)),
        }
    }
    let rle = ColumnChunk::Rle {
        dtype: array.data_type(),
        runs,
        len: array.len(),
    };
    // Build dictionary (worth it only for low cardinality).
    let mut dict: Vec<Value> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(array.len());
    let mut ok = true;
    for i in 0..array.len() {
        let v = array.value_at(i);
        if v.is_null() {
            codes.push(u32::MAX);
            continue;
        }
        match dict.iter().position(|d| *d == v) {
            Some(p) => codes.push(p as u32),
            None => {
                if dict.len() >= 1024 {
                    ok = false;
                    break;
                }
                dict.push(v);
                codes.push((dict.len() - 1) as u32);
            }
        }
    }
    let mut candidates = vec![plain, rle];
    if ok {
        candidates.push(ColumnChunk::Dict {
            dtype: array.data_type(),
            dict,
            codes,
        });
    }
    candidates
        .into_iter()
        .min_by_key(ColumnChunk::size_score)
        .ok_or_else(|| GisError::Internal("no encoding candidates".into()))
}

/// Zone-map entry for one column of one segment.
#[derive(Debug, Clone)]
struct ZoneEntry {
    min: Value,
    max: Value,
    null_count: usize,
}

/// One immutable segment.
#[derive(Debug)]
struct Segment {
    chunks: Vec<ColumnChunk>,
    zones: Vec<ZoneEntry>,
    rows: usize,
}

/// Scan counters exposed for experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ColumnScanMetrics {
    /// Segments whose zone maps refuted the predicates.
    pub segments_pruned: usize,
    /// Segments actually decoded and scanned.
    pub segments_scanned: usize,
    /// Rows examined after pruning.
    pub rows_examined: usize,
}

/// An append-only, compressed, zone-mapped column store.
#[derive(Debug)]
pub struct ColumnStore {
    name: String,
    schema: SchemaRef,
    segments: Vec<Segment>,
    /// Rows buffered but not yet sealed into a segment.
    buffer: Vec<Vec<Value>>,
    segment_rows: usize,
    rows: usize,
}

impl ColumnStore {
    /// An empty store with the default segment size.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Self {
        ColumnStore::with_segment_rows(name, schema, DEFAULT_SEGMENT_ROWS)
    }

    /// An empty store with a custom segment size (tests use small
    /// segments to exercise pruning).
    pub fn with_segment_rows(
        name: impl Into<String>,
        schema: SchemaRef,
        segment_rows: usize,
    ) -> Self {
        ColumnStore {
            name: name.into(),
            schema,
            segments: Vec::new(),
            buffer: Vec::new(),
            segment_rows: segment_rows.max(1),
            rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Total rows (sealed + buffered).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Appends one row.
    pub fn append(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(GisError::Storage(format!(
                "row width {} does not match schema width {}",
                row.len(),
                self.schema.len()
            )));
        }
        self.buffer.push(row);
        self.rows += 1;
        if self.buffer.len() >= self.segment_rows {
            self.seal()?;
        }
        Ok(())
    }

    /// Appends many rows.
    pub fn append_many(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut n = 0;
        for r in rows {
            self.append(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Seals the buffer into an immutable segment.
    pub fn seal(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buffer);
        let batch = Batch::from_rows(self.schema.clone(), &rows)?;
        let mut chunks = Vec::with_capacity(self.schema.len());
        let mut zones = Vec::with_capacity(self.schema.len());
        for c in 0..self.schema.len() {
            let array = batch.column(c);
            chunks.push(encode_column(array)?);
            let mut min = Value::Null;
            let mut max = Value::Null;
            let mut nulls = 0;
            for i in 0..array.len() {
                let v = array.value_at(i);
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                if min.is_null() || v.total_cmp(&min).is_lt() {
                    min = v.clone();
                }
                if max.is_null() || v.total_cmp(&max).is_gt() {
                    max = v.clone();
                }
            }
            zones.push(ZoneEntry {
                min,
                max,
                null_count: nulls,
            });
        }
        self.segments.push(Segment {
            chunks,
            zones,
            rows: batch.num_rows(),
        });
        Ok(())
    }

    /// The encodings chosen for segment `seg` (test/metrics hook).
    pub fn segment_encodings(&self, seg: usize) -> Vec<&'static str> {
        self.segments[seg]
            .chunks
            .iter()
            .map(ColumnChunk::encoding)
            .collect()
    }

    /// Rows appended but not yet sealed into a segment. A scan only
    /// sees sealed segments, so callers holding shared access seal
    /// first when this is non-zero.
    pub fn unsealed_rows(&self) -> usize {
        self.buffer.len()
    }

    /// Scans with native predicates and projection; seals the buffer
    /// first so results are complete. Returns matching rows and scan
    /// metrics (pruning effectiveness).
    pub fn scan(
        &mut self,
        predicates: &[ScanPredicate],
        projection: &[usize],
        limit: Option<usize>,
    ) -> Result<(Batch, ColumnScanMetrics)> {
        self.seal()?;
        self.scan_sealed(predicates, projection, limit)
    }

    /// The read-only scan over sealed segments. Rows still in the
    /// append buffer are invisible — use [`ColumnStore::scan`] or
    /// seal explicitly when [`ColumnStore::unsealed_rows`] is
    /// non-zero. Shared access means concurrent scans over one store
    /// run in parallel.
    pub fn scan_sealed(
        &self,
        predicates: &[ScanPredicate],
        projection: &[usize],
        limit: Option<usize>,
    ) -> Result<(Batch, ColumnScanMetrics)> {
        let cols: Vec<usize> = if projection.is_empty() {
            (0..self.schema.len()).collect()
        } else {
            projection.to_vec()
        };
        for &c in &cols {
            if c >= self.schema.len() {
                return Err(GisError::Storage(format!(
                    "projection ordinal {c} out of range"
                )));
            }
        }
        let out_schema = if projection.is_empty() {
            self.schema.clone()
        } else {
            self.schema.project(projection).into_ref()
        };
        let mut metrics = ColumnScanMetrics::default();
        let limit = limit.unwrap_or(usize::MAX);
        let mut parts: Vec<Batch> = Vec::new();
        let mut emitted = 0usize;
        for seg in &self.segments {
            if emitted >= limit {
                break;
            }
            // Zone-map pruning.
            let refuted = predicates.iter().any(|p| {
                let z = &seg.zones[p.column];
                // A segment that is entirely NULL in the predicate
                // column can never match.
                if z.null_count == seg.rows {
                    return true;
                }
                !p.op.range_may_match(&z.min, &z.max, &p.value)
            });
            if refuted {
                metrics.segments_pruned += 1;
                continue;
            }
            metrics.segments_scanned += 1;
            metrics.rows_examined += seg.rows;
            // Decode only the columns the scan touches.
            let needed: Vec<usize> = {
                let mut n: Vec<usize> = cols.clone();
                n.extend(predicates.iter().map(|p| p.column));
                n.sort_unstable();
                n.dedup();
                n
            };
            let mut decoded: Vec<Option<Array>> = vec![None; self.schema.len()];
            for &c in &needed {
                decoded[c] = Some(seg.chunks[c].decode()?);
            }
            // Vectorized predicate evaluation over the segment.
            let mut keep = vec![true; seg.rows];
            for p in predicates {
                let arr = decoded[p.column].as_ref().expect("decoded");
                for (i, k) in keep.iter_mut().enumerate() {
                    if *k {
                        *k = p.op.eval(&arr.value_at(i), &p.value).unwrap_or(false);
                    }
                }
            }
            let out_cols: Vec<Array> = cols
                .iter()
                .map(|&c| decoded[c].as_ref().expect("decoded").filter(&keep))
                .collect();
            let mut part = Batch::try_new(out_schema.clone(), out_cols)?;
            if emitted + part.num_rows() > limit {
                part = part.slice(0, limit - emitted);
            }
            emitted += part.num_rows();
            if part.num_rows() > 0 {
                parts.push(part);
            }
        }
        let batch = Batch::concat(out_schema, &parts)?;
        Ok((batch, metrics))
    }

    /// Collects fresh statistics (seals first).
    pub fn collect_stats(&mut self) -> Result<TableStats> {
        self.seal()?;
        let mut c = StatsCollector::new(self.schema.len());
        for seg in &self.segments {
            let arrays: Vec<Array> = seg
                .chunks
                .iter()
                .map(ColumnChunk::decode)
                .collect::<Result<_>>()?;
            let batch = Batch::try_new(self.schema.clone(), arrays)?;
            c.observe_batch(&batch);
        }
        Ok(c.finish())
    }

    /// Collects statistics from a page sample: whole segments are the
    /// unit a column store reads anyway, so the sample decodes every
    /// `stride`-th segment and extrapolates to the full row count.
    pub fn collect_stats_sampled(&mut self, spec: &SampleSpec) -> Result<TableStats> {
        self.seal()?;
        let total = self.len() as u64;
        let stride = spec.stride(total) as usize;
        if stride <= 1 {
            return self.collect_stats();
        }
        let offset = (spec.seed as usize) % stride;
        let mut c = StatsCollector::with_seed(self.schema.len(), spec.seed);
        for seg in self.segments.iter().skip(offset).step_by(stride) {
            let arrays: Vec<Array> = seg
                .chunks
                .iter()
                .map(ColumnChunk::decode)
                .collect::<Result<_>>()?;
            let batch = Batch::try_new(self.schema.clone(), arrays)?;
            c.observe_batch(&batch);
        }
        Ok(c.finish().scaled_to(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use gis_types::{DataType, Field, Schema};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::required("day", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("amount", DataType::Float64),
        ])
        .into_ref()
    }

    /// 1000 rows, day ascending 0..1000, region in {n,s,e,w},
    /// segments of 100 rows.
    fn store() -> ColumnStore {
        let mut s = ColumnStore::with_segment_rows("sales", schema(), 100);
        let regions = ["n", "s", "e", "w"];
        for i in 0..1000i64 {
            s.append(vec![
                Value::Int64(i),
                Value::Utf8(regions[(i % 4) as usize].into()),
                Value::Float64(i as f64 / 10.0),
            ])
            .unwrap();
        }
        s
    }

    #[test]
    fn append_and_full_scan() {
        let mut s = store();
        let (batch, m) = s.scan(&[], &[], None).unwrap();
        assert_eq!(batch.num_rows(), 1000);
        assert_eq!(m.segments_scanned, 10);
        assert_eq!(m.segments_pruned, 0);
    }

    #[test]
    fn zone_maps_prune_segments() {
        let mut s = store();
        // day in [150, 250): only segments 1 and 2 can match
        let (batch, m) = s
            .scan(
                &[
                    ScanPredicate::new(0, CmpOp::GtEq, Value::Int64(150)),
                    ScanPredicate::new(0, CmpOp::Lt, Value::Int64(250)),
                ],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(batch.num_rows(), 100);
        assert_eq!(m.segments_scanned, 2);
        assert_eq!(m.segments_pruned, 8);
        assert_eq!(m.rows_examined, 200);
    }

    #[test]
    fn equality_prunes_to_single_segment() {
        let mut s = store();
        let (batch, m) = s
            .scan(
                &[ScanPredicate::new(0, CmpOp::Eq, Value::Int64(555))],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(m.segments_scanned, 1);
    }

    #[test]
    fn sorted_int_column_uses_rle_or_plain_and_strings_dict() {
        let mut s = store();
        s.seal().unwrap();
        let encodings = s.segment_encodings(0);
        // region has 4 distinct values over 100 rows: dict must win
        assert_eq!(encodings[1], "dict");
    }

    #[test]
    fn constant_column_uses_rle() {
        let mut s = ColumnStore::with_segment_rows(
            "t",
            Schema::new(vec![Field::new("c", DataType::Int64)]).into_ref(),
            100,
        );
        for _ in 0..100 {
            s.append(vec![Value::Int64(7)]).unwrap();
        }
        s.seal().unwrap();
        assert_eq!(s.segment_encodings(0), vec!["rle"]);
        let (batch, _) = s.scan(&[], &[], None).unwrap();
        assert_eq!(batch.num_rows(), 100);
        assert!(batch.column(0).iter_values().all(|v| v == Value::Int64(7)));
    }

    #[test]
    fn nulls_roundtrip_through_encodings() {
        let mut s = ColumnStore::with_segment_rows(
            "t",
            Schema::new(vec![Field::new("c", DataType::Utf8)]).into_ref(),
            10,
        );
        for i in 0..10 {
            s.append(vec![if i % 2 == 0 {
                Value::Null
            } else {
                Value::Utf8("x".into())
            }])
            .unwrap();
        }
        let (batch, _) = s.scan(&[], &[], None).unwrap();
        assert_eq!(batch.column(0).null_count(), 5);
    }

    #[test]
    fn all_null_segment_pruned_for_any_predicate() {
        let mut s = ColumnStore::with_segment_rows(
            "t",
            Schema::new(vec![Field::new("c", DataType::Int64)]).into_ref(),
            10,
        );
        for _ in 0..10 {
            s.append(vec![Value::Null]).unwrap();
        }
        let (batch, m) = s
            .scan(
                &[ScanPredicate::new(0, CmpOp::Eq, Value::Int64(1))],
                &[],
                None,
            )
            .unwrap();
        assert_eq!(batch.num_rows(), 0);
        assert_eq!(m.segments_pruned, 1);
    }

    #[test]
    fn projection_and_limit() {
        let mut s = store();
        let (batch, _) = s.scan(&[], &[1], Some(42)).unwrap();
        assert_eq!(batch.num_rows(), 42);
        assert_eq!(batch.num_columns(), 1);
        assert_eq!(batch.schema().field(0).name, "region");
    }

    #[test]
    fn buffered_rows_visible_to_scan() {
        let mut s = ColumnStore::with_segment_rows("t", schema(), 1000);
        s.append(vec![
            Value::Int64(1),
            Value::Utf8("n".into()),
            Value::Float64(0.1),
        ])
        .unwrap();
        // Not sealed yet (segment_rows = 1000), scan must still see it.
        let (batch, _) = s.scan(&[], &[], None).unwrap();
        assert_eq!(batch.num_rows(), 1);
    }

    #[test]
    fn stats_collection() {
        let mut s = store();
        let stats = s.collect_stats().unwrap();
        assert_eq!(stats.row_count, 1000);
        assert_eq!(stats.columns[0].min, Some(Value::Int64(0)));
        assert_eq!(stats.columns[0].max, Some(Value::Int64(999)));
        assert!(stats.columns[1].ndv <= 4);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut s = store();
        assert!(s.append(vec![Value::Int64(1)]).is_err());
    }
}
