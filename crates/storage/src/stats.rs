//! Table and column statistics.
//!
//! Collected by each engine on demand and exported through the
//! adapters — at registration time or whenever the mediator issues an
//! `ANALYZE` over the priced wire. The mediator's optimizer never
//! sees the data itself, only these summaries, exactly the situation
//! a real federation is in. Collection is single-pass and bounded:
//! NDV comes from a HyperLogLog sketch, while a deterministic
//! reservoir sample feeds the equi-depth histogram and
//! most-common-value list each column carries.

use gis_stats::{histogram, Histogram, Hll, McvList, Reservoir};
use gis_types::{Batch, Value};

/// Reservoir capacity per column: enough for 64 well-filled buckets
/// and stable MCV frequencies, small enough to ship and hold per scan.
const SAMPLE_CAPACITY: usize = 8192;

/// Summary of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value seen.
    pub min: Option<Value>,
    /// Largest non-null value seen.
    pub max: Option<Value>,
    /// Number of NULL slots.
    pub null_count: u64,
    /// Estimated number of distinct non-null values.
    pub ndv: u64,
    /// Mean wire size of a value in bytes.
    pub avg_width: f64,
    /// Equi-depth histogram over the non-null values, when the column
    /// had enough of them to describe a range.
    pub histogram: Option<Histogram>,
    /// Most-common values with frequency fractions, when the column
    /// is skewed enough for any value to beat the uniform assumption.
    pub mcv: Option<McvList>,
}

impl ColumnStats {
    /// Stats of an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            min: None,
            max: None,
            null_count: 0,
            ndv: 0,
            avg_width: 0.0,
            histogram: None,
            mcv: None,
        }
    }

    /// Fraction of rows that are NULL, given the table's row count.
    pub fn null_frac(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            (self.null_count as f64 / row_count as f64).clamp(0.0, 1.0)
        }
    }
}

/// Summary of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats of an empty table with `width` columns.
    pub fn empty(width: usize) -> Self {
        TableStats {
            row_count: 0,
            columns: vec![ColumnStats::empty(); width],
        }
    }

    /// Mean wire size of a whole row.
    pub fn avg_row_width(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_width).sum()
    }

    /// Extrapolates stats collected from a sample up to a table of
    /// `total_rows`: counts scale linearly; NDV scales only when the
    /// sample looked near-unique (a low-cardinality column's NDV is
    /// already fully observed in any decent sample); histograms and
    /// MCV fractions are shape statistics and carry over unchanged.
    pub fn scaled_to(&self, total_rows: u64) -> TableStats {
        if self.row_count == 0 || total_rows <= self.row_count {
            return self.clone();
        }
        let ratio = total_rows as f64 / self.row_count as f64;
        TableStats {
            row_count: total_rows,
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let non_null = self.row_count.saturating_sub(c.null_count);
                    let scaled_ndv = if c.ndv as f64 >= 0.5 * non_null as f64 {
                        (c.ndv as f64 * ratio).round() as u64
                    } else {
                        c.ndv
                    };
                    let null_count = (c.null_count as f64 * ratio).round() as u64;
                    ColumnStats {
                        min: c.min.clone(),
                        max: c.max.clone(),
                        null_count: null_count.min(total_rows),
                        ndv: scaled_ndv.min(total_rows.saturating_sub(null_count)),
                        avg_width: c.avg_width,
                        histogram: c.histogram.clone(),
                        mcv: c.mcv.clone(),
                    }
                })
                .collect(),
        }
    }
}

/// Single-pass statistics collector.
#[derive(Debug)]
pub struct StatsCollector {
    rows: u64,
    columns: Vec<ColumnCollector>,
}

#[derive(Debug)]
struct ColumnCollector {
    min: Option<Value>,
    max: Option<Value>,
    nulls: u64,
    non_nulls: u64,
    width_sum: u64,
    sketch: Hll,
    sample: Reservoir,
}

impl StatsCollector {
    /// A collector for `width` columns.
    pub fn new(width: usize) -> Self {
        StatsCollector::with_seed(width, 0)
    }

    /// A collector whose reservoir sampling is seeded with `seed`
    /// (ANALYZE passes its spec seed through so repeated collections
    /// are reproducible).
    pub fn with_seed(width: usize, seed: u64) -> Self {
        StatsCollector {
            rows: 0,
            columns: (0..width)
                .map(|c| ColumnCollector {
                    min: None,
                    max: None,
                    nulls: 0,
                    non_nulls: 0,
                    width_sum: 0,
                    sketch: Hll::default_precision(),
                    sample: Reservoir::new(SAMPLE_CAPACITY, seed ^ (c as u64).wrapping_mul(0xA5)),
                })
                .collect(),
        }
    }

    /// Observes every row of a batch.
    pub fn observe_batch(&mut self, batch: &Batch) {
        self.rows += batch.num_rows() as u64;
        for (c, col) in self.columns.iter_mut().enumerate() {
            let array = batch.column(c);
            for i in 0..array.len() {
                let v = array.value_at(i);
                col.observe(&v);
            }
        }
    }

    /// Observes one materialized row.
    pub fn observe_row(&mut self, row: &[Value]) {
        self.rows += 1;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.observe(v);
        }
    }

    /// Finalizes into [`TableStats`].
    pub fn finish(self) -> TableStats {
        TableStats {
            row_count: self.rows,
            columns: self
                .columns
                .into_iter()
                .map(|c| {
                    let avg_width = if c.non_nulls + c.nulls > 0 {
                        c.width_sum as f64 / (c.non_nulls + c.nulls) as f64
                    } else {
                        0.0
                    };
                    let sorted = c.sample.into_sorted();
                    ColumnStats {
                        min: c.min,
                        max: c.max,
                        null_count: c.nulls,
                        ndv: c.sketch.estimate().min(c.non_nulls),
                        avg_width,
                        histogram: Histogram::from_sorted(&sorted, histogram::DEFAULT_BUCKETS),
                        mcv: McvList::from_sorted(&sorted),
                    }
                })
                .collect(),
        }
    }
}

impl ColumnCollector {
    fn observe(&mut self, v: &Value) {
        self.width_sum += v.wire_size() as u64;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.non_nulls += 1;
        match &self.min {
            Some(m) if m.total_cmp(v).is_le() => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v).is_ge() => {}
            _ => self.max = Some(v.clone()),
        }
        self.sketch.observe(v);
        self.sample.offer(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_min_max_nulls() {
        let mut c = StatsCollector::new(2);
        c.observe_row(&[Value::Int64(5), Value::Utf8("b".into())]);
        c.observe_row(&[Value::Int64(-1), Value::Null]);
        c.observe_row(&[Value::Int64(3), Value::Utf8("a".into())]);
        let stats = c.finish();
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns[0].min, Some(Value::Int64(-1)));
        assert_eq!(stats.columns[0].max, Some(Value::Int64(5)));
        assert_eq!(stats.columns[0].null_count, 0);
        assert_eq!(stats.columns[1].null_count, 1);
        assert_eq!(stats.columns[1].min, Some(Value::Utf8("a".into())));
        assert!((stats.columns[1].null_frac(3) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ndv_estimate_within_tolerance() {
        let mut c = StatsCollector::new(1);
        for i in 0..1000i64 {
            // 250 distinct values, each seen 4 times
            c.observe_row(&[Value::Int64(i % 250)]);
        }
        let ndv = c.finish().columns[0].ndv;
        assert!(
            (235..=265).contains(&ndv),
            "ndv estimate {ndv} out of tolerance for true 250"
        );
    }

    #[test]
    fn ndv_never_exceeds_non_null_count() {
        let mut c = StatsCollector::new(1);
        c.observe_row(&[Value::Int64(1)]);
        c.observe_row(&[Value::Int64(1)]);
        c.observe_row(&[Value::Null]);
        let stats = c.finish();
        assert!(stats.columns[0].ndv <= 2);
    }

    #[test]
    fn avg_width_tracks_strings() {
        let mut c = StatsCollector::new(1);
        c.observe_row(&[Value::Utf8("ab".into())]); // 4+2 = 6
        c.observe_row(&[Value::Utf8("abcd".into())]); // 4+4 = 8
        let stats = c.finish();
        assert_eq!(stats.columns[0].avg_width, 7.0);
        assert_eq!(stats.avg_row_width(), 7.0);
    }

    #[test]
    fn empty_stats() {
        let stats = StatsCollector::new(3).finish();
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.columns.len(), 3);
        assert_eq!(stats.columns[0].ndv, 0);
        assert!(stats.columns[0].histogram.is_none());
        assert!(stats.columns[0].mcv.is_none());
    }

    #[test]
    fn histogram_and_mcv_materialize() {
        let mut c = StatsCollector::new(2);
        for i in 0..2000i64 {
            // Column 0: uniform 0..2000. Column 1: 50% of rows are 7.
            let skewed = if i % 2 == 0 { 7 } else { i };
            c.observe_row(&[Value::Int64(i), Value::Int64(skewed)]);
        }
        let stats = c.finish();
        let h = stats.columns[0].histogram.as_ref().unwrap();
        let f = h.fraction_below(&Value::Int64(500), false);
        assert!((f - 0.25).abs() < 0.05, "fraction {f}");
        assert!(stats.columns[0].mcv.is_none(), "uniform column has no MCVs");
        let mcv = stats.columns[1].mcv.as_ref().unwrap();
        let f7 = mcv.freq(&Value::Int64(7)).unwrap();
        assert!((f7 - 0.5).abs() < 0.05, "freq {f7}");
    }

    #[test]
    fn scaling_extrapolates_sampled_stats() {
        let mut c = StatsCollector::new(2);
        for i in 0..1000i64 {
            // Column 0 near-unique; column 1 low-cardinality with
            // every 10th row NULL.
            let v1 = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Int64(i % 5)
            };
            c.observe_row(&[Value::Int64(i), v1]);
        }
        let sampled = c.finish();
        let scaled = sampled.scaled_to(100_000);
        assert_eq!(scaled.row_count, 100_000);
        // Near-unique column: NDV scales with the table.
        assert!(
            scaled.columns[0].ndv > 50_000,
            "scaled ndv {}",
            scaled.columns[0].ndv
        );
        // Low-cardinality column: NDV already fully observed.
        assert!(scaled.columns[1].ndv <= 10, "ndv {}", scaled.columns[1].ndv);
        assert_eq!(scaled.columns[1].null_count, 10_000);
        // Shape statistics survive scaling.
        assert_eq!(scaled.columns[0].histogram, sampled.columns[0].histogram);
        // Scaling down (or to the same size) is the identity.
        assert_eq!(sampled.scaled_to(500), sampled);
    }
}
