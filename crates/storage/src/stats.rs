//! Table and column statistics.
//!
//! Collected by each engine on demand and exported through the
//! adapters at *registration time* — the mediator's optimizer never
//! sees the data itself, only these summaries, exactly the situation
//! a real federation is in. NDV is estimated with a small
//! linear-counting sketch so collection stays single-pass.

use gis_types::{Batch, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Summary of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value seen.
    pub min: Option<Value>,
    /// Largest non-null value seen.
    pub max: Option<Value>,
    /// Number of NULL slots.
    pub null_count: u64,
    /// Estimated number of distinct non-null values.
    pub ndv: u64,
    /// Mean wire size of a value in bytes.
    pub avg_width: f64,
}

impl ColumnStats {
    /// Stats of an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            min: None,
            max: None,
            null_count: 0,
            ndv: 0,
            avg_width: 0.0,
        }
    }
}

/// Summary of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats of an empty table with `width` columns.
    pub fn empty(width: usize) -> Self {
        TableStats {
            row_count: 0,
            columns: vec![ColumnStats::empty(); width],
        }
    }

    /// Mean wire size of a whole row.
    pub fn avg_row_width(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_width).sum()
    }
}

/// Single-pass statistics collector.
#[derive(Debug)]
pub struct StatsCollector {
    rows: u64,
    columns: Vec<ColumnCollector>,
}

#[derive(Debug)]
struct ColumnCollector {
    min: Option<Value>,
    max: Option<Value>,
    nulls: u64,
    non_nulls: u64,
    width_sum: u64,
    sketch: LinearCounter,
}

impl StatsCollector {
    /// A collector for `width` columns.
    pub fn new(width: usize) -> Self {
        StatsCollector {
            rows: 0,
            columns: (0..width)
                .map(|_| ColumnCollector {
                    min: None,
                    max: None,
                    nulls: 0,
                    non_nulls: 0,
                    width_sum: 0,
                    sketch: LinearCounter::new(4096),
                })
                .collect(),
        }
    }

    /// Observes every row of a batch.
    pub fn observe_batch(&mut self, batch: &Batch) {
        self.rows += batch.num_rows() as u64;
        for (c, col) in self.columns.iter_mut().enumerate() {
            let array = batch.column(c);
            for i in 0..array.len() {
                let v = array.value_at(i);
                col.observe(&v);
            }
        }
    }

    /// Observes one materialized row.
    pub fn observe_row(&mut self, row: &[Value]) {
        self.rows += 1;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.observe(v);
        }
    }

    /// Finalizes into [`TableStats`].
    pub fn finish(self) -> TableStats {
        TableStats {
            row_count: self.rows,
            columns: self
                .columns
                .into_iter()
                .map(|c| {
                    let avg_width = if c.non_nulls + c.nulls > 0 {
                        c.width_sum as f64 / (c.non_nulls + c.nulls) as f64
                    } else {
                        0.0
                    };
                    ColumnStats {
                        min: c.min,
                        max: c.max,
                        null_count: c.nulls,
                        ndv: c.sketch.estimate().min(c.non_nulls),
                        avg_width,
                    }
                })
                .collect(),
        }
    }
}

impl ColumnCollector {
    fn observe(&mut self, v: &Value) {
        self.width_sum += v.wire_size() as u64;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.non_nulls += 1;
        match &self.min {
            Some(m) if m.total_cmp(v).is_le() => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v).is_ge() => {}
            _ => self.max = Some(v.clone()),
        }
        self.sketch.observe(v);
    }
}

/// Linear (hit) counting NDV sketch: a bitmap of `m` slots; the
/// estimate is `-m * ln(unset/m)`. Accurate to a few percent for
/// cardinalities up to ~m, which is plenty for join-order decisions.
#[derive(Debug)]
struct LinearCounter {
    bits: Vec<u64>,
    m: usize,
}

impl LinearCounter {
    fn new(m: usize) -> Self {
        LinearCounter {
            bits: vec![0u64; m.div_ceil(64)],
            m,
        }
    }

    fn observe(&mut self, v: &Value) {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        let slot = (h.finish() % self.m as u64) as usize;
        self.bits[slot / 64] |= 1 << (slot % 64);
    }

    fn estimate(&self) -> u64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        let unset = self.m as f64 - set as f64;
        if unset <= 0.5 {
            // Sketch saturated; report its ceiling.
            return self.m as u64 * 8;
        }
        (-(self.m as f64) * (unset / self.m as f64).ln()).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_min_max_nulls() {
        let mut c = StatsCollector::new(2);
        c.observe_row(&[Value::Int64(5), Value::Utf8("b".into())]);
        c.observe_row(&[Value::Int64(-1), Value::Null]);
        c.observe_row(&[Value::Int64(3), Value::Utf8("a".into())]);
        let stats = c.finish();
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns[0].min, Some(Value::Int64(-1)));
        assert_eq!(stats.columns[0].max, Some(Value::Int64(5)));
        assert_eq!(stats.columns[0].null_count, 0);
        assert_eq!(stats.columns[1].null_count, 1);
        assert_eq!(stats.columns[1].min, Some(Value::Utf8("a".into())));
    }

    #[test]
    fn ndv_estimate_within_tolerance() {
        let mut c = StatsCollector::new(1);
        for i in 0..1000i64 {
            // 250 distinct values, each seen 4 times
            c.observe_row(&[Value::Int64(i % 250)]);
        }
        let ndv = c.finish().columns[0].ndv;
        assert!(
            (200..=300).contains(&ndv),
            "ndv estimate {ndv} out of tolerance for true 250"
        );
    }

    #[test]
    fn ndv_never_exceeds_non_null_count() {
        let mut c = StatsCollector::new(1);
        c.observe_row(&[Value::Int64(1)]);
        c.observe_row(&[Value::Int64(1)]);
        c.observe_row(&[Value::Null]);
        let stats = c.finish();
        assert!(stats.columns[0].ndv <= 2);
    }

    #[test]
    fn avg_width_tracks_strings() {
        let mut c = StatsCollector::new(1);
        c.observe_row(&[Value::Utf8("ab".into())]); // 4+2 = 6
        c.observe_row(&[Value::Utf8("abcd".into())]); // 4+4 = 8
        let stats = c.finish();
        assert_eq!(stats.columns[0].avg_width, 7.0);
        assert_eq!(stats.avg_row_width(), 7.0);
    }

    #[test]
    fn empty_stats() {
        let stats = StatsCollector::new(3).finish();
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.columns.len(), 3);
        assert_eq!(stats.columns[0].ndv, 0);
    }
}
