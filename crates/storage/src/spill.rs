//! Spill files: the temp-file format hash kernels degrade into.
//!
//! When a kernel exceeds its memory budget it radix-partitions its
//! key tags to disk and processes one partition at a time. A spill
//! file is a flat sequence of fixed-width little-endian records —
//! one per input row of the partition — in *input order*, which is
//! what makes spilled execution bit-identical to in-memory
//! execution: replaying a partition's records visits rows in the
//! same relative order the in-memory kernel would have.
//!
//! Two record layouts mirror the two key-tag representations of
//! `gis_core::exec`:
//!
//! * **fixed** — `(u32 row, u128 key)`, 20 bytes: the compact
//!   `gis_types::keys` u128 encoding, self-contained (equality on
//!   the key is equality on the row's group key).
//! * **hashed** — `(u32 row, u64 hash)`, 12 bytes: for wide keys the
//!   file stores only the hash; the kernel re-verifies candidate
//!   matches against the in-memory columns, exactly as the chained
//!   hash tables do.
//!
//! Files are written once, replayed with [`SpillFile::for_each`],
//! and deleted on drop (including half-written files when a writer
//! is dropped without [`SpillWriter::finish`]).

use gis_types::error::{GisError, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One spilled record: the row's index in the kernel's input plus
/// its key tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillRecord {
    /// Compact self-contained u128 key encoding.
    Fixed {
        /// Row index in the kernel's input.
        row: u32,
        /// The row's encoded key.
        key: u128,
    },
    /// Hash-only tag; equality must be re-verified against columns.
    Hashed {
        /// Row index in the kernel's input.
        row: u32,
        /// The row's key hash.
        hash: u64,
    },
}

impl SpillRecord {
    /// The row index of this record.
    pub fn row(&self) -> u32 {
        match self {
            SpillRecord::Fixed { row, .. } | SpillRecord::Hashed { row, .. } => *row,
        }
    }
}

const FIXED_RECORD: usize = 4 + 16;
const HASHED_RECORD: usize = 4 + 8;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(op: &str, path: &Path, e: std::io::Error) -> GisError {
    GisError::Storage(format!("spill {op} {}: {e}", path.display()))
}

/// Allocates a unique spill file path under `dir` (or the OS temp
/// directory when `dir` is `None`).
fn fresh_path(dir: Option<&Path>) -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!("gis-spill-{}-{}.tmp", std::process::id(), seq);
    match dir {
        Some(d) => d.join(name),
        None => std::env::temp_dir().join(name),
    }
}

/// Streaming writer for one spill partition.
#[derive(Debug)]
pub struct SpillWriter {
    out: BufWriter<File>,
    path: PathBuf,
    fixed: bool,
    records: u64,
    bytes: u64,
    finished: bool,
}

impl SpillWriter {
    /// Creates a fresh spill file in `dir` (or the OS temp dir).
    /// `fixed` selects the record layout; a file holds one layout
    /// only.
    pub fn create(dir: Option<&Path>, fixed: bool) -> Result<SpillWriter> {
        let path = fresh_path(dir);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_err("mkdir", parent, e))?;
        }
        let file = File::create(&path).map_err(|e| io_err("create", &path, e))?;
        Ok(SpillWriter {
            out: BufWriter::new(file),
            path,
            fixed,
            records: 0,
            bytes: 0,
            finished: false,
        })
    }

    /// Appends one record. The record layout must match the one the
    /// writer was created with.
    pub fn push(&mut self, record: SpillRecord) -> Result<()> {
        match record {
            SpillRecord::Fixed { row, key } => {
                debug_assert!(self.fixed, "fixed record in hashed spill file");
                self.out
                    .write_all(&row.to_le_bytes())
                    .and_then(|()| self.out.write_all(&key.to_le_bytes()))
                    .map_err(|e| io_err("write", &self.path, e))?;
                self.bytes += FIXED_RECORD as u64;
            }
            SpillRecord::Hashed { row, hash } => {
                debug_assert!(!self.fixed, "hashed record in fixed spill file");
                self.out
                    .write_all(&row.to_le_bytes())
                    .and_then(|()| self.out.write_all(&hash.to_le_bytes()))
                    .map_err(|e| io_err("write", &self.path, e))?;
                self.bytes += HASHED_RECORD as u64;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes and seals the file for replay.
    pub fn finish(mut self) -> Result<SpillFile> {
        self.out
            .flush()
            .map_err(|e| io_err("flush", &self.path, e))?;
        self.finished = true;
        Ok(SpillFile {
            path: std::mem::take(&mut self.path),
            fixed: self.fixed,
            records: self.records,
            bytes: self.bytes,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A sealed spill file, replayable in write order. Deletes itself on
/// drop.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    fixed: bool,
    records: u64,
    bytes: u64,
}

impl SpillFile {
    /// Number of records in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// File size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True when the file holds fixed (self-contained u128) records.
    pub fn is_fixed(&self) -> bool {
        self.fixed
    }

    /// Streams every record, in write order, through `f`. Replay is
    /// buffered; nothing is materialized.
    pub fn for_each(&self, mut f: impl FnMut(SpillRecord) -> Result<()>) -> Result<()> {
        let file = File::open(&self.path).map_err(|e| io_err("open", &self.path, e))?;
        let mut input = BufReader::new(file);
        let record_len = if self.fixed {
            FIXED_RECORD
        } else {
            HASHED_RECORD
        };
        let mut buf = [0u8; FIXED_RECORD];
        for _ in 0..self.records {
            input
                .read_exact(&mut buf[..record_len])
                .map_err(|e| io_err("read", &self.path, e))?;
            let row = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
            let record = if self.fixed {
                let mut key = [0u8; 16];
                key.copy_from_slice(&buf[4..20]);
                SpillRecord::Fixed {
                    row,
                    key: u128::from_le_bytes(key),
                }
            } else {
                let mut hash = [0u8; 8];
                hash.copy_from_slice(&buf[4..12]);
                SpillRecord::Hashed {
                    row,
                    hash: u64::from_le_bytes(hash),
                }
            };
            f(record)?;
        }
        Ok(())
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn fixed_roundtrip_preserves_order() {
        let mut w = SpillWriter::create(None, true).unwrap();
        let records = vec![
            SpillRecord::Fixed { row: 3, key: 7 },
            SpillRecord::Fixed {
                row: 0,
                key: u128::MAX,
            },
            SpillRecord::Fixed { row: 9, key: 0 },
        ];
        for r in &records {
            w.push(*r).unwrap();
        }
        assert_eq!(w.records(), 3);
        let file = w.finish().unwrap();
        assert_eq!(file.bytes(), 60);
        let mut replayed = Vec::new();
        file.for_each(|r| {
            replayed.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn hashed_roundtrip() {
        let mut w = SpillWriter::create(None, false).unwrap();
        w.push(SpillRecord::Hashed {
            row: 42,
            hash: 0xdead_beef_cafe_f00d,
        })
        .unwrap();
        let file = w.finish().unwrap();
        assert_eq!(file.bytes(), 12);
        assert!(!file.is_fixed());
        let mut seen = Vec::new();
        file.for_each(|r| {
            seen.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![SpillRecord::Hashed {
                row: 42,
                hash: 0xdead_beef_cafe_f00d
            }]
        );
    }

    #[test]
    fn files_are_deleted_on_drop() {
        let w = SpillWriter::create(None, true).unwrap();
        let unfinished_path = w.path.clone();
        drop(w);
        assert!(!unfinished_path.exists(), "abandoned writer cleans up");

        let mut w = SpillWriter::create(None, true).unwrap();
        w.push(SpillRecord::Fixed { row: 1, key: 2 }).unwrap();
        let file = w.finish().unwrap();
        let path = file.path.clone();
        assert!(path.exists());
        drop(file);
        assert!(!path.exists(), "sealed file cleans up");
    }

    #[test]
    fn custom_directory_is_respected() {
        let dir = std::env::temp_dir().join(format!("gis-spill-test-{}", std::process::id()));
        let mut w = SpillWriter::create(Some(&dir), true).unwrap();
        w.push(SpillRecord::Fixed { row: 0, key: 1 }).unwrap();
        let file = w.finish().unwrap();
        assert!(file.path.starts_with(&dir));
        drop(file);
        let _ = std::fs::remove_dir(&dir);
    }
}
