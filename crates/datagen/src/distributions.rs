//! Sampling helpers: seeded, dependency-light distributions.

use rand::{Rng, RngExt};

/// A Zipf(α) sampler over `{0, …, n-1}` with a precomputed CDF.
///
/// Skewed access is what makes semijoin/bind-join interesting: a few
/// hot customers own most orders, so key sets are much smaller than
/// row sets.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` items with exponent `alpha` (0 = uniform).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Picks one of `items` uniformly.
pub fn pick<'a, T>(rng: &mut impl Rng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// A deterministic pseudo-name for entity `i` (pronounceable-ish,
/// stable across runs).
pub fn synth_name(prefix: &str, i: u64) -> String {
    const SYL: [&str; 12] = [
        "ka", "ri", "to", "me", "su", "ran", "vel", "dor", "lin", "za", "bu", "nex",
    ];
    let mut n = i;
    let mut s = String::with_capacity(prefix.len() + 8);
    s.push_str(prefix);
    s.push('-');
    for _ in 0..3 {
        s.push_str(SYL[(n % SYL.len() as u64) as usize]);
        n /= SYL.len() as u64;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let s = z.sample(&mut rng);
            assert!(s < 100);
            counts[s] += 1;
        }
        // Head must dominate tail.
        assert!(
            counts[0] > counts[50] * 5,
            "head {} tail {}",
            counts[0],
            counts[50]
        );
        // Everything reachable-ish: at least half the domain seen.
        assert!(counts.iter().filter(|&&c| c > 0).count() > 50);
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "non-uniform bucket: {c}");
        }
    }

    #[test]
    fn names_are_deterministic_and_distinct_enough() {
        assert_eq!(synth_name("cust", 5), synth_name("cust", 5));
        let distinct: std::collections::HashSet<String> =
            (0..1000).map(|i| synth_name("c", i)).collect();
        assert!(distinct.len() > 900);
    }

    #[test]
    fn deterministic_sampling() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
