//! The FedMart federation builder.

use crate::distributions::{pick, synth_name, Zipf};
use gis_adapters::{ColumnarAdapter, KvAdapter, RelationalAdapter, SourceAdapter};
use gis_catalog::{ColumnMapping, TableMapping, Transform};
use gis_core::Federation;
use gis_net::NetworkConditions;
use gis_storage::{ColumnStore, KvStore, RowStore};
use gis_types::{DataType, Field, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Eight sales regions.
pub const REGIONS: [&str; 8] = [
    "north",
    "south",
    "east",
    "west",
    "центр",
    "altiplano",
    "levant",
    "outback",
];

/// Product categories.
pub const CATEGORIES: [&str; 6] = ["grocery", "tools", "media", "apparel", "garden", "toys"];

/// Configuration for the FedMart generator.
#[derive(Debug, Clone)]
pub struct FedMartConfig {
    /// Scale factor: sf=1.0 → 1 000 customers, 10 000 orders,
    /// 200 products, 800 stock entries.
    pub scale: f64,
    /// RNG seed; equal seeds generate identical federations.
    pub seed: u64,
    /// Split `orders` across this many columnar sources
    /// (`sales_p0`, `sales_p1`, …) for the scale-out experiment; 1 =
    /// single `sales` source.
    pub sales_partitions: usize,
    /// Zipf exponent for customer → order skew.
    pub skew: f64,
    /// Network conditions for every source link.
    pub conditions: NetworkConditions,
    /// Column-store segment size.
    pub segment_rows: usize,
    /// Whether to declare a secondary index on `customers.region`.
    pub index_customer_region: bool,
}

impl Default for FedMartConfig {
    fn default() -> Self {
        FedMartConfig {
            scale: 1.0,
            seed: 0xFED_A27,
            sales_partitions: 1,
            skew: 1.1,
            conditions: NetworkConditions::wan(),
            segment_rows: 1024,
            index_customer_region: true,
        }
    }
}

impl FedMartConfig {
    /// A smaller federation for fast unit/integration tests.
    pub fn tiny() -> Self {
        FedMartConfig {
            scale: 0.1,
            ..FedMartConfig::default()
        }
    }

    /// Row counts implied by the scale factor.
    pub fn sizes(&self) -> FedMartSizes {
        let s = self.scale.max(0.01);
        FedMartSizes {
            customers: (1_000.0 * s) as usize,
            orders: (10_000.0 * s) as usize,
            products: (200.0 * s).max(8.0) as usize,
            warehouses: 4,
        }
    }
}

/// Row counts of one FedMart instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedMartSizes {
    /// Customer rows.
    pub customers: usize,
    /// Order rows (across all partitions).
    pub orders: usize,
    /// Product rows.
    pub products: usize,
    /// Warehouses (stock = products × warehouses).
    pub warehouses: usize,
}

/// A built federation plus its configuration.
pub struct FedMart {
    /// The federation, ready for queries.
    pub federation: Federation,
    /// The configuration it was built from.
    pub config: FedMartConfig,
    /// The realized sizes.
    pub sizes: FedMartSizes,
    /// Global names of the orders tables (one per partition).
    pub orders_tables: Vec<String>,
}

impl FedMart {
    /// SQL `FROM` fragment covering all orders partitions
    /// (`orders` or a `UNION ALL` subquery).
    pub fn orders_from_clause(&self) -> String {
        if self.orders_tables.len() == 1 {
            self.orders_tables[0].clone()
        } else {
            let parts: Vec<String> = self
                .orders_tables
                .iter()
                .map(|t| format!("SELECT * FROM {t}"))
                .collect();
            format!("({}) AS orders", parts.join(" UNION ALL "))
        }
    }
}

/// Builds a FedMart federation.
pub fn build_fedmart(config: FedMartConfig) -> Result<FedMart> {
    let sizes = config.sizes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let fed = Federation::new();

    // ---- crm: relational ------------------------------------------------
    let crm = RelationalAdapter::new("crm");
    // Legacy export schema: narrow ids, cents, coded tiers.
    let customers_schema = Schema::new(vec![
        Field::required("cust_no", DataType::Int32),
        Field::new("nm", DataType::Utf8),
        Field::new("region", DataType::Utf8),
        Field::new("tier_code", DataType::Int32),
        Field::new("bal_cents", DataType::Int64),
        Field::new("since", DataType::Date),
    ])
    .into_ref();
    let mut customers = RowStore::new("customers", customers_schema, Some(0))?;
    for i in 0..sizes.customers {
        customers.insert(vec![
            Value::Int32(i as i32),
            Value::Utf8(synth_name("cust", i as u64)),
            Value::Utf8((*pick(&mut rng, &REGIONS)).to_string()),
            Value::Int32(rng.random_range(1..=3)),
            Value::Int64(rng.random_range(-50_000..5_000_000)),
            Value::Date(rng.random_range(7_000..19_000)),
        ])?;
    }
    if config.index_customer_region {
        customers.create_index(2)?;
    }
    crm.add_table(customers);
    let regions_schema = Schema::new(vec![
        Field::required("region", DataType::Utf8),
        Field::new("country", DataType::Utf8),
    ])
    .into_ref();
    let mut regions = RowStore::new("regions", regions_schema, Some(0))?;
    for r in REGIONS {
        regions.insert(vec![
            Value::Utf8(r.to_string()),
            Value::Utf8(synth_name("country", r.len() as u64)),
        ])?;
    }
    crm.add_table(regions);
    fed.add_source(Arc::new(crm) as Arc<dyn SourceAdapter>, config.conditions)?;

    // ---- sales: columnar, possibly partitioned --------------------------
    let parts = config.sales_partitions.max(1);
    let zipf = Zipf::new(sizes.customers.max(1), config.skew);
    let orders_schema = Schema::new(vec![
        Field::required("order_id", DataType::Int64),
        Field::new("cust_id", DataType::Int64),
        Field::new("product_id", DataType::Int64),
        Field::new("order_day", DataType::Date),
        Field::new("quantity", DataType::Int64),
        Field::new("amount", DataType::Float64),
    ])
    .into_ref();
    let mut stores: Vec<ColumnStore> = (0..parts)
        .map(|_| {
            ColumnStore::with_segment_rows("orders", orders_schema.clone(), config.segment_rows)
        })
        .collect();
    for oid in 0..sizes.orders {
        let cust = zipf.sample(&mut rng) as i64;
        let product = rng.random_range(0..sizes.products as i64);
        let qty = rng.random_range(1..20i64);
        let unit = rng.random_range(50..10_000) as f64 / 100.0;
        let row = vec![
            Value::Int64(oid as i64),
            Value::Int64(cust),
            Value::Int64(product),
            Value::Date(rng.random_range(18_000..19_000)),
            Value::Int64(qty),
            Value::Float64(qty as f64 * unit),
        ];
        stores[oid % parts].append(row)?;
    }
    let mut orders_tables = Vec::with_capacity(parts);
    for (p, store) in stores.into_iter().enumerate() {
        let source_name = if parts == 1 {
            "sales".to_string()
        } else {
            format!("sales_p{p}")
        };
        let adapter = ColumnarAdapter::new(&source_name);
        adapter.add_table(store);
        fed.add_source(
            Arc::new(adapter) as Arc<dyn SourceAdapter>,
            config.conditions,
        )?;
        let global = if parts == 1 {
            "orders".to_string()
        } else {
            format!("orders_p{p}")
        };
        fed.add_global_identity(&global, &source_name, "orders")?;
        orders_tables.push(global);
    }

    // ---- inventory: key-value -------------------------------------------
    let inv = KvAdapter::new("inventory");
    let products_schema = Schema::new(vec![
        Field::required("product_id", DataType::Int64),
        Field::new("pname", DataType::Utf8),
        Field::new("category", DataType::Utf8),
        Field::new("price_cents", DataType::Int64),
    ])
    .into_ref();
    let mut products = KvStore::new("products", products_schema, 1)?;
    for p in 0..sizes.products {
        products.put(vec![
            Value::Int64(p as i64),
            Value::Utf8(synth_name("prod", p as u64)),
            Value::Utf8((*pick(&mut rng, &CATEGORIES)).to_string()),
            Value::Int64(rng.random_range(50..10_000)),
        ])?;
    }
    inv.add_table(products);
    let stock_schema = Schema::new(vec![
        Field::required("product_id", DataType::Int64),
        Field::required("warehouse", DataType::Int64),
        Field::new("qty", DataType::Int64),
    ])
    .into_ref();
    let mut stock = KvStore::new("stock", stock_schema, 2)?;
    for p in 0..sizes.products {
        for w in 0..sizes.warehouses {
            stock.put(vec![
                Value::Int64(p as i64),
                Value::Int64(w as i64),
                Value::Int64(rng.random_range(0..500)),
            ])?;
        }
    }
    inv.add_table(stock);
    fed.add_source(Arc::new(inv) as Arc<dyn SourceAdapter>, config.conditions)?;

    // ---- global mappings -------------------------------------------------
    fed.add_global_mapping(TableMapping {
        global_name: "customers".into(),
        source: "crm".into(),
        source_table: "customers".into(),
        columns: vec![
            ColumnMapping {
                global: Field::required("id", DataType::Int64),
                source_column: "cust_no".into(),
                transform: Transform::Cast(DataType::Int64),
            },
            ColumnMapping {
                global: Field::new("name", DataType::Utf8),
                source_column: "nm".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("region", DataType::Utf8),
                source_column: "region".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("tier", DataType::Utf8),
                source_column: "tier_code".into(),
                transform: Transform::ValueMap(vec![
                    (Value::Int32(1), Value::Utf8("bronze".into())),
                    (Value::Int32(2), Value::Utf8("silver".into())),
                    (Value::Int32(3), Value::Utf8("gold".into())),
                ]),
            },
            ColumnMapping {
                global: Field::new("balance", DataType::Float64),
                source_column: "bal_cents".into(),
                transform: Transform::Linear {
                    factor: 0.01,
                    offset: 0.0,
                    to: DataType::Float64,
                },
            },
            ColumnMapping {
                global: Field::new("since", DataType::Date),
                source_column: "since".into(),
                transform: Transform::Identity,
            },
        ],
    })?;
    fed.add_global_identity("regions", "crm", "regions")?;
    fed.add_global_mapping(TableMapping {
        global_name: "products".into(),
        source: "inventory".into(),
        source_table: "products".into(),
        columns: vec![
            ColumnMapping {
                global: Field::required("product_id", DataType::Int64),
                source_column: "product_id".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("pname", DataType::Utf8),
                source_column: "pname".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("category", DataType::Utf8),
                source_column: "category".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("price", DataType::Float64),
                source_column: "price_cents".into(),
                transform: Transform::Linear {
                    factor: 0.01,
                    offset: 0.0,
                    to: DataType::Float64,
                },
            },
        ],
    })?;
    fed.add_global_identity("stock", "inventory", "stock")?;

    Ok(FedMart {
        federation: fed,
        config,
        sizes,
        orders_tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_answers_queries() {
        let fm = build_fedmart(FedMartConfig::tiny()).unwrap();
        let fed = &fm.federation;
        let r = fed.query("SELECT count(*) FROM customers").unwrap();
        assert_eq!(
            r.batch.row_values(0)[0],
            Value::Int64(fm.sizes.customers as i64)
        );
        let r2 = fed.query("SELECT count(*) FROM orders").unwrap();
        assert_eq!(
            r2.batch.row_values(0)[0],
            Value::Int64(fm.sizes.orders as i64)
        );
        let r3 = fed.query("SELECT count(*) FROM stock").unwrap();
        assert_eq!(
            r3.batch.row_values(0)[0],
            Value::Int64((fm.sizes.products * fm.sizes.warehouses) as i64)
        );
    }

    #[test]
    fn deterministic_across_builds() {
        let a = build_fedmart(FedMartConfig::tiny()).unwrap();
        let b = build_fedmart(FedMartConfig::tiny()).unwrap();
        let qa = a
            .federation
            .query("SELECT sum(amount) FROM orders")
            .unwrap();
        let qb = b
            .federation
            .query("SELECT sum(amount) FROM orders")
            .unwrap();
        assert_eq!(qa.batch.row_values(0), qb.batch.row_values(0));
    }

    #[test]
    fn partitioned_orders_union() {
        let fm = build_fedmart(FedMartConfig {
            sales_partitions: 3,
            ..FedMartConfig::tiny()
        })
        .unwrap();
        assert_eq!(fm.orders_tables.len(), 3);
        let sql = format!("SELECT count(*) FROM {}", fm.orders_from_clause());
        let r = fm.federation.query(&sql).unwrap();
        assert_eq!(
            r.batch.row_values(0)[0],
            Value::Int64(fm.sizes.orders as i64)
        );
    }

    #[test]
    fn mapping_exposes_dollars_and_tiers() {
        let fm = build_fedmart(FedMartConfig::tiny()).unwrap();
        let r = fm
            .federation
            .query("SELECT tier, count(*) FROM customers GROUP BY tier ORDER BY tier")
            .unwrap();
        let tiers: Vec<Value> = r.batch.column(0).iter_values().collect();
        assert!(tiers.contains(&Value::Utf8("gold".into())));
        // cross-source join through the mapping
        let r2 = fm
            .federation
            .query(
                "SELECT c.tier, sum(o.amount) FROM customers c \
                 JOIN orders o ON c.id = o.cust_id GROUP BY c.tier",
            )
            .unwrap();
        assert!(r2.batch.num_rows() >= 2);
    }
}
