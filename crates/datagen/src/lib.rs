//! # gis-datagen — deterministic federated workloads
//!
//! **FedMart**: a retail federation spread across three heterogeneous
//! component systems, sized by a scale factor and fully determined by
//! a seed:
//!
//! * `crm` (relational / row store): `customers`, `regions`
//! * `sales` (columnar / scan-only): `orders` (optionally partitioned
//!   across several sources for scale-out experiments)
//! * `inventory` (key-value): `products`, `stock`
//!
//! Global mappings exercise the heterogeneity machinery: customer
//! balances are stored in cents and exposed in dollars (linear
//! transform), customer tiers are stored as integer codes and exposed
//! as strings (value map), ids widen from the CRM's legacy `int32`.
//!
//! Every generator takes an explicit [`rand::SeedableRng`] seed, so
//! experiments are reproducible row-for-row.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod fedmart;

pub use fedmart::{build_fedmart, FedMart, FedMartConfig};
