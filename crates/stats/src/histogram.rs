//! Equi-depth histograms and most-common-value lists.
//!
//! Both are built from a sorted sample (usually a [`crate::Reservoir`]
//! drain). The histogram stores `B+1` bucket boundaries where each
//! bucket holds an equal share of the sampled values — skewed columns
//! naturally get narrow buckets around their dense regions, and heavy
//! hitters surface as repeated boundaries. Frequencies are stored as
//! fractions of the table, so stats scaled up from a sample need no
//! adjustment.

use gis_types::Value;

/// Default number of equi-depth buckets.
pub const DEFAULT_BUCKETS: usize = 64;

/// Cap on MCV entries kept per column.
pub const MAX_MCVS: usize = 16;

/// An equi-depth histogram: `bounds.len() - 1` buckets of equal mass.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket boundaries, ascending. Bucket `i` spans
    /// `[bounds[i], bounds[i+1]]`; repeated boundaries mark heavy
    /// hitters (several buckets' worth of mass at one value).
    pub bounds: Vec<Value>,
}

impl Histogram {
    /// Builds from an ascending-sorted slice of non-null values.
    /// Returns `None` when fewer than two values are available (no
    /// range to describe).
    pub fn from_sorted(values: &[Value], buckets: usize) -> Option<Histogram> {
        let n = values.len();
        if n < 2 {
            return None;
        }
        let b = buckets.clamp(1, n - 1);
        let bounds = (0..=b).map(|i| values[(i * (n - 1)) / b].clone()).collect();
        Some(Histogram { bounds })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Estimated fraction of values strictly below (`inclusive ==
    /// false`) or at-or-below (`inclusive == true`) `v`.
    pub fn fraction_below(&self, v: &Value, inclusive: bool) -> f64 {
        let b = self.buckets();
        if b == 0 {
            return 0.5;
        }
        let mut acc = 0.0f64;
        for i in 0..b {
            let lo = &self.bounds[i];
            let hi = &self.bounds[i + 1];
            if v.total_cmp(lo).is_lt() {
                break;
            }
            let past = if inclusive {
                v.total_cmp(hi).is_ge()
            } else {
                v.total_cmp(hi).is_gt()
            };
            if past {
                acc += 1.0;
                continue;
            }
            acc += bucket_fraction(lo, hi, v, inclusive);
            break;
        }
        (acc / b as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of values inside the (optionally bounded,
    /// optionally inclusive) range. `None` bounds are unbounded.
    pub fn range_fraction(&self, lo: Option<(&Value, bool)>, hi: Option<(&Value, bool)>) -> f64 {
        let upper = match hi {
            Some((v, incl)) => self.fraction_below(v, incl),
            None => 1.0,
        };
        let lower = match lo {
            // Values below the range start: everything < v (or <= v
            // when the bound is exclusive).
            Some((v, incl)) => self.fraction_below(v, !incl),
            None => 0.0,
        };
        (upper - lower).clamp(0.0, 1.0)
    }
}

/// Position of `v` within one bucket, in `[0, 1]`.
fn bucket_fraction(lo: &Value, hi: &Value, v: &Value, inclusive: bool) -> f64 {
    if lo.total_cmp(hi).is_eq() {
        // A heavy-hitter bucket: all mass sits on one value.
        return if inclusive { 1.0 } else { 0.0 };
    }
    match (value_frac(lo), value_frac(hi), value_frac(v)) {
        (Some(flo), Some(fhi), Some(fv)) if fhi > flo => ((fv - flo) / (fhi - flo)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

/// A linearization of a value for within-bucket interpolation.
fn value_frac(v: &Value) -> Option<f64> {
    if let Ok(Some(f)) = v.as_f64() {
        return Some(f);
    }
    if let Value::Utf8(s) = v {
        // First eight bytes, big-endian: enough resolution to place a
        // string between two bucket boundaries.
        let mut buf = [0u8; 8];
        for (i, b) in s.as_bytes().iter().take(8).enumerate() {
            buf[i] = *b;
        }
        return Some(u64::from_be_bytes(buf) as f64);
    }
    None
}

/// Most-common values of a column with their frequency fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct McvList {
    /// `(value, fraction_of_rows)` pairs, most frequent first.
    pub entries: Vec<(Value, f64)>,
}

impl McvList {
    /// Extracts heavy hitters from an ascending-sorted sample of
    /// non-null values: values appearing at least twice and clearly
    /// above the uniform expectation, capped at [`MAX_MCVS`].
    /// Returns `None` when nothing qualifies.
    pub fn from_sorted(values: &[Value]) -> Option<McvList> {
        let n = values.len();
        if n < 2 {
            return None;
        }
        let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
        let mut start = 0usize;
        for i in 1..=n {
            if i == n || values[i].total_cmp(&values[start]).is_ne() {
                runs.push((start, i - start));
                start = i;
            }
        }
        let distinct = runs.len().max(1);
        // "Common" means beating the uniform share by 1.5x — below
        // that, 1/NDV is already the right answer.
        let threshold = ((n as f64 / distinct as f64) * 1.5).max(2.0);
        let mut hitters: Vec<(usize, usize)> = runs
            .into_iter()
            .filter(|&(_, len)| len as f64 >= threshold && len >= 2)
            .collect();
        if hitters.is_empty() {
            return None;
        }
        hitters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hitters.truncate(MAX_MCVS);
        Some(McvList {
            entries: hitters
                .into_iter()
                .map(|(s, len)| (values[s].clone(), len as f64 / n as f64))
                .collect(),
        })
    }

    /// Frequency fraction of `v`, if it is a recorded common value.
    pub fn freq(&self, v: &Value) -> Option<f64> {
        self.entries
            .iter()
            .find(|(mv, _)| mv.total_cmp(v).is_eq())
            .map(|&(_, f)| f)
    }

    /// Total fraction of rows covered by the recorded common values.
    pub fn total_freq(&self) -> f64 {
        self.entries.iter().map(|&(_, f)| f).sum()
    }

    /// Number of recorded common values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no common values are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: impl IntoIterator<Item = i64>) -> Vec<Value> {
        vals.into_iter().map(Value::Int64).collect()
    }

    #[test]
    fn uniform_histogram_interpolates_linearly() {
        let vals = ints(0..1000);
        let h = Histogram::from_sorted(&vals, 64).unwrap();
        assert_eq!(h.buckets(), 64);
        let f = h.fraction_below(&Value::Int64(250), false);
        assert!((f - 0.25).abs() < 0.03, "fraction {f}");
        assert_eq!(h.fraction_below(&Value::Int64(-5), false), 0.0);
        assert_eq!(h.fraction_below(&Value::Int64(5000), true), 1.0);
    }

    #[test]
    fn range_fraction_brackets() {
        let vals = ints(0..1000);
        let h = Histogram::from_sorted(&vals, 64).unwrap();
        let f = h.range_fraction(
            Some((&Value::Int64(100), true)),
            Some((&Value::Int64(200), false)),
        );
        assert!((f - 0.10).abs() < 0.03, "fraction {f}");
        assert!((h.range_fraction(None, None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_concentrates_buckets() {
        // 90% of mass at 0, the rest spread over 1..=1000.
        let mut vals = vec![0i64; 900];
        vals.extend(1..=100);
        let vals = ints(vals);
        let h = Histogram::from_sorted(&vals, 64).unwrap();
        // Nearly all buckets collapse onto the heavy value, so the
        // mass at-or-below zero is ~0.9.
        let f = h.fraction_below(&Value::Int64(0), true);
        assert!(f > 0.8, "fraction {f}");
        let strict = h.fraction_below(&Value::Int64(0), false);
        assert!(strict < 0.1, "strict fraction {strict}");
    }

    #[test]
    fn string_buckets_interpolate() {
        let vals: Vec<Value> = (0..260)
            .map(|i| Value::Utf8(format!("k{:04}", i)))
            .collect();
        let h = Histogram::from_sorted(&vals, 16).unwrap();
        let f = h.fraction_below(&Value::Utf8("k0130".into()), false);
        assert!((f - 0.5).abs() < 0.15, "fraction {f}");
    }

    #[test]
    fn mcvs_capture_heavy_hitters() {
        let mut vals = vec![7i64; 500];
        vals.extend(vec![13i64; 200]);
        vals.extend(0..300);
        let mut vals = ints(vals);
        vals.sort();
        let mcv = McvList::from_sorted(&vals).unwrap();
        let f7 = mcv.freq(&Value::Int64(7)).unwrap();
        assert!((f7 - 0.5).abs() < 0.01, "freq {f7}");
        assert!(mcv.freq(&Value::Int64(13)).is_some());
        assert!(mcv.freq(&Value::Int64(299)).is_none());
        assert!(mcv.total_freq() < 1.0);
    }

    #[test]
    fn uniform_data_has_no_mcvs() {
        let vals = ints(0..1000);
        assert!(McvList::from_sorted(&vals).is_none());
        assert!(Histogram::from_sorted(&ints(0..1), 64).is_none());
        assert!(McvList::from_sorted(&[]).is_none());
    }
}
