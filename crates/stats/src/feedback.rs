//! Cardinality feedback: estimated-vs-actual q-error accounting.
//!
//! Every governed execution knows two numbers the optimizer would love
//! to be told about: what it *predicted* the root cardinality to be
//! and what actually came back. The [`FeedbackRegistry`] keeps a
//! bounded ring of those comparisons, folds them into per-table drift
//! windows, and — under a [`StatsPolicy`] — nominates tables whose
//! drift exceeds the threshold for re-ANALYZE on the virtual clock.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The q-error of an estimate: `max(est/actual, actual/est)`, with
/// both sides floored at one row so empty results stay finite. Always
/// `>= 1`; `1.0` is a perfect estimate.
pub fn q_error(est_rows: f64, actual_rows: u64) -> f64 {
    let est = est_rows.max(1.0);
    let actual = (actual_rows as f64).max(1.0);
    (est / actual).max(actual / est)
}

/// A stable fingerprint for a plan's textual form — the key feedback
/// samples aggregate under.
pub fn plan_fingerprint(plan_text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    plan_text.hash(&mut h);
    h.finish()
}

/// One recorded estimated-vs-actual comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorSample {
    /// Fingerprint of the executed plan.
    pub fingerprint: u64,
    /// The optimizer's root-cardinality estimate.
    pub est_rows: f64,
    /// Rows the query actually returned.
    pub actual_rows: u64,
    /// `q_error(est_rows, actual_rows)`.
    pub q_error: f64,
    /// Virtual-clock timestamp of the execution.
    pub at_us: u64,
}

/// When and how aggressively the runtime re-collects statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsPolicy {
    /// Master switch for feedback-driven re-ANALYZE.
    pub auto_reanalyze: bool,
    /// Median drift (q-error) above which a table is due.
    pub qerror_threshold: f64,
    /// Minimum feedback samples before a table can be nominated.
    pub min_samples: usize,
    /// Virtual microseconds between ANALYZEs of the same table.
    pub cooldown_us: u64,
    /// Capacity of the feedback ring.
    pub ring_capacity: usize,
}

impl Default for StatsPolicy {
    fn default() -> Self {
        StatsPolicy {
            auto_reanalyze: true,
            qerror_threshold: 8.0,
            min_samples: 8,
            cooldown_us: 30_000_000,
            ring_capacity: 256,
        }
    }
}

/// Drift gauges for one table, as exported to observability.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDriftGauge {
    /// Source name.
    pub source: String,
    /// Table name.
    pub table: String,
    /// Median q-error over the table's recent window.
    pub median_q: f64,
    /// Samples currently in the window.
    pub samples: u64,
    /// ANALYZE runs that have covered this table.
    pub analyzed: u64,
}

/// A snapshot of every statistics counter and gauge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsGauges {
    /// Tables ANALYZE has collected (counting repeats).
    pub tables_analyzed: u64,
    /// Wire bytes ANALYZE traffic has shipped.
    pub analyze_bytes: u64,
    /// Re-ANALYZEs the feedback loop has scheduled.
    pub reanalyze_scheduled: u64,
    /// Feedback samples recorded.
    pub samples_recorded: u64,
    /// Samples currently resident in the ring.
    pub ring_len: u64,
    /// Median q-error over the resident ring (1.0 when empty).
    pub qerror_median: f64,
    /// Maximum q-error over the resident ring (1.0 when empty).
    pub qerror_max: f64,
    /// Per-table drift windows.
    pub tables: Vec<TableDriftGauge>,
}

#[derive(Debug, Default)]
struct TableDrift {
    recent: VecDeque<f64>,
    last_analyzed_us: Option<u64>,
    analyzed_runs: u64,
}

const DRIFT_WINDOW: usize = 32;

#[derive(Debug)]
struct Inner {
    policy: StatsPolicy,
    ring: VecDeque<QErrorSample>,
    tables: BTreeMap<(String, String), TableDrift>,
}

/// The estimated-vs-actual feedback ring plus per-table drift state.
#[derive(Debug)]
pub struct FeedbackRegistry {
    inner: Mutex<Inner>,
    samples_recorded: AtomicU64,
    tables_analyzed: AtomicU64,
    analyze_bytes: AtomicU64,
    reanalyze_scheduled: AtomicU64,
}

impl Default for FeedbackRegistry {
    fn default() -> Self {
        FeedbackRegistry::new(StatsPolicy::default())
    }
}

impl FeedbackRegistry {
    /// A registry under `policy`.
    pub fn new(policy: StatsPolicy) -> FeedbackRegistry {
        FeedbackRegistry {
            inner: Mutex::new(Inner {
                policy,
                ring: VecDeque::new(),
                tables: BTreeMap::new(),
            }),
            samples_recorded: AtomicU64::new(0),
            tables_analyzed: AtomicU64::new(0),
            analyze_bytes: AtomicU64::new(0),
            reanalyze_scheduled: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replaces the policy.
    pub fn set_policy(&self, policy: StatsPolicy) {
        self.lock().policy = policy;
    }

    /// The current policy.
    pub fn policy(&self) -> StatsPolicy {
        self.lock().policy
    }

    /// Records one executed plan's estimated-vs-actual comparison,
    /// attributed to the `(source, table)` pairs the plan read.
    pub fn record(
        &self,
        fingerprint: u64,
        tables: &[(String, String)],
        est_rows: f64,
        actual_rows: u64,
        at_us: u64,
    ) -> f64 {
        let q = q_error(est_rows, actual_rows);
        let mut inner = self.lock();
        let cap = inner.policy.ring_capacity.max(1);
        while inner.ring.len() >= cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(QErrorSample {
            fingerprint,
            est_rows,
            actual_rows,
            q_error: q,
            at_us,
        });
        for key in tables {
            let drift = inner.tables.entry(key.clone()).or_default();
            if drift.recent.len() >= DRIFT_WINDOW {
                drift.recent.pop_front();
            }
            drift.recent.push_back(q);
        }
        drop(inner);
        self.samples_recorded.fetch_add(1, Ordering::Relaxed);
        q
    }

    /// Notes a completed ANALYZE of `source.table` that shipped
    /// `wire_bytes`, resetting the table's drift window.
    pub fn note_analyzed(&self, source: &str, table: &str, at_us: u64, wire_bytes: u64) {
        let mut inner = self.lock();
        let drift = inner
            .tables
            .entry((source.to_string(), table.to_string()))
            .or_default();
        drift.last_analyzed_us = Some(at_us);
        drift.analyzed_runs += 1;
        drift.recent.clear();
        drop(inner);
        self.tables_analyzed.fetch_add(1, Ordering::Relaxed);
        self.analyze_bytes.fetch_add(wire_bytes, Ordering::Relaxed);
    }

    /// Tables whose drift window says their statistics have rotted:
    /// previously ANALYZEd, enough samples, median q-error over the
    /// threshold, cooldown elapsed. Nominated tables have their
    /// windows cleared so they are not returned again before the
    /// re-ANALYZE lands.
    pub fn due_for_reanalyze(&self, now_us: u64) -> Vec<(String, String)> {
        let mut inner = self.lock();
        let policy = inner.policy;
        if !policy.auto_reanalyze {
            return Vec::new();
        }
        let mut due = Vec::new();
        for (key, drift) in inner.tables.iter_mut() {
            let Some(last) = drift.last_analyzed_us else {
                continue;
            };
            if now_us.saturating_sub(last) < policy.cooldown_us {
                continue;
            }
            if drift.recent.len() < policy.min_samples {
                continue;
            }
            if median(drift.recent.iter().copied()) > policy.qerror_threshold {
                drift.recent.clear();
                due.push(key.clone());
            }
        }
        drop(inner);
        self.reanalyze_scheduled
            .fetch_add(due.len() as u64, Ordering::Relaxed);
        due
    }

    /// A snapshot of the resident feedback ring, oldest first.
    pub fn ring(&self) -> Vec<QErrorSample> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Every counter and gauge, for metrics exposition.
    pub fn gauges(&self) -> StatsGauges {
        let inner = self.lock();
        let qs: Vec<f64> = inner.ring.iter().map(|s| s.q_error).collect();
        let tables = inner
            .tables
            .iter()
            .map(|((source, table), drift)| TableDriftGauge {
                source: source.clone(),
                table: table.clone(),
                median_q: if drift.recent.is_empty() {
                    1.0
                } else {
                    median(drift.recent.iter().copied())
                },
                samples: drift.recent.len() as u64,
                analyzed: drift.analyzed_runs,
            })
            .collect();
        StatsGauges {
            tables_analyzed: self.tables_analyzed.load(Ordering::Relaxed),
            analyze_bytes: self.analyze_bytes.load(Ordering::Relaxed),
            reanalyze_scheduled: self.reanalyze_scheduled.load(Ordering::Relaxed),
            samples_recorded: self.samples_recorded.load(Ordering::Relaxed),
            ring_len: qs.len() as u64,
            qerror_median: if qs.is_empty() {
                1.0
            } else {
                median(qs.iter().copied())
            },
            qerror_max: qs.iter().copied().fold(1.0, f64::max),
            tables,
        }
    }
}

/// Median of a non-empty iterator (lower median for even counts).
pub fn median(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 1.0;
    }
    v.sort_by(f64::total_cmp);
    v[(v.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: &str) -> (String, String) {
        ("src".to_string(), t.to_string())
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100), 10.0);
        assert_eq!(q_error(100.0, 10), 10.0);
        assert_eq!(q_error(0.0, 0), 1.0);
        assert_eq!(q_error(0.5, 1), 1.0);
    }

    #[test]
    fn ring_is_bounded() {
        let reg = FeedbackRegistry::new(StatsPolicy {
            ring_capacity: 4,
            ..StatsPolicy::default()
        });
        for i in 0..10u64 {
            reg.record(i, &[key("t")], 10.0, 10, i);
        }
        let ring = reg.ring();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring[0].fingerprint, 6);
        assert_eq!(reg.gauges().samples_recorded, 10);
    }

    #[test]
    fn reanalyze_requires_drift_samples_and_cooldown() {
        let policy = StatsPolicy {
            qerror_threshold: 4.0,
            min_samples: 3,
            cooldown_us: 1_000,
            ..StatsPolicy::default()
        };
        let reg = FeedbackRegistry::new(policy);
        // Never analyzed: not eligible no matter the drift.
        for _ in 0..5 {
            reg.record(1, &[key("cold")], 1000.0, 1, 0);
        }
        assert!(reg.due_for_reanalyze(10_000).is_empty());

        reg.note_analyzed("src", "hot", 0, 128);
        // Not enough samples yet.
        reg.record(2, &[key("hot")], 1000.0, 1, 100);
        assert!(reg.due_for_reanalyze(10_000).is_empty());
        for _ in 0..4 {
            reg.record(2, &[key("hot")], 1000.0, 1, 200);
        }
        // Cooldown not elapsed.
        assert!(reg.due_for_reanalyze(500).is_empty());
        let due = reg.due_for_reanalyze(10_000);
        assert_eq!(due, vec![key("hot")]);
        // Window cleared: not nominated twice.
        assert!(reg.due_for_reanalyze(20_000).is_empty());
        assert_eq!(reg.gauges().reanalyze_scheduled, 1);
    }

    #[test]
    fn accurate_estimates_never_trigger() {
        let reg = FeedbackRegistry::new(StatsPolicy {
            min_samples: 2,
            cooldown_us: 0,
            ..StatsPolicy::default()
        });
        reg.note_analyzed("src", "t", 0, 64);
        for _ in 0..10 {
            reg.record(3, &[key("t")], 100.0, 101, 50);
        }
        assert!(reg.due_for_reanalyze(1_000_000).is_empty());
        let g = reg.gauges();
        assert!(g.qerror_median < 1.1);
        assert_eq!(g.tables_analyzed, 1);
        assert_eq!(g.analyze_bytes, 64);
    }

    #[test]
    fn disabled_policy_never_nominates() {
        let reg = FeedbackRegistry::new(StatsPolicy {
            auto_reanalyze: false,
            min_samples: 1,
            cooldown_us: 0,
            ..StatsPolicy::default()
        });
        reg.note_analyzed("src", "t", 0, 0);
        reg.record(4, &[key("t")], 1e6, 1, 10);
        assert!(reg.due_for_reanalyze(1_000_000).is_empty());
    }

    #[test]
    fn gauges_summarize_ring() {
        let reg = FeedbackRegistry::default();
        reg.record(1, &[key("a")], 10.0, 10, 0);
        reg.record(2, &[key("a")], 100.0, 10, 1);
        reg.record(3, &[key("b")], 10.0, 1000, 2);
        let g = reg.gauges();
        assert_eq!(g.ring_len, 3);
        assert_eq!(g.qerror_median, 10.0);
        assert_eq!(g.qerror_max, 100.0);
        assert_eq!(g.tables.len(), 2);
        let a = g.tables.iter().find(|t| t.table == "a").unwrap();
        assert_eq!(a.samples, 2);
    }
}
