//! Sampling specifications and the reservoir sampler.
//!
//! ANALYZE cannot assume a source will (or should) scan everything:
//! a relational engine evaluating pushdown already touches every row
//! cheaply, but a columnar engine answers from segment zone maps and a
//! KV store would have to walk its whole keyspace. The [`SampleSpec`]
//! travels in the ANALYZE wire request and tells the source-side
//! collector how much to look at; the [`Reservoir`] keeps collection
//! memory bounded regardless.

use gis_types::{GisError, Result, Value};

/// How a source should sample a table for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Scan every row (relational pushdown sources: the scan is the
    /// same work they already do to answer queries).
    Full,
    /// Sample whole pages/segments (columnar sources: a segment is the
    /// unit their storage reads anyway).
    Page,
    /// Sample key ranges by stride (KV sources: ordered key space,
    /// no predicate evaluation available).
    Range,
}

impl SampleMode {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            SampleMode::Full => 0,
            SampleMode::Page => 1,
            SampleMode::Range => 2,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(tag: u8) -> Result<SampleMode> {
        Ok(match tag {
            0 => SampleMode::Full,
            1 => SampleMode::Page,
            2 => SampleMode::Range,
            other => {
                return Err(GisError::Network(format!(
                    "unknown sample mode tag {other}"
                )))
            }
        })
    }

    /// Short label for spans and reports.
    pub fn label(self) -> &'static str {
        match self {
            SampleMode::Full => "full",
            SampleMode::Page => "page",
            SampleMode::Range => "range",
        }
    }
}

/// A complete sampling instruction for one ANALYZE of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// How to pick rows.
    pub mode: SampleMode,
    /// Rough number of rows the sample should contain (sampling modes
    /// derive their stride from this; `Full` ignores it).
    pub target_rows: u64,
    /// Seed for any randomized choices, so ANALYZE is deterministic.
    pub seed: u64,
}

impl SampleSpec {
    /// Default sample size.
    pub const DEFAULT_TARGET: u64 = 10_000;

    /// A full-scan spec.
    pub fn full() -> SampleSpec {
        SampleSpec {
            mode: SampleMode::Full,
            target_rows: Self::DEFAULT_TARGET,
            seed: 0,
        }
    }

    /// A sampling spec in `mode` with the default target.
    pub fn sampled(mode: SampleMode, seed: u64) -> SampleSpec {
        SampleSpec {
            mode,
            target_rows: Self::DEFAULT_TARGET,
            seed,
        }
    }

    /// The stride for `total` rows under this spec: every `stride`-th
    /// row (or page) keeps the sample near `target_rows`.
    pub fn stride(&self, total: u64) -> u64 {
        if self.mode == SampleMode::Full || self.target_rows == 0 {
            return 1;
        }
        (total / self.target_rows).max(1)
    }
}

/// Algorithm-R reservoir sampler over [`Value`]s with a deterministic
/// xorshift generator: same seed, same stream, same sample.
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    state: u64,
    values: Vec<Value>,
}

impl Reservoir {
    /// A reservoir keeping at most `capacity` values.
    pub fn new(capacity: usize, seed: u64) -> Reservoir {
        Reservoir {
            capacity: capacity.max(1),
            seen: 0,
            // xorshift must not start at 0.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            values: Vec::new(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Offers one value to the reservoir.
    pub fn offer(&mut self, v: &Value) {
        self.seen += 1;
        if self.values.len() < self.capacity {
            self.values.push(v.clone());
            return;
        }
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.values[j as usize] = v.clone();
        }
    }

    /// Values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Drains the sample, ascending-sorted (the input order histogram
    /// and MCV builders expect).
    pub fn into_sorted(mut self) -> Vec<Value> {
        self.values.sort_by(|a, b| a.total_cmp(b));
        self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_tags_roundtrip() {
        for mode in [SampleMode::Full, SampleMode::Page, SampleMode::Range] {
            assert_eq!(SampleMode::from_tag(mode.tag()).unwrap(), mode);
        }
        assert!(SampleMode::from_tag(9).is_err());
    }

    #[test]
    fn stride_tracks_target() {
        let spec = SampleSpec {
            mode: SampleMode::Range,
            target_rows: 100,
            seed: 7,
        };
        assert_eq!(spec.stride(1000), 10);
        assert_eq!(spec.stride(50), 1);
        assert_eq!(SampleSpec::full().stride(1_000_000), 1);
    }

    #[test]
    fn reservoir_keeps_capacity_and_is_deterministic() {
        let fill = |seed| {
            let mut r = Reservoir::new(100, seed);
            for i in 0..10_000i64 {
                r.offer(&Value::Int64(i));
            }
            assert_eq!(r.seen(), 10_000);
            r.into_sorted()
        };
        let a = fill(1);
        assert_eq!(a.len(), 100);
        assert_eq!(a, fill(1), "same seed, same sample");
        assert_ne!(a, fill(2), "different seed, different sample");
        assert!(a.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()));
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut r = Reservoir::new(1000, 42);
        for i in 0..100_000i64 {
            r.offer(&Value::Int64(i));
        }
        let sample = r.into_sorted();
        let below = sample
            .iter()
            .filter(|v| v.total_cmp(&Value::Int64(50_000)).is_lt())
            .count();
        assert!(
            (400..=600).contains(&below),
            "half-point split {below}/1000"
        );
    }
}
