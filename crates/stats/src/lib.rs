//! # gis-stats — statistics sketches and cardinality feedback
//!
//! Kameny's mediator decomposes queries by *cost*, yet the component
//! systems are autonomous: the federation cannot read their data, only
//! ask them questions over a priced link. This crate holds everything
//! the statistics subsystem needs that is not tied to a particular
//! engine or wire:
//!
//! * [`Hll`] — a HyperLogLog sketch for NDV estimation, mergeable so
//!   sampled collection scans can be combined;
//! * [`Histogram`] — equi-depth bucket boundaries with range-fraction
//!   estimation (the selectivity workhorse for range and LIKE-prefix
//!   predicates);
//! * [`McvList`] — most-common values with their frequency fractions,
//!   consulted before any 1/NDV uniformity assumption;
//! * [`Reservoir`] — a deterministic reservoir sampler feeding the
//!   histogram/MCV builders in bounded memory;
//! * [`SampleSpec`]/[`SampleMode`] — how much of a table a source
//!   should look at when asked to ANALYZE, chosen per capability
//!   profile (full scan for relational pushdown sources, page or
//!   key-range sampling for columnar and KV engines);
//! * [`FeedbackRegistry`] — the estimated-vs-actual q-error ring and
//!   per-table drift accounting that schedules re-ANALYZE when the
//!   optimizer's picture of a table has rotted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod feedback;
pub mod histogram;
pub mod hll;
pub mod sample;

pub use feedback::{
    plan_fingerprint, q_error, FeedbackRegistry, QErrorSample, StatsGauges, StatsPolicy,
    TableDriftGauge,
};
pub use histogram::{Histogram, McvList};
pub use hll::Hll;
pub use sample::{Reservoir, SampleMode, SampleSpec};
