//! HyperLogLog NDV sketch.
//!
//! 2^p single-byte registers; each observed value hashes to one
//! register which keeps the longest run of leading zeros seen in the
//! remaining hash bits. The estimate is the classic bias-corrected
//! harmonic mean, falling back to linear counting while many registers
//! are still empty (the regime ANALYZE samples usually sit in).

use gis_types::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Default precision: 2^11 = 2048 registers, ~2.3% standard error.
pub const DEFAULT_PRECISION: u8 = 11;

/// A HyperLogLog distinct-value sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    p: u8,
    regs: Vec<u8>,
}

impl Hll {
    /// A sketch with 2^`p` registers (`p` clamped to 4..=16).
    pub fn new(p: u8) -> Self {
        let p = p.clamp(4, 16);
        Hll {
            p,
            regs: vec![0u8; 1 << p],
        }
    }

    /// A sketch at the default precision.
    pub fn default_precision() -> Self {
        Hll::new(DEFAULT_PRECISION)
    }

    /// Observes one non-null value.
    pub fn observe(&mut self, v: &Value) {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        self.observe_hash(h.finish());
    }

    /// Observes a pre-computed 64-bit hash.
    pub fn observe_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.p)) as usize;
        let rest = hash << self.p;
        // Rank of the first set bit in the remaining 64-p bits, 1-based;
        // an all-zero remainder gets the maximum rank.
        let rank = (rest.leading_zeros() as u8).min(64 - self.p) + 1;
        if rank > self.regs[idx] {
            self.regs[idx] = rank;
        }
    }

    /// Merges another sketch of the same precision (register-wise max).
    pub fn merge(&mut self, other: &Hll) {
        assert_eq!(self.p, other.p, "cannot merge HLLs of different precision");
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            *a = (*a).max(*b);
        }
    }

    /// The estimated number of distinct values observed.
    pub fn estimate(&self) -> u64 {
        let m = self.regs.len() as f64;
        let zeros = self.regs.iter().filter(|&&r| r == 0).count() as f64;
        // Linear counting while the sketch is sparse: more accurate
        // than the raw HLL estimator below ~2.5m cardinality.
        if zeros > 0.0 {
            let lc = m * (m / zeros).ln();
            if lc <= 2.5 * m {
                return lc.round() as u64;
            }
        }
        let sum: f64 = self.regs.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
        let alpha = match self.regs.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        };
        (alpha * m * m / sum).round() as u64
    }

    /// The raw registers (for serialization).
    pub fn registers(&self) -> &[u8] {
        &self.regs
    }

    /// The precision parameter.
    pub fn precision(&self) -> u8 {
        self.p
    }

    /// Rebuilds a sketch from serialized registers. Returns `None`
    /// when the register count is not a power of two in the supported
    /// precision range.
    pub fn from_registers(regs: Vec<u8>) -> Option<Self> {
        let m = regs.len();
        if !m.is_power_of_two() {
            return None;
        }
        let p = m.trailing_zeros() as u8;
        if !(4..=16).contains(&p) || regs.iter().any(|&r| r > 64) {
            return None;
        }
        Some(Hll { p, regs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_range(h: &mut Hll, lo: i64, hi: i64) {
        for i in lo..hi {
            h.observe(&Value::Int64(i));
        }
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut h = Hll::default_precision();
        observe_range(&mut h, 0, 100);
        let est = h.estimate();
        assert!((95..=105).contains(&est), "est {est} for true 100");
    }

    #[test]
    fn large_cardinalities_within_tolerance() {
        let mut h = Hll::default_precision();
        observe_range(&mut h, 0, 100_000);
        let est = h.estimate() as f64;
        assert!(
            (est - 100_000.0).abs() / 100_000.0 < 0.08,
            "est {est} for true 100000"
        );
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = Hll::default_precision();
        for _ in 0..10 {
            observe_range(&mut h, 0, 500);
        }
        let est = h.estimate();
        assert!((470..=530).contains(&est), "est {est} for true 500");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Hll::default_precision();
        let mut b = Hll::default_precision();
        observe_range(&mut a, 0, 1000);
        observe_range(&mut b, 500, 1500);
        a.merge(&b);
        let est = a.estimate() as f64;
        assert!(
            (est - 1500.0).abs() / 1500.0 < 0.08,
            "merged est {est} for true 1500"
        );
    }

    #[test]
    fn register_roundtrip() {
        let mut h = Hll::default_precision();
        observe_range(&mut h, 0, 1234);
        let back = Hll::from_registers(h.registers().to_vec()).unwrap();
        assert_eq!(back, h);
        assert!(Hll::from_registers(vec![0u8; 3]).is_none());
        assert!(Hll::from_registers(vec![0u8; 2]).is_none());
        assert!(Hll::from_registers(vec![65u8; 16]).is_none());
    }
}
