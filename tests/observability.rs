//! Observability end to end: EXPLAIN ANALYZE span stitching across
//! remote sources, the slow-query log, and the metrics exposition.

use gis::prelude::*;
use std::sync::Arc;

fn fedmart() -> FedMart {
    build_fedmart(FedMartConfig::tiny()).expect("fedmart")
}

/// The acceptance query: a join spanning all three FedMart sources
/// (customers on `crm`, orders on `sales`, products on `inventory`).
const THREE_SOURCE_JOIN: &str = "SELECT c.region, p.category, sum(o.amount) AS revenue \
     FROM customers c \
     JOIN orders o ON c.id = o.cust_id \
     JOIN products p ON o.product_id = p.product_id \
     GROUP BY c.region, p.category \
     ORDER BY revenue DESC";

#[test]
fn explain_analyze_stitches_remote_operator_spans() {
    let fm = fedmart();
    let r = fm
        .federation
        .query(&format!("EXPLAIN ANALYZE {THREE_SOURCE_JOIN}"))
        .unwrap();
    let text: String = r
        .batch
        .to_rows()
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    // Mediator operators, annotated.
    assert!(text.contains("HashAggregate"), "{text}");
    assert!(
        text.contains("HashJoin") || text.contains("BindJoin"),
        "{text}"
    );
    assert!(text.contains("rows="), "{text}");
    assert!(text.contains("time="), "{text}");
    // Every source's fragment appears, each with the operator span
    // the source itself reported over the wire, and the wire
    // exchange that carried it (with its byte count).
    for source in ["crm", "sales", "inventory"] {
        assert!(
            text.contains(&format!("recv[{source}]")),
            "missing recv[{source}]:\n{text}"
        );
    }
    assert!(text.contains("remote:scan["), "{text}");
    assert!(text.contains("bytes="), "{text}");
    // The executed-summary trailer survives from the classic form.
    assert!(text.contains("executed:"), "{text}");
}

#[test]
fn tracing_preserves_results_and_meters_its_own_traffic() {
    let fm = fedmart();
    let plain = fm.federation.query(THREE_SOURCE_JOIN).unwrap();
    assert!(plain.metrics.trace.is_none());

    let mut exec = fm.federation.exec_options();
    exec.tracing = true;
    fm.federation.set_exec_options(exec);
    let traced = fm.federation.query(THREE_SOURCE_JOIN).unwrap();

    assert_eq!(
        plain.batch.to_rows(),
        traced.batch.to_rows(),
        "tracing must not change results"
    );
    let trace = traced
        .metrics
        .trace
        .expect("traced run produces a span tree");
    assert!(trace.node_count() >= 5, "{}", trace.render());
    // Remote fragments reported rows; the recv spans carried bytes.
    assert!(trace.find("recv[crm]").is_some(), "{}", trace.render());
    assert!(trace.total_bytes() > 0, "{}", trace.render());
    // The span frames crossed the metered links: the traced run
    // ships strictly more bytes and messages than the plain one.
    assert!(traced.metrics.bytes_shipped > plain.metrics.bytes_shipped);
    assert!(traced.metrics.messages > plain.metrics.messages);
}

#[test]
fn slow_query_log_captures_plan_and_spans() {
    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_workers(2)
            .with_slow_query_us(Some(0)) // every query is "slow"
            .with_slow_log_capacity(4),
    );
    let mut session = runtime.session();
    // Cache hits return in microseconds with no trace; disable them
    // so every run executes (and traces) for real.
    session.set_caching(false);
    for _ in 0..6 {
        session.query(THREE_SOURCE_JOIN).unwrap();
    }
    let entries = runtime.slow_queries();
    assert_eq!(entries.len(), 4, "ring buffer caps residency");
    assert_eq!(runtime.stats().slow_queries, 6, "but counts every offender");
    let last = entries.last().unwrap();
    assert_eq!(last.sql, THREE_SOURCE_JOIN);
    let trace = last.trace.as_ref().expect("slow entries carry span trees");
    assert!(trace.find("recv[sales]").is_some(), "{}", trace.render());
    let rendered = last.render();
    assert!(rendered.contains("slow query id="), "{rendered}");
    assert!(rendered.contains("rows="), "{rendered}");
    runtime.shutdown();
}

#[test]
fn result_cache_serves_traced_queries_without_rerunning() {
    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_workers(1)
            .with_slow_query_us(Some(u64::MAX)), // tracing on, log empty
    );
    let session = runtime.session();
    session.query(THREE_SOURCE_JOIN).unwrap();
    let second = session.query(THREE_SOURCE_JOIN).unwrap();
    assert!(second.metrics.result_cache_hit);
    assert_eq!(runtime.stats().slow_queries, 0);
    runtime.shutdown();
}

#[test]
fn render_text_exposes_runtime_cache_and_link_counters() {
    let fm = fedmart();
    let runtime = Runtime::new(Arc::new(fm.federation), RuntimeConfig::default());
    let session = runtime.session();
    session.query(THREE_SOURCE_JOIN).unwrap();
    session.query(THREE_SOURCE_JOIN).unwrap();
    let text = runtime.render_text();
    assert!(text.contains("# TYPE gis_queries_total counter"), "{text}");
    assert!(
        text.contains("gis_queries_total{state=\"completed\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("gis_result_cache_total{event=\"hit\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("gis_result_cache_total{event=\"collision\"} 0"),
        "{text}"
    );
    // Per-link counters for each registered source, with real traffic.
    for source in ["crm", "sales", "inventory"] {
        let needle = format!("gis_link_bytes_total{{source=\"{source}\"}}");
        let line = text
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("missing {needle} in:\n{text}"));
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value > 0, "{line}");
    }
    assert!(
        text.contains("gis_source_data_version{source=\"crm\"}"),
        "{text}"
    );
    // Wire-compression counters: raw strictly exceeds compressed on
    // FedMart's regular data, and at least one non-raw codec fired.
    let series = |needle: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("missing {needle} in:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let raw = series("gis_wire_bytes{kind=\"raw\"}");
    let compressed = series("gis_wire_bytes{kind=\"compressed\"}");
    assert!(raw > compressed, "raw={raw} compressed={compressed}");
    assert!(series("gis_wire_frames_total") > 0);
    let non_raw: u64 = ["dict", "rle", "delta", "nullsup"]
        .iter()
        .map(|c| series(&format!("gis_wire_columns_total{{codec=\"{c}\"}}")))
        .sum();
    assert!(non_raw > 0, "no adaptive codec selected:\n{text}");
    runtime.shutdown();
}

#[test]
fn render_text_exposes_resilience_counters_per_replica() {
    let fm = fedmart();
    let fed = Arc::new(fm.federation);
    let replica = fed
        .add_source_replica("crm", gis::net::NetworkConditions::wan())
        .unwrap();
    fed.configure_breaker(gis::net::BreakerConfig {
        failure_threshold: 3,
        cooldown_us: 60_000_000,
    });
    // Transient loss on the replica that routing prefers (the replica
    // shares the primary's WAN conditions; the primary wins the
    // registration-order tiebreak) — retries absorb it.
    fed.link("crm").unwrap().faults().fail_next(2);
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let mut session = runtime.session();
    // Cache hits would skip the network entirely; every query here
    // must actually exercise the faulted links.
    session.set_caching(false);
    session.query("SELECT count(*) FROM customers").unwrap();
    // Now partition the primary and trip its breaker; the replica
    // picks the query up.
    fed.link("crm").unwrap().faults().partition();
    session.query("SELECT count(*) FROM customers").unwrap();

    let text = runtime.render_text();
    // Retry attempts surfaced per link.
    assert!(
        text.contains("# TYPE gis_link_retries_total counter"),
        "{text}"
    );
    let retries_line = text
        .lines()
        .find(|l| l.starts_with("gis_link_retries_total{source=\"crm\"}"))
        .unwrap_or_else(|| panic!("missing crm retries in:\n{text}"));
    let retries: u64 = retries_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(retries >= 2, "{retries_line}");
    // Breaker state gauge: the partitioned primary is open (2), the
    // healthy replica closed (0).
    assert!(
        text.contains("gis_link_breaker_state{source=\"crm\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("gis_link_breaker_state{source=\"crm@r1\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("gis_link_breaker_opens_total{source=\"crm\"} 1"),
        "{text}"
    );
    // Every replica link reports its own traffic series.
    assert!(
        text.contains("gis_link_bytes_total{source=\"crm@r1\"}"),
        "{text}"
    );
    // The replica actually served the partitioned-primary query.
    assert!(replica.metrics().messages() > 0);

    // Take the replica down as well: the next query exhausts it, then
    // hits the primary's open breaker — which fails fast without
    // touching the wire, and the counter proves it.
    replica.faults().partition();
    let err = session.query("SELECT count(*) FROM customers").unwrap_err();
    assert_eq!(err.code(), "UNAVAILABLE");
    let text = runtime.render_text();
    let ff_line = text
        .lines()
        .find(|l| l.starts_with("gis_link_fast_failures_total{source=\"crm\"}"))
        .unwrap_or_else(|| panic!("missing fast failures in:\n{text}"));
    let fast: u64 = ff_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(fast >= 1, "{ff_line}");
    runtime.shutdown();
}
