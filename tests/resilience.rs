//! Outage resilience through the public API: replica failover, circuit
//! breakers, partial results, and the interaction of all three with
//! the serving runtime's caches. Every fault is scripted on the
//! simulated network, so outcomes (including virtual-time costs) are
//! exact and deterministic.

use gis::net::BreakerState;
use gis::prelude::*;
use std::sync::Arc;

/// A federation with one relational source (`crm.t`, 100 rows).
fn one_source_fed(conditions: NetworkConditions) -> Federation {
    let fed = Federation::new();
    let adapter = RelationalAdapter::new("crm");
    let schema = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("v", DataType::Int64),
    ])
    .into_ref();
    adapter.add_table(RowStore::new("t", schema, Some(0)).unwrap());
    adapter
        .load(
            "t",
            (0..100i64).map(|i| vec![Value::Int64(i), Value::Int64(i * i)]),
        )
        .unwrap();
    fed.add_source(Arc::new(adapter) as Arc<dyn SourceAdapter>, conditions)
        .unwrap();
    fed
}

/// A two-source federation: `crm.t` (ids 0..50) and `mkt.t`
/// (ids 50..80), both one-table relational sources.
fn two_source_fed() -> Federation {
    let fed = Federation::new();
    for (name, lo, hi) in [("crm", 0i64, 50i64), ("mkt", 50, 80)] {
        let adapter = RelationalAdapter::new(name);
        let schema = Schema::new(vec![Field::required("id", DataType::Int64)]).into_ref();
        adapter.add_table(RowStore::new("t", schema, Some(0)).unwrap());
        adapter
            .load("t", (lo..hi).map(|i| vec![Value::Int64(i)]))
            .unwrap();
        fed.add_source(
            Arc::new(adapter) as Arc<dyn SourceAdapter>,
            NetworkConditions::wan(),
        )
        .unwrap();
    }
    fed
}

const UNION_SQL: &str = "SELECT id FROM crm.t UNION ALL SELECT id FROM mkt.t";

#[test]
fn replica_failover_survives_a_primary_partition() {
    let fed = one_source_fed(NetworkConditions::lan());
    let replica = fed
        .add_source_replica("crm", NetworkConditions::wan())
        .unwrap();
    // This test scripts a long-lived partition and runs several
    // queries into it; disable the breaker so every attempt really
    // reaches the wire and error codes stay NETWORK throughout.
    fed.configure_breaker(gis::net::BreakerConfig::disabled());
    // Partition the (cheaper, therefore preferred) primary.
    fed.link("crm").unwrap().faults().partition();
    let r = fed.query("SELECT count(*) FROM crm.t").unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(100));
    assert!(r.degraded.is_none(), "failover is not degradation");
    // The replica carried the query; the primary only failed.
    assert!(replica.metrics().messages() > 0);
    assert_eq!(fed.link("crm").unwrap().metrics().messages(), 0);
    // Metrics attribute the failed attempts to the partitioned link.
    assert_eq!(r.metrics.per_source["crm"].failures, 3);
    assert!(r.metrics.per_source["crm@r1"].failures == 0);

    // EXPLAIN ANALYZE names the replica that was skipped over.
    let plan = fed
        .query("EXPLAIN ANALYZE SELECT count(*) FROM crm.t")
        .unwrap();
    let rendered = plan.batch.to_table();
    assert!(
        rendered.contains("event:failover[crm NETWORK]"),
        "missing failover annotation in:\n{rendered}"
    );
}

#[test]
fn retry_events_annotate_explain_analyze() {
    let fed = one_source_fed(NetworkConditions::wan());
    fed.link("crm").unwrap().faults().fail_next(2);
    let plan = fed
        .query("EXPLAIN ANALYZE SELECT count(*) FROM crm.t")
        .unwrap();
    let rendered = plan.batch.to_table();
    assert!(
        rendered.contains("event:retry[crm attempt=2"),
        "missing retry annotation in:\n{rendered}"
    );
    assert!(rendered.contains("event:retry[crm attempt=3"));
}

#[test]
fn routing_prefers_the_cheapest_healthy_replica() {
    // Primary on a WAN, replica on a LAN: the group should route to
    // the replica even with zero faults anywhere.
    let fed = one_source_fed(NetworkConditions::wan());
    let replica = fed
        .add_source_replica("crm", NetworkConditions::lan())
        .unwrap();
    let r = fed.query("SELECT count(*) FROM crm.t").unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(100));
    assert!(replica.metrics().messages() > 0);
    assert_eq!(fed.link("crm").unwrap().metrics().messages(), 0);
}

#[test]
fn open_breaker_fails_fast_and_pays_no_wire_latency() {
    let fed = one_source_fed(NetworkConditions::wan());
    fed.configure_breaker(gis::net::BreakerConfig {
        failure_threshold: 3,
        cooldown_us: 60_000_000,
    });
    let link = fed.link("crm").unwrap();
    link.faults().partition();

    // Retry exhaustion: three real attempts, each paying latency.
    let err = fed.query("SELECT count(*) FROM crm.t").unwrap_err();
    assert_eq!(err.code(), "NETWORK");
    assert_eq!(link.metrics().failures(), 3);
    assert_eq!(link.breaker_state(), BreakerState::Open);
    let clock_after_storm = fed.clock().now_us();
    assert!(clock_after_storm > 0, "retry exhaustion pays wire latency");

    // Fail-fast: the open breaker answers instantly — the virtual
    // clock must not move at all.
    let err = fed.query("SELECT count(*) FROM crm.t").unwrap_err();
    assert_eq!(err.code(), "UNAVAILABLE");
    assert_eq!(
        fed.clock().now_us(),
        clock_after_storm,
        "fail-fast must pay zero wire latency"
    );
    assert_eq!(link.metrics().failures(), 3, "no new wire attempts");
    assert_eq!(link.breaker().fast_failures(), 1);
    assert_eq!(link.breaker().opens(), 1);
}

#[test]
fn partial_results_return_reachable_rows_and_name_the_missing() {
    let fed = two_source_fed();
    fed.configure_breaker(gis::net::BreakerConfig::disabled());
    fed.link("mkt").unwrap().faults().partition();

    // Without opting in, the outage fails the whole query.
    let err = fed.query(UNION_SQL).unwrap_err();
    assert_eq!(err.code(), "NETWORK");

    // Opted in: rows from the reachable source, plus a report.
    let mut exec = fed.exec_options();
    exec.partial_results = true;
    fed.set_exec_options(exec);
    let r = fed.query(UNION_SQL).unwrap();
    assert_eq!(r.batch.num_rows(), 50, "crm's rows still arrive");
    assert!(r.is_degraded());
    let report = r.degraded.as_ref().unwrap();
    assert_eq!(report.sources(), vec!["mkt"]);
    assert_eq!(report.summary(), "missing=[mkt]");

    // EXPLAIN ANALYZE flags the substituted fragment and the report.
    let plan = fed.query(&format!("EXPLAIN ANALYZE {UNION_SQL}")).unwrap();
    let rendered = plan.batch.to_table();
    assert!(
        rendered.contains("degraded[mkt]: NETWORK"),
        "missing degraded span in:\n{rendered}"
    );
    assert!(rendered.contains("-- degraded: missing=[mkt]"));

    // Healing restores complete answers with no flag.
    fed.link("mkt").unwrap().faults().heal();
    let r = fed.query(UNION_SQL).unwrap();
    assert_eq!(r.batch.num_rows(), 80);
    assert!(!r.is_degraded());
}

#[test]
fn degraded_results_never_enter_the_result_cache() {
    let fed = Arc::new(two_source_fed());
    fed.configure_breaker(gis::net::BreakerConfig::disabled());
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let mut session = runtime.session();
    session.set_exec_options(ExecOptions {
        partial_results: true,
        ..ExecOptions::default()
    });

    fed.link("mkt").unwrap().faults().partition();
    let degraded = session.query(UNION_SQL).unwrap();
    assert!(degraded.is_degraded());
    assert_eq!(degraded.batch.num_rows(), 50);

    // The partial answer must not have been cached: the repeat query
    // re-executes (and is itself degraded again).
    let repeat = session.query(UNION_SQL).unwrap();
    assert!(!repeat.metrics.result_cache_hit);
    assert!(repeat.is_degraded());

    // After healing, the complete answer flows — and only *that* one
    // is cached.
    fed.link("mkt").unwrap().faults().heal();
    let healed = session.query(UNION_SQL).unwrap();
    assert!(!healed.metrics.result_cache_hit);
    assert!(!healed.is_degraded());
    assert_eq!(healed.batch.num_rows(), 80);
    let warm = session.query(UNION_SQL).unwrap();
    assert!(warm.metrics.result_cache_hit);
    assert_eq!(warm.batch.num_rows(), 80);
}

#[test]
fn expired_deadlines_cancel_before_any_retry_storm() {
    let fed = Arc::new(one_source_fed(NetworkConditions::wan()));
    fed.set_retry_policy(RetryPolicy::with_max_attempts(10));
    fed.link("crm").unwrap().faults().partition();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let mut session = runtime.session();
    session.set_deadline(Some(std::time::Duration::ZERO));
    let err = session.query("SELECT count(*) FROM crm.t").unwrap_err();
    assert_eq!(err.code(), "DEADLINE");
    assert_eq!(
        fed.link("crm").unwrap().metrics().failures(),
        0,
        "an expired query must not burn round trips against a dead link"
    );
}

#[test]
fn breaker_recovers_through_a_half_open_probe() {
    let fed = one_source_fed(NetworkConditions::wan());
    fed.configure_breaker(gis::net::BreakerConfig {
        failure_threshold: 2,
        cooldown_us: 5_000,
    });
    let link = fed.link("crm").unwrap();
    link.faults().partition();
    fed.query("SELECT count(*) FROM crm.t").unwrap_err();
    assert_eq!(link.breaker_state(), BreakerState::Open);

    // Heal the link and let virtual time pass the cooldown: the next
    // request is a half-open probe, and its success closes the
    // breaker again.
    link.faults().heal();
    fed.clock().advance(10_000);
    let r = fed.query("SELECT count(*) FROM crm.t").unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(100));
    assert_eq!(link.breaker_state(), BreakerState::Closed);
}
