//! Tier-1 replay of the regression corpus under `tests/corpus/`.
//!
//! Every bug the differential fuzzer (or a human) finds becomes a
//! shrunk `.sql` file there; this test replays each one through the
//! oracle and the full config matrix, checking pinned rows / pinned
//! errors and zero cross-config divergence. See `crates/qa`.

use gis_qa::{corpus, Harness};
use std::path::PathBuf;

#[test]
fn corpus_replays_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus dir");
    assert!(
        cases.len() >= 6,
        "expected the checked-in corpus, found {} cases",
        cases.len()
    );
    let harness = Harness::new().expect("harness");
    let mut failures = Vec::new();
    for case in &cases {
        if let Err(e) = corpus::replay(&harness, case) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "corpus failures:\n{}",
        failures.join("\n")
    );
}
