//! The compressed wire protocol end to end: adaptive per-column
//! codecs cut shipped bytes without changing any result, Bloom-filter
//! semijoins beat explicit key lists when the cost model says so, and
//! mediator-side memory accounting stays pinned to decoded sizes.

use gis::prelude::*;
use std::sync::Arc;

fn fedmart() -> FedMart {
    build_fedmart(FedMartConfig::tiny()).expect("fedmart")
}

const JOIN_SQL: &str = "SELECT c.region, p.category, sum(o.amount) AS revenue \
     FROM customers c \
     JOIN orders o ON c.id = o.cust_id \
     JOIN products p ON o.product_id = p.product_id \
     GROUP BY c.region, p.category \
     ORDER BY revenue DESC, c.region, p.category";

#[test]
fn compression_cuts_bytes_and_keeps_results_bit_identical() {
    // Two identical federations (same seed), one with compression
    // forced off — the raw-frame baseline.
    let comp = fedmart().federation;
    let raw = fedmart().federation;
    raw.set_wire_compression(false);
    assert!(comp.wire_compression());
    assert!(!raw.wire_compression());

    let queries = [
        "SELECT * FROM customers ORDER BY id",
        "SELECT * FROM orders ORDER BY order_id",
        JOIN_SQL,
        "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region",
    ];
    for sql in queries {
        let c = comp.query(sql).unwrap();
        let r = raw.query(sql).unwrap();
        assert_eq!(
            format!("{:?}", c.batch.to_rows()),
            format!("{:?}", r.batch.to_rows()),
            "compression changed results for {sql}"
        );
        // Raw frames price raw == wire; compressed frames are charged
        // at their (smaller) encoded size.
        assert_eq!(r.metrics.bytes_raw, r.metrics.bytes_wire, "{sql}");
        assert!(
            c.metrics.bytes_raw > c.metrics.bytes_wire,
            "{sql}: raw={} wire={}",
            c.metrics.bytes_raw,
            c.metrics.bytes_wire
        );
        assert!(
            c.metrics.bytes_shipped < r.metrics.bytes_shipped,
            "{sql}: compressed={} raw={}",
            c.metrics.bytes_shipped,
            r.metrics.bytes_shipped
        );
    }
    // The federation-wide accumulator saw every compressed frame.
    let ws = comp.wire_stats();
    assert!(ws.frames() > 0);
    assert!(ws.raw_bytes() > ws.wire_bytes());
    // The raw federation still encodes (legacy) frames and records
    // them with raw == wire.
    let ws = raw.wire_stats();
    assert_eq!(ws.raw_bytes(), ws.wire_bytes());
}

#[test]
fn compression_also_prices_the_virtual_network_cheaper() {
    let comp = fedmart().federation;
    let raw = fedmart().federation;
    raw.set_wire_compression(false);
    let c = comp
        .query("SELECT * FROM orders ORDER BY order_id")
        .unwrap();
    let r = raw.query("SELECT * FROM orders ORDER BY order_id").unwrap();
    // Fewer bytes through the metered link = less virtual time: the
    // whole point of compressing on a WAN.
    assert!(
        c.metrics.virtual_network_us < r.metrics.virtual_network_us,
        "compressed={}us raw={}us",
        c.metrics.virtual_network_us,
        r.metrics.virtual_network_us
    );
}

#[test]
fn explain_analyze_surfaces_wire_spans() {
    let fed = fedmart().federation;
    let r = fed
        .query("EXPLAIN ANALYZE SELECT * FROM customers ORDER BY id")
        .unwrap();
    let text: String = r
        .batch
        .to_rows()
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("wire[codec="), "{text}");
    assert!(text.contains("raw="), "{text}");
    assert!(text.contains("sent="), "{text}");
}

/// A two-source federation with a *string* join key: the shape where
/// an explicit semijoin key list is expensive (strings don't
/// delta-compress in the request codec) and a Bloom filter shines.
fn string_key_federation() -> (Federation, usize) {
    let fed = Federation::new();
    let users = RelationalAdapter::new("dim");
    let user_schema = Schema::new(vec![
        Field::required("uid", DataType::Utf8),
        Field::new("tier", DataType::Int64),
    ])
    .into_ref();
    users.add_table(RowStore::new("users", user_schema, Some(0)).unwrap());
    let n_users = 300i64;
    users
        .load(
            "users",
            (0..n_users).map(|i| {
                vec![
                    Value::Utf8(format!("user-{i:05}-of-dim")),
                    Value::Int64(i % 5),
                ]
            }),
        )
        .unwrap();

    let facts = RelationalAdapter::new("fact");
    let event_schema = Schema::new(vec![
        Field::required("eid", DataType::Int64),
        Field::new("user", DataType::Utf8),
        Field::new("v", DataType::Int64),
    ])
    .into_ref();
    facts.add_table(RowStore::new("events", event_schema, Some(0)).unwrap());
    // Events are clustered by user: a lookup response (grouped by
    // probe key) and a filter response (table order) then compress
    // identically, so the byte comparison isolates the request side.
    facts
        .load(
            "events",
            (0..2_000i64).map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Utf8(format!("user-{:05}-of-dim", i * n_users / 2_000)),
                    Value::Int64(i * 3),
                ]
            }),
        )
        .unwrap();

    fed.add_source(
        Arc::new(users) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_source(
        Arc::new(facts) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_global_identity("users", "dim", "users").unwrap();
    fed.add_global_identity("events", "fact", "events").unwrap();
    (fed, n_users as usize)
}

#[test]
fn bloom_semijoin_agrees_with_key_list_and_ships_fewer_bytes() {
    let (fed, _) = string_key_federation();
    let sql = "SELECT u.tier, count(*) AS n FROM users u JOIN events e ON u.uid = e.user \
               GROUP BY u.tier ORDER BY u.tier";
    let semijoin = |bloom: bool| {
        fed.set_exec_options(ExecOptions {
            join_strategy: JoinStrategy::SemiJoin,
            bloom_semijoin: bloom,
            ..ExecOptions::default()
        });
        fed.query(sql).unwrap()
    };
    let keys = semijoin(false);
    let bloom = semijoin(true);
    assert_eq!(
        keys.batch.to_rows(),
        bloom.batch.to_rows(),
        "bloom semijoin changed results"
    );
    // 300 distinct ~17-byte string keys ship as ~5KB of explicit
    // list; the Bloom filter is a few hundred bytes and the cost
    // model picks it.
    assert!(
        bloom.metrics.bytes_shipped < keys.metrics.bytes_shipped,
        "bloom={} keys={}",
        bloom.metrics.bytes_shipped,
        keys.metrics.bytes_shipped
    );

    // The trace names the mode each run used.
    for (on, needle) in [(true, "keyship[mode=bloom"), (false, "keyship[mode=keys")] {
        fed.set_exec_options(ExecOptions {
            join_strategy: JoinStrategy::SemiJoin,
            bloom_semijoin: on,
            ..ExecOptions::default()
        });
        let r = fed.query(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let text: String = r
            .batch
            .to_rows()
            .iter()
            .map(|row| row[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn bloom_semijoin_false_positives_are_filtered_by_the_join() {
    // Only a sliver of users appears in events: most event rows must
    // NOT come back, and any Bloom false positives that do must be
    // dropped by the mediator join.
    let fed = Federation::new();
    let users = RelationalAdapter::new("dim");
    let user_schema = Schema::new(vec![Field::required("uid", DataType::Utf8)]).into_ref();
    users.add_table(RowStore::new("users", user_schema, Some(0)).unwrap());
    users
        .load(
            "users",
            (0..200i64).map(|i| vec![Value::Utf8(format!("u{i}"))]),
        )
        .unwrap();
    let facts = RelationalAdapter::new("fact");
    let event_schema = Schema::new(vec![
        Field::required("eid", DataType::Int64),
        Field::new("user", DataType::Utf8),
    ])
    .into_ref();
    facts.add_table(RowStore::new("events", event_schema, Some(0)).unwrap());
    // Event users u0..u9999: only u0..u199 exist in `users`.
    facts
        .load(
            "events",
            (0..10_000i64).map(|i| vec![Value::Int64(i), Value::Utf8(format!("u{i}"))]),
        )
        .unwrap();
    fed.add_source(
        Arc::new(users) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_source(
        Arc::new(facts) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_global_identity("users", "dim", "users").unwrap();
    fed.add_global_identity("events", "fact", "events").unwrap();
    fed.set_exec_options(ExecOptions {
        join_strategy: JoinStrategy::SemiJoin,
        ..ExecOptions::default()
    });
    let r = fed
        .query("SELECT count(*) AS n FROM users u JOIN events e ON u.uid = e.user")
        .unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(200));
}

#[test]
fn result_cache_charges_decoded_size_whatever_the_codec() {
    // Identical federations, one compressed and one raw: the result
    // cache and memory pool account for *decoded* batches, so their
    // gauges must not move with the wire codec.
    let charge = |compress: bool| {
        let fed = fedmart().federation;
        fed.set_wire_compression(compress);
        let runtime = Runtime::new(Arc::new(fed), RuntimeConfig::default());
        let session = runtime.session();
        session.query(JOIN_SQL).unwrap();
        session
            .query("SELECT * FROM customers ORDER BY id")
            .unwrap();
        let stats = runtime.stats();
        runtime.shutdown();
        (
            stats.result_cache_bytes,
            stats.mem_pool_used,
            stats.mem_pool_peak,
        )
    };
    let compressed = charge(true);
    let raw = charge(false);
    assert!(compressed.0 > 0, "result cache holds something");
    assert_eq!(
        compressed, raw,
        "wire codec leaked into memory accounting (compressed={compressed:?} raw={raw:?})"
    );
}
