-- SUBSTR treated a negative or zero start as "clamp to 1", returning
-- too many characters. Postgres semantics: the start index is where
-- the window begins on the number line, so substr('hello', -1, 3)
-- covers positions -1..1 and yields just 'h'.
-- expect: [Utf8("h"), Utf8("he"), Utf8("hello")]
SELECT substr('hello', -1, 3) AS a,
       substr('hello', 0, 3) AS b,
       substr('hello', -10) AS c
