-- FLOOR/CEIL narrowed to Int64 with `as`, which silently saturates:
-- floor(1e30) returned 9223372036854775807 instead of failing. Values
-- outside the Int64 range now raise an execution error.
-- expect-error
SELECT floor(999999999999999999999999999999.0) AS a
