-- Found by gis-qa seed 1066: integer division folds to a Float64
-- literal (831 / 7 = 118.714...), and the kv adapter accepted it as a
-- key-range bound — but the order-preserving key encoding has no
-- float form, so the pushed-down scan errored while the oracle
-- (pushdown off) succeeded. Float bounds now stay mediator-side
-- residuals over a wider scan.
SELECT (t1.quantity + t0.qty) % 3 AS c3
FROM stock AS t0
INNER JOIN orders AS t1 ON t0.product_id = t1.product_id
WHERE t0.product_id < (831 / 7)
