-- ROUND computed 10^digits as a float scale factor; extreme digit
-- counts overflowed it to inf (or 0), turning the result into NaN.
-- Huge positive digits now leave the value unchanged, huge negative
-- digits round to 0.
-- expect: [Float64(2.345), Float64(0.0), Float64(100.0)]
SELECT round(2.345, 4000000000) AS a,
       round(5.0, -1000) AS b,
       round(123.456, -2) AS c
