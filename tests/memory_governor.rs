//! The memory governor end to end: per-query budgets spilling hash
//! kernels to disk with bit-identical answers, hard-limit kills that
//! leave concurrent queries untouched, pool-level admission control,
//! and the governor's observability surface (EXPLAIN ANALYZE spans,
//! runtime stats, metrics exposition).

use gis::prelude::*;
use std::sync::Arc;

fn fedmart() -> FedMart {
    build_fedmart(FedMartConfig::tiny()).expect("fedmart")
}

/// A query that exercises every governed kernel: hash join build,
/// group-by table, and an ORDER BY sort buffer.
const HASH_HEAVY: &str = "SELECT c.region, sum(o.amount) AS revenue \
     FROM customers c JOIN orders o ON c.id = o.cust_id \
     GROUP BY c.region ORDER BY revenue DESC";

/// A point lookup that needs no tracked reservations at all — it must
/// survive even a 1-byte budget with spilling disabled.
const POINT_LOOKUP: &str = "SELECT name, region FROM customers WHERE id = 7";

fn canon(batch: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = batch
        .to_rows()
        .into_iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    rows
}

/// Forced spilling is invisible in the answer: a runtime whose every
/// hash kernel degrades to disk returns bit-identical rows, and the
/// degradation shows up in the runtime counters instead.
#[test]
fn spilling_runtime_matches_unbounded_results() {
    let expected = {
        let fm = fedmart();
        canon(&fm.federation.query(HASH_HEAVY).unwrap().batch)
    };

    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_workers(2)
            .with_query_mem_limit(1), // everything spills
    );
    let session = runtime.session();
    let got = session.query(HASH_HEAVY).unwrap();
    assert_eq!(canon(&got.batch), expected);

    let stats = runtime.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.mem_killed, 0);
    assert!(stats.spill_events > 0, "1-byte budget must force spills");
    assert!(stats.spilled_bytes > 0);
    // The exposition carries the same story for scrapers.
    let text = runtime.render_text();
    assert!(text.contains("gis_spill_events_total"), "{text}");
    assert!(text.contains("gis_mem_pool_bytes"), "{text}");
    assert!(
        text.contains("gis_queries_total{state=\"mem_killed\"} 0"),
        "{text}"
    );
}

/// With spilling disabled, the same budget kills the query with a
/// clean `MEM` error — while in-budget queries on the same runtime
/// keep completing, and the pool is fully reclaimed afterwards.
#[test]
fn hard_limit_kills_one_query_not_the_runtime() {
    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_workers(4)
            .with_query_mem_limit(1)
            .with_spill_cap(0) // degradation off: excess is fatal
            .with_plan_cache_capacity(0)
            .with_result_cache_bytes(0),
    );

    std::thread::scope(|scope| {
        for t in 0..4 {
            let runtime = &runtime;
            scope.spawn(move || {
                for _ in 0..3 {
                    let session = runtime.session();
                    if t % 2 == 0 {
                        let err = session.query(HASH_HEAVY).unwrap_err();
                        assert_eq!(err.code(), "MEM", "{err}");
                    } else {
                        let r = session.query(POINT_LOOKUP).unwrap();
                        assert_eq!(r.batch.num_rows(), 1);
                    }
                }
            });
        }
    });

    let stats = runtime.stats();
    assert_eq!(stats.mem_killed, 6, "every hash query dies");
    assert_eq!(stats.completed, 6, "every point lookup survives");
    assert_eq!(stats.failed, 0, "kills are MEM, not generic failures");
    // Every budget was dropped: nothing may linger in the pool.
    assert_eq!(stats.mem_pool_used, 0, "pool must be fully reclaimed");
}

/// Concurrent queries racing for the last pool bytes: with a pool far
/// smaller than the aggregate demand, some queries are killed (or
/// refused at admission) with `MEM` — but nothing deadlocks, nothing
/// fails with any other error, and the pool drains back to zero.
#[test]
fn pool_contention_kills_cleanly_and_reclaims() {
    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_workers(4)
            .with_queue_depth(256)
            .with_total_mem_pool(192 * 1024) // ~one hash build's worth
            .with_spill_cap(0)
            .with_plan_cache_capacity(0)
            .with_result_cache_bytes(0),
    );

    let mut ok = 0u64;
    let mut mem = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..8 {
            let runtime = &runtime;
            handles.push(scope.spawn(move || {
                let mut ok = 0u64;
                let mut mem = 0u64;
                let session = runtime.session();
                for _ in 0..4 {
                    match session.query(HASH_HEAVY) {
                        Ok(r) => {
                            assert!(r.batch.num_rows() > 0);
                            ok += 1;
                        }
                        Err(e) => {
                            assert_eq!(e.code(), "MEM", "{e}");
                            mem += 1;
                        }
                    }
                }
                (ok, mem)
            }));
        }
        for h in handles {
            let (o, m) = h.join().unwrap();
            ok += o;
            mem += m;
        }
    });

    assert_eq!(ok + mem, 32, "every query resolves, none hang");
    assert!(ok > 0, "queries within the pool must still complete");
    let stats = runtime.stats();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.mem_killed + stats.mem_rejected, mem);
    assert_eq!(
        stats.mem_pool_used, 0,
        "pool fully reclaimed after the race"
    );
    assert!(stats.mem_pool_peak > 0, "the race must have used the pool");
}

/// A `ResourceExhausted` query leaves nothing behind in the result
/// cache: the next attempt re-executes (and dies again) instead of
/// serving a phantom cached answer.
#[test]
fn killed_queries_never_enter_the_result_cache() {
    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_query_mem_limit(1)
            .with_spill_cap(0),
    );
    let session = runtime.session();
    for _ in 0..2 {
        let err = session.query(HASH_HEAVY).unwrap_err();
        assert_eq!(err.code(), "MEM", "{err}");
    }
    let stats = runtime.stats();
    assert_eq!(stats.mem_killed, 2, "second run re-executed and died too");
    assert_eq!(stats.result_cache_bytes, 0, "no partial result was cached");
    assert_eq!(stats.result_cache_hits, 0);
}

/// EXPLAIN ANALYZE on a governed runtime annotates spilling kernels
/// with `mem[...]` and `spill[...]` spans.
#[test]
fn explain_analyze_shows_governor_spans() {
    let fm = fedmart();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default().with_query_mem_limit(1),
    );
    let session = runtime.session();
    let r = session
        .query(&format!("EXPLAIN ANALYZE {HASH_HEAVY}"))
        .unwrap();
    let text: String = r
        .batch
        .to_rows()
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("mem["), "missing mem span:\n{text}");
    assert!(text.contains("spill["), "missing spill span:\n{text}");
    assert!(text.contains("reserved_peak_bytes="), "{text}");
}

/// The governor defaults to off: an untouched `RuntimeConfig` tracks
/// nothing, spills nothing, and kills nothing.
#[test]
fn default_config_is_ungoverned() {
    let fm = fedmart();
    let runtime = Runtime::new(Arc::new(fm.federation), RuntimeConfig::default());
    let session = runtime.session();
    session.query(HASH_HEAVY).unwrap();
    let stats = runtime.stats();
    assert_eq!(stats.spill_events, 0);
    assert_eq!(stats.mem_killed, 0);
    assert_eq!(stats.mem_rejected, 0);
    assert_eq!(stats.mem_pool_capacity, u64::MAX);
}
