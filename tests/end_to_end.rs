//! Workspace-level integration tests: the full stack through the
//! umbrella crate's public API, on the FedMart workload.

use gis::prelude::*;

fn fed() -> FedMart {
    build_fedmart(FedMartConfig::tiny()).expect("fedmart")
}

#[test]
fn counts_match_generator_sizes() {
    let fm = fed();
    let f = &fm.federation;
    let count = |sql: &str| -> i64 {
        match f.query(sql).unwrap().batch.row_values(0)[0] {
            Value::Int64(n) => n,
            ref other => panic!("unexpected {other:?}"),
        }
    };
    assert_eq!(
        count("SELECT count(*) FROM customers"),
        fm.sizes.customers as i64
    );
    assert_eq!(count("SELECT count(*) FROM orders"), fm.sizes.orders as i64);
    assert_eq!(
        count("SELECT count(*) FROM products"),
        fm.sizes.products as i64
    );
    assert_eq!(
        count("SELECT count(*) FROM stock"),
        (fm.sizes.products * fm.sizes.warehouses) as i64
    );
    assert_eq!(count("SELECT count(*) FROM regions"), 8);
}

#[test]
fn referential_integrity_via_anti_join() {
    let fm = fed();
    // Every order's customer exists: ANTI join must be empty.
    let r = fm
        .federation
        .query("SELECT o.order_id FROM orders o ANTI JOIN customers c ON o.cust_id = c.id")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 0);
    // And every order's product exists.
    let r2 = fm
        .federation
        .query(
            "SELECT o.order_id FROM orders o ANTI JOIN products p ON o.product_id = p.product_id",
        )
        .unwrap();
    assert_eq!(r2.batch.num_rows(), 0);
}

#[test]
fn aggregate_decomposition_consistency() {
    // sum over a join grouped one way must total the same as grouped
    // another way and as the ungrouped sum.
    let fm = fed();
    let f = &fm.federation;
    let total = match f
        .query("SELECT sum(amount) FROM orders")
        .unwrap()
        .batch
        .row_values(0)[0]
    {
        Value::Float64(v) => v,
        ref other => panic!("unexpected {other:?}"),
    };
    for group_col in ["c.region", "c.tier"] {
        let sql = format!(
            "SELECT {group_col}, sum(o.amount) FROM customers c \
             JOIN orders o ON c.id = o.cust_id GROUP BY {group_col}"
        );
        let r = f.query(&sql).unwrap();
        let grouped: f64 = r
            .batch
            .to_rows()
            .iter()
            .map(|row| match &row[1] {
                Value::Float64(v) => *v,
                _ => 0.0,
            })
            .sum();
        assert!(
            (grouped - total).abs() < 1e-6 * total.abs().max(1.0),
            "{group_col}: {grouped} != {total}"
        );
    }
}

#[test]
fn subqueries_and_unions_compose() {
    let fm = fed();
    let r = fm
        .federation
        .query(
            "SELECT region, n FROM \
             (SELECT region, count(*) AS n FROM customers GROUP BY region) AS per_region \
             WHERE n > 0 ORDER BY n DESC, region LIMIT 3",
        )
        .unwrap();
    assert_eq!(r.batch.num_rows(), 3);
    let union = fm
        .federation
        .query(
            "SELECT id FROM customers WHERE id < 2 \
             UNION ALL SELECT product_id FROM products WHERE product_id < 2 \
             ORDER BY 1",
        )
        .unwrap();
    assert_eq!(union.batch.num_rows(), 4);
}

#[test]
fn scalar_functions_over_federated_data() {
    let fm = fed();
    let r = fm
        .federation
        .query(
            "SELECT upper(substr(name, 1, 4)) AS prefix, length(name) AS len \
             FROM customers WHERE id = 0",
        )
        .unwrap();
    let row = r.batch.row_values(0);
    assert_eq!(row[0], Value::Utf8("CUST".into()));
    assert!(matches!(row[1], Value::Int64(n) if n > 4));
    let r2 = fm
        .federation
        .query("SELECT year(since) AS y FROM customers WHERE id = 0")
        .unwrap();
    assert!(matches!(r2.batch.row_values(0)[0], Value::Int64(y) if (1989..=2022).contains(&y)));
}

#[test]
fn case_and_distinct_aggregates() {
    let fm = fed();
    let r = fm
        .federation
        .query(
            "SELECT count(DISTINCT cust_id) AS buyers, \
                    sum(CASE WHEN amount > 500.0 THEN 1 ELSE 0 END) AS big \
             FROM orders",
        )
        .unwrap();
    let row = r.batch.row_values(0);
    let buyers = match row[0] {
        Value::Int64(n) => n,
        ref o => panic!("{o:?}"),
    };
    assert!(buyers > 0 && buyers <= fm.sizes.customers as i64);
    assert!(matches!(row[1], Value::Int64(b) if b > 0));
}

#[test]
fn strategy_forcing_is_result_invariant_on_fedmart() {
    let fm = fed();
    let f = &fm.federation;
    let sql = "SELECT c.tier, count(*) AS n FROM customers c \
               JOIN orders o ON c.id = o.cust_id \
               WHERE c.balance > 0.0 GROUP BY c.tier ORDER BY c.tier";
    let mut reference = None;
    for strategy in [
        JoinStrategy::ShipWhole,
        JoinStrategy::SemiJoin,
        JoinStrategy::BindJoin,
    ] {
        f.set_exec_options(ExecOptions {
            join_strategy: strategy,
            bind_batch_size: 17, // deliberately odd chunking
            ..ExecOptions::default()
        });
        let rows = f.query(sql).unwrap().batch.to_rows();
        match &reference {
            None => reference = Some(rows),
            Some(want) => assert_eq!(&rows, want),
        }
    }
}

#[test]
fn optimizer_ablations_are_result_invariant() {
    let fm = fed();
    let f = &fm.federation;
    let sql = "SELECT c.region, sum(o.amount) AS rev FROM customers c \
               JOIN orders o ON c.id = o.cust_id \
               WHERE o.quantity >= 10 AND c.balance > -100.0 \
               GROUP BY c.region ORDER BY rev DESC";
    let reference = f.query(sql).unwrap().batch.to_rows();
    for opts in [
        OptimizerOptions::naive(),
        OptimizerOptions {
            predicate_pushdown: false,
            ..OptimizerOptions::default()
        },
        OptimizerOptions {
            projection_pruning: false,
            ..OptimizerOptions::default()
        },
        OptimizerOptions {
            join_reorder: false,
            ..OptimizerOptions::default()
        },
        OptimizerOptions {
            fold_constants: false,
            ..OptimizerOptions::default()
        },
    ] {
        f.set_optimizer_options(opts);
        let rows = f.query(sql).unwrap().batch.to_rows();
        assert_eq!(rows, reference, "ablation {opts:?} changed results");
    }
}

#[test]
fn parallel_fetch_is_result_invariant() {
    let fm = build_fedmart(FedMartConfig {
        sales_partitions: 4,
        ..FedMartConfig::tiny()
    })
    .unwrap();
    let f = &fm.federation;
    let sql = format!(
        "SELECT cust_id, count(*) AS n FROM {} \
         GROUP BY cust_id ORDER BY n DESC, cust_id LIMIT 20",
        fm.orders_from_clause()
    );
    f.set_exec_options(ExecOptions::default());
    let sequential = f.query(&sql).unwrap();
    f.set_exec_options(ExecOptions {
        parallel_fetch: true,
        ..ExecOptions::default()
    });
    let parallel = f.query(&sql).unwrap();
    assert_eq!(sequential.batch.to_rows(), parallel.batch.to_rows());
    assert_eq!(
        sequential.metrics.bytes_shipped,
        parallel.metrics.bytes_shipped
    );
    // The busiest-link bound is below the sequential total when work
    // is spread over several sources.
    assert!(
        parallel.metrics.virtual_parallel_us() < parallel.metrics.virtual_network_us,
        "parallel bound {} vs sequential {}",
        parallel.metrics.virtual_parallel_us(),
        parallel.metrics.virtual_network_us
    );
}

#[test]
fn metrics_are_consistent() {
    let fm = fed();
    let r = fm
        .federation
        .query("SELECT name FROM customers WHERE id < 5")
        .unwrap();
    let per_source_bytes: u64 = r.metrics.per_source.values().map(|t| t.bytes).sum();
    assert_eq!(per_source_bytes, r.metrics.bytes_shipped);
    let per_source_msgs: u64 = r.metrics.per_source.values().map(|t| t.messages).sum();
    assert_eq!(per_source_msgs, r.metrics.messages);
    assert_eq!(r.metrics.rows_returned, 5);
    assert!(r.metrics.virtual_network_us > 0);
}

#[test]
fn explain_mentions_every_source_used() {
    let fm = fed();
    let plan = fm
        .federation
        .explain(
            "SELECT c.name, p.pname FROM customers c \
             JOIN orders o ON c.id = o.cust_id \
             JOIN products p ON o.product_id = p.product_id \
             WHERE c.id = 1",
        )
        .unwrap();
    assert!(plan.contains("crm"), "{plan}");
    assert!(plan.contains("sales"), "{plan}");
    assert!(plan.contains("inventory"), "{plan}");
}

#[test]
fn order_by_with_nulls_and_offsets() {
    let fm = fed();
    let r = fm
        .federation
        .query("SELECT id, balance FROM customers ORDER BY balance DESC LIMIT 5 OFFSET 2")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 5);
    let balances: Vec<f64> = r
        .batch
        .to_rows()
        .iter()
        .map(|row| match row[1] {
            Value::Float64(v) => v,
            _ => f64::NAN,
        })
        .collect();
    for w in balances.windows(2) {
        assert!(w[0] >= w[1], "not descending: {balances:?}");
    }
}
