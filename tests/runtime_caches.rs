//! Cache semantics of the serving runtime: plan-cache hits, result
//! reuse with zero traffic, invalidation on source loads and mapping
//! changes, and session-scoped ablation.

use gis::prelude::*;
use std::sync::Arc;

/// A one-source federation where the test keeps a handle on the
/// adapter, so it can load data *behind the runtime's back* the way
/// an autonomous source would.
fn fed_with_adapter() -> (Arc<Federation>, Arc<RelationalAdapter>) {
    let fed = Federation::new();
    let crm = Arc::new(RelationalAdapter::new("crm"));
    let schema = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("region", DataType::Utf8),
    ])
    .into_ref();
    crm.add_table(RowStore::new("customers", schema, Some(0)).unwrap());
    crm.load(
        "customers",
        (0..20i64).map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(if i % 2 == 0 { "east" } else { "west" }.into()),
            ]
        }),
    )
    .unwrap();
    fed.add_source(
        crm.clone() as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_global_identity("customers", "crm", "customers")
        .unwrap();
    (Arc::new(fed), crm)
}

#[test]
fn repeated_queries_hit_both_caches_with_zero_traffic() {
    let (fed, _crm) = fed_with_adapter();
    let runtime = Runtime::new(fed, RuntimeConfig::default());
    let session = runtime.session();
    let sql = "SELECT region, count(*) FROM customers GROUP BY region ORDER BY region";

    let cold = session.query(sql).unwrap();
    assert!(!cold.metrics.plan_cache_hit);
    assert!(!cold.metrics.result_cache_hit);
    assert!(cold.metrics.bytes_shipped > 0);

    // Same query again — whitespace changes must not matter.
    let warm = session
        .query("SELECT region,  count(*)\n FROM customers GROUP BY region ORDER BY region")
        .unwrap();
    assert!(warm.metrics.plan_cache_hit);
    assert!(warm.metrics.result_cache_hit);
    assert_eq!(warm.metrics.bytes_shipped, 0, "a result hit ships nothing");
    assert_eq!(warm.metrics.messages, 0);
    assert_eq!(warm.batch.to_rows(), cold.batch.to_rows());

    let stats = runtime.stats();
    assert_eq!(stats.plan_cache_hits, 1);
    assert_eq!(stats.result_cache_hits, 1);
    assert!(stats.result_cache_bytes > 0);
}

#[test]
fn result_cache_invalidates_on_source_load() {
    let (fed, crm) = fed_with_adapter();
    let runtime = Runtime::new(fed, RuntimeConfig::default());
    let session = runtime.session();
    let sql = "SELECT count(*) FROM customers";

    let before = session.query(sql).unwrap();
    assert_eq!(before.batch.row_values(0)[0], Value::Int64(20));
    assert!(session.query(sql).unwrap().metrics.result_cache_hit);

    // The source loads new rows — the cached result is now a lie.
    crm.load(
        "customers",
        (20..25i64).map(|i| vec![Value::Int64(i), Value::Utf8("east".into())]),
    )
    .unwrap();

    let after = session.query(sql).unwrap();
    assert!(
        !after.metrics.result_cache_hit,
        "load must invalidate the cached result"
    );
    // The plan is still valid — only the data moved.
    assert!(after.metrics.plan_cache_hit);
    assert_eq!(after.batch.row_values(0)[0], Value::Int64(25));
    // And the refreshed result is cached again.
    let again = session.query(sql).unwrap();
    assert!(again.metrics.result_cache_hit);
    assert_eq!(again.batch.row_values(0)[0], Value::Int64(25));
}

#[test]
fn caches_invalidate_on_mapping_change() {
    let (fed, _crm) = fed_with_adapter();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let session = runtime.session();
    let sql = "SELECT count(*) FROM customers";

    session.query(sql).unwrap();
    assert!(session.query(sql).unwrap().metrics.plan_cache_hit);

    // Any catalog mutation (here: redefining the global mapping) bumps
    // the catalog version, orphaning cached plans and results.
    fed.add_global_identity("customers", "crm", "customers")
        .unwrap();
    let after = session.query(sql).unwrap();
    assert!(
        !after.metrics.plan_cache_hit,
        "mapping change must invalidate cached plans"
    );
    assert!(
        !after.metrics.result_cache_hit,
        "mapping change must invalidate cached results"
    );
}

#[test]
fn analyze_bumps_catalog_version_and_reoptimizes_cached_plans() {
    let (fed, _crm) = fed_with_adapter();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let session = runtime.session();
    let sql = "SELECT id, region FROM customers WHERE id = 7";

    session.query(sql).unwrap();
    assert!(session.query(sql).unwrap().metrics.plan_cache_hit);

    // ANALYZE refreshes statistics through Catalog::update_stats,
    // which bumps the catalog version — orphaning every cached plan,
    // because those plans were costed against the old picture.
    let before = fed.catalog_version();
    let analyzed = session.query("ANALYZE crm.customers").unwrap();
    assert_eq!(analyzed.metrics.rows_returned, 1);
    assert!(
        fed.catalog_version() > before,
        "ANALYZE must bump the catalog version"
    );

    let after = session.query(sql).unwrap();
    assert!(
        !after.metrics.plan_cache_hit,
        "post-ANALYZE query must re-optimize against the new stats"
    );
    // The re-optimized plan answers identically, and is cached anew.
    assert!(session.query(sql).unwrap().metrics.plan_cache_hit);
}

#[test]
fn session_scoped_ablation_disables_caching() {
    let (fed, _crm) = fed_with_adapter();
    let runtime = Runtime::new(fed, RuntimeConfig::default());
    let mut cold_session = runtime.session();
    cold_session.set_caching(false);
    let sql = "SELECT count(*) FROM customers";

    for _ in 0..3 {
        let r = cold_session.query(sql).unwrap();
        assert!(!r.metrics.plan_cache_hit);
        assert!(!r.metrics.result_cache_hit);
        assert!(r.metrics.bytes_shipped > 0, "ablated queries re-execute");
    }
    let stats = runtime.stats();
    assert_eq!(stats.plan_cache_hits, 0);
    assert_eq!(stats.result_cache_hits, 0);

    // A caching session on the same runtime is unaffected by the
    // ablated one — and vice versa.
    let warm_session = runtime.session();
    warm_session.query(sql).unwrap();
    assert!(warm_session.query(sql).unwrap().metrics.result_cache_hit);
    let r = cold_session.query(sql).unwrap();
    assert!(!r.metrics.result_cache_hit);
}

#[test]
fn session_options_do_not_leak_into_shared_state() {
    let (fed, _crm) = fed_with_adapter();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let shared_before = fed.optimizer_options();

    let mut naive = runtime.session();
    naive.set_optimizer_options(OptimizerOptions::naive());
    naive.set_exec_options(ExecOptions::naive());
    let default_session = runtime.session();

    let sql = "SELECT region, count(*) FROM customers WHERE id >= 4 \
               GROUP BY region ORDER BY region";
    let a = naive.query(sql).unwrap();
    let b = default_session.query(sql).unwrap();
    assert_eq!(a.batch.to_rows(), b.batch.to_rows());
    // The naive plan ships more (no pushdown) — different plans really ran.
    assert!(a.metrics.bytes_shipped > b.metrics.bytes_shipped);
    // Federation-wide options are untouched by session overrides.
    assert_eq!(
        format!("{:?}", fed.optimizer_options()),
        format!("{shared_before:?}")
    );
}

#[test]
fn explain_bypasses_caches() {
    let (fed, _crm) = fed_with_adapter();
    let runtime = Runtime::new(fed, RuntimeConfig::default());
    let session = runtime.session();
    let sql = "EXPLAIN SELECT count(*) FROM customers";
    let a = session.query(sql).unwrap();
    let b = session.query(sql).unwrap();
    assert!(!b.metrics.result_cache_hit);
    assert_eq!(a.batch.to_rows(), b.batch.to_rows());
    assert!(b.metrics.query_id > a.metrics.query_id);
}
