//! Tier-1 smoke run of the differential fuzzer: a bounded seed range
//! through the full config matrix must produce zero divergences.
//!
//! CI additionally runs the `gis-qa` binary over a much larger range;
//! this keeps a fast always-on slice in `cargo test`.

use gis_qa::Harness;

#[test]
fn bounded_seed_range_has_no_divergences() {
    let harness = Harness::new().expect("harness");
    let report = harness.run_seeds(0, 48, false);
    assert_eq!(report.queries_run, 48);
    // Every generated query must at least be executable by the
    // reference configuration.
    assert_eq!(report.oracle_errors, 0, "oracle rejected generated SQL");
    assert_eq!(
        report.total_divergences(),
        0,
        "divergences:\n{}",
        report.render()
    );
}
