//! Integration tests for autonomy failures: transient loss,
//! partitions, and the retry policy — exercised through the public
//! API with the fault hooks the simulated network exposes.

use gis::adapters::RemoteSource;
use gis::net::Link;
use gis::net::SimClock;
use gis::prelude::*;
use gis::storage::RowStore;
use std::sync::Arc;

fn one_source_fed() -> (Federation, String) {
    let fed = Federation::new();
    let adapter = RelationalAdapter::new("crm");
    let schema = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("v", DataType::Int64),
    ])
    .into_ref();
    adapter.add_table(RowStore::new("t", schema, Some(0)).unwrap());
    adapter
        .load(
            "t",
            (0..100i64).map(|i| vec![Value::Int64(i), Value::Int64(i * i)]),
        )
        .unwrap();
    fed.add_source(
        Arc::new(adapter) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    (fed, "crm".into())
}

/// Builds a standalone remote source for adapter-level fault
/// scripting. Federation-level tests script the same faults through
/// [`Federation::link`] instead.
fn standalone_remote() -> RemoteSource {
    let adapter = RelationalAdapter::new("crm");
    let schema = Schema::new(vec![Field::required("id", DataType::Int64)]).into_ref();
    adapter.add_table(RowStore::new("t", schema, Some(0)).unwrap());
    adapter
        .load("t", (0..10i64).map(|i| vec![Value::Int64(i)]))
        .unwrap();
    RemoteSource::new(
        Arc::new(adapter),
        Link::new("crm", NetworkConditions::wan(), SimClock::new()),
    )
}

#[test]
fn queries_survive_transient_failures() {
    let remote = standalone_remote();
    remote.link().faults().fail_next(2);
    let req = gis::adapters::SourceRequest::Scan {
        table: "t".into(),
        predicates: vec![],
        projection: vec![],
        sort: vec![],
        limit: None,
    };
    let batches = remote.execute(&req).unwrap();
    let total: usize = batches.iter().map(|b| b.num_rows()).sum();
    assert_eq!(total, 10);
    assert_eq!(remote.link().metrics().failures(), 2);
}

#[test]
fn partition_fails_after_retries_with_retryable_error() {
    let remote = standalone_remote();
    remote.link().faults().partition();
    let req = gis::adapters::SourceRequest::Scan {
        table: "t".into(),
        predicates: vec![],
        projection: vec![],
        sort: vec![],
        limit: None,
    };
    let err = remote.execute(&req).unwrap_err();
    assert!(err.is_retryable());
    remote.link().faults().heal();
    assert!(remote.execute(&req).is_ok());
}

#[test]
fn periodic_faults_slow_but_do_not_break() {
    let remote = standalone_remote();
    remote.link().faults().fail_every(5);
    let req = gis::adapters::SourceRequest::Scan {
        table: "t".into(),
        predicates: vec![],
        projection: vec![],
        sort: vec![],
        limit: None,
    };
    // Several queries in a row: retries absorb the periodic faults.
    for _ in 0..10 {
        let batches = remote.execute(&req).unwrap();
        assert_eq!(batches.iter().map(|b| b.num_rows()).sum::<usize>(), 10);
    }
    assert!(remote.link().metrics().failures() > 0);
}

#[test]
fn federation_link_scripts_faults_through_public_api() {
    let (fed, src) = one_source_fed();
    let link = fed.link(&src).unwrap();
    // Transient loss: the retry policy absorbs it, the counters see it.
    link.faults().fail_next(2);
    let r = fed.query("SELECT count(*) FROM crm.t").unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(100));
    assert_eq!(link.metrics().failures(), 2);
    assert_eq!(r.metrics.failures, 2);
    // Partition: retries exhaust, the error is retryable, healing fixes it.
    link.faults().partition();
    let err = fed.query("SELECT count(*) FROM crm.t").unwrap_err();
    assert!(err.is_retryable());
    link.faults().heal();
    assert!(fed.query("SELECT count(*) FROM crm.t").is_ok());
    // Unknown sources error instead of returning a dead link.
    assert!(fed.link("ghost").is_err());
}

#[test]
fn federation_queries_fail_loudly_on_unknown_source_tables() {
    let (fed, _) = one_source_fed();
    assert!(fed.query("SELECT * FROM crm.nope").is_err());
    assert!(fed.query("SELECT * FROM ghost.t").is_err());
}

#[test]
fn stats_refresh_reflects_new_data() {
    let (fed, src) = one_source_fed();
    let before = fed
        .catalog()
        .resolve(Some(&src), "t")
        .unwrap()
        .table
        .stats
        .unwrap()
        .row_count;
    assert_eq!(before, 100);
    fed.refresh_stats(&src, "t").unwrap();
    let after = fed
        .catalog()
        .resolve(Some(&src), "t")
        .unwrap()
        .table
        .stats
        .unwrap()
        .row_count;
    assert_eq!(after, 100);
    assert!(fed.refresh_stats("ghost", "t").is_err());
}

#[test]
fn virtual_clock_isolates_queries_from_host_speed() {
    let (fed, _) = one_source_fed();
    let r1 = fed.query("SELECT count(*) FROM crm.t").unwrap();
    let r2 = fed.query("SELECT count(*) FROM crm.t").unwrap();
    // Same query, same plan → identical virtual time, whatever the
    // host was doing.
    assert_eq!(r1.metrics.virtual_network_us, r2.metrics.virtual_network_us);
    assert_eq!(r1.metrics.bytes_shipped, r2.metrics.bytes_shipped);
}
