//! Concurrency stress tests for the serving runtime: many threads,
//! mixed queries, exact traffic accounting, admission control, and
//! deadlines — all through the public `Runtime`/`Session` API.

use gis::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The mixed workload: aggregates, cross-source joins, filters with
/// varying literals, and point lookups.
fn workload() -> Vec<String> {
    let mut queries = vec![
        "SELECT count(*) FROM customers".to_string(),
        "SELECT count(*), sum(amount) FROM orders".to_string(),
        "SELECT region, count(*) FROM customers GROUP BY region ORDER BY region".to_string(),
        "SELECT c.tier, sum(o.amount) AS rev FROM customers c \
         JOIN orders o ON c.id = o.cust_id GROUP BY c.tier ORDER BY rev DESC"
            .to_string(),
        "SELECT category, count(*) FROM products GROUP BY category ORDER BY category".to_string(),
    ];
    for day in ["2019-09-01", "2020-06-15", "2021-03-01"] {
        queries.push(format!(
            "SELECT count(*) FROM orders WHERE order_day >= DATE '{day}'"
        ));
    }
    for id in [1, 7, 42] {
        queries.push(format!(
            "SELECT name, region FROM customers WHERE id = {id}"
        ));
    }
    queries
}

/// Canonical, order-insensitive rendering of a result batch.
fn canon(batch: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = batch
        .to_rows()
        .into_iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    rows
}

fn link_totals(fed: &Federation) -> Vec<(String, u64, u64)> {
    fed.source_names()
        .into_iter()
        .map(|s| {
            let link = fed.link(&s).unwrap();
            let (bytes, messages) = (link.metrics().bytes(), link.metrics().messages());
            (s, bytes, messages)
        })
        .collect()
}

/// N threads × M mixed queries: per-query results match a
/// single-threaded run of the identical federation, and the
/// *aggregate* per-source traffic is exactly equal — concurrency must
/// not lose or double-count a single byte or message.
#[test]
fn stress_matches_single_threaded_results_and_traffic() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let queries = workload();

    // Sequential baseline on one deterministic federation build.
    let baseline = gis::datagen::build_fedmart(FedMartConfig::tiny()).unwrap();
    let mut expected = Vec::new();
    for sql in &queries {
        expected.push(canon(&baseline.federation.query(sql).unwrap().batch));
    }
    // The concurrent run repeats the workload THREADS×ROUNDS times, so
    // scale the sequential traffic accordingly before comparing.
    let seq_base = link_totals(&baseline.federation);
    for sql in &queries {
        for _ in 1..THREADS * ROUNDS {
            baseline.federation.query(sql).unwrap();
        }
    }
    let seq_totals = link_totals(&baseline.federation);

    // Concurrent run on an identical build. The result cache is off:
    // every query must actually execute for traffic to be comparable.
    let fm = gis::datagen::build_fedmart(FedMartConfig::tiny()).unwrap();
    let fed = Arc::new(fm.federation);
    let runtime = Runtime::new(
        fed.clone(),
        RuntimeConfig::default()
            .with_workers(THREADS)
            .with_queue_depth(1024),
    );
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = &runtime;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut session = runtime.session();
                session.set_result_cache(false);
                if t % 2 == 0 {
                    session.set_priority(Priority::High);
                }
                for round in 0..ROUNDS {
                    for (i, sql) in queries.iter().enumerate() {
                        let result = session.query(sql).unwrap();
                        assert_eq!(
                            canon(&result.batch),
                            expected[i],
                            "thread {t} round {round} query {i} diverged"
                        );
                        assert!(result.metrics.query_id > 0);
                        assert!(!result.metrics.result_cache_hit);
                    }
                }
            });
        }
    });
    let stats = runtime.stats();
    assert_eq!(stats.completed as usize, THREADS * ROUNDS * queries.len());
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);

    // Aggregate accounting: exactly the sequential totals, per source.
    let conc_totals = link_totals(&fed);
    for ((src, seq_bytes, seq_msgs), (csrc, cbytes, cmsgs)) in seq_totals.iter().zip(&conc_totals) {
        assert_eq!(src, csrc);
        assert_eq!(seq_bytes, cbytes, "byte totals diverged on '{src}'");
        assert_eq!(seq_msgs, cmsgs, "message totals diverged on '{src}'");
    }
    // Sanity: the workload really did touch every source.
    for ((_, bytes, _), (_, base_bytes, _)) in seq_totals.iter().zip(&seq_base) {
        assert!(bytes > base_bytes);
    }
}

/// Overload: a single slow worker and a tiny queue. Excess load is
/// rejected with `OVERLOADED` fast — never deadlocked — and every
/// admitted query still completes correctly.
#[test]
fn admission_control_rejects_excess_load_without_deadlock() {
    let fm = gis::datagen::build_fedmart(FedMartConfig::tiny()).unwrap();
    let fed = Arc::new(fm.federation);
    let runtime = Runtime::new(
        fed,
        RuntimeConfig::default().with_workers(1).with_queue_depth(2),
    );
    let mut session = runtime.session();
    session.set_result_cache(false); // every query must occupy the worker
    let sql = "SELECT c.region, sum(o.amount) FROM customers c \
               JOIN orders o ON c.id = o.cust_id GROUP BY c.region";
    let mut pending = Vec::new();
    let mut rejected = 0;
    for _ in 0..50 {
        match session.submit(sql) {
            Ok(p) => pending.push(p),
            Err(e) => {
                assert_eq!(e.code(), "OVERLOADED");
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "50 rapid submits must overflow depth 2");
    assert!(!pending.is_empty());
    for p in pending {
        let result = p.wait().unwrap();
        assert!(result.batch.num_rows() > 0);
    }
    let stats = runtime.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.failed, 0);
}

/// Deadlines cancel queries with `DEADLINE` instead of hanging.
#[test]
fn deadlines_cancel_queries() {
    let fm = gis::datagen::build_fedmart(FedMartConfig::tiny()).unwrap();
    let runtime = Runtime::new(Arc::new(fm.federation), RuntimeConfig::default());
    let mut session = runtime.session();
    session.set_deadline(Some(Duration::ZERO));
    let err = session.query("SELECT count(*) FROM orders").unwrap_err();
    assert_eq!(err.code(), "DEADLINE");
    assert_eq!(runtime.stats().deadline_expired, 1);
    // Clearing the deadline restores normal service.
    session.set_deadline(None);
    assert!(session.query("SELECT count(*) FROM orders").is_ok());
}

/// Shutdown completes in-flight queries and fails queued ones loudly.
#[test]
fn shutdown_drains_cleanly() {
    let fm = gis::datagen::build_fedmart(FedMartConfig::tiny()).unwrap();
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default().with_workers(2),
    );
    let session = runtime.session();
    let pending: Vec<_> = (0..4)
        .map(|_| session.submit("SELECT count(*) FROM customers").unwrap())
        .collect();
    runtime.shutdown();
    // Every pending query resolves: either a result (it was in flight)
    // or an OVERLOADED shutdown error (it was still queued).
    for p in pending {
        match p.wait() {
            Ok(r) => assert_eq!(r.batch.num_rows(), 1),
            Err(e) => assert_eq!(e.code(), "OVERLOADED"),
        }
    }
}
