//! Differential tests for federated materialized views: every query a
//! view answers must return *bit-identical* rows to the same query
//! answered from the sources, across the staleness edges (pre-refresh,
//! post-write, mid-refresh) and under partial results. The source path
//! is obtained by re-running the same SQL with
//! [`ExecOptions::view_matching`] off — same plan, same federation,
//! only the rewrite disabled.

use gis::prelude::*;
use std::sync::Arc;

/// A two-source federation: `crm.customers` (20 rows) and
/// `mkt.orders` (60 rows, 3 per customer), joinable on id.
fn fed_with_adapters() -> (
    Arc<Federation>,
    Arc<RelationalAdapter>,
    Arc<RelationalAdapter>,
) {
    let fed = Federation::new();
    let crm = Arc::new(RelationalAdapter::new("crm"));
    let customers = Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("region", DataType::Utf8),
    ])
    .into_ref();
    crm.add_table(RowStore::new("customers", customers, Some(0)).unwrap());
    crm.load(
        "customers",
        (0..20i64).map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(if i % 2 == 0 { "east" } else { "west" }.into()),
            ]
        }),
    )
    .unwrap();
    let mkt = Arc::new(RelationalAdapter::new("mkt"));
    let orders = Schema::new(vec![
        Field::required("cust_id", DataType::Int64),
        Field::new("amount", DataType::Int64),
    ])
    .into_ref();
    mkt.add_table(RowStore::new("orders", orders, None).unwrap());
    mkt.load(
        "orders",
        (0..60i64).map(|i| vec![Value::Int64(i % 20), Value::Int64(10 + i)]),
    )
    .unwrap();
    fed.add_source(
        crm.clone() as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_source(
        mkt.clone() as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )
    .unwrap();
    fed.add_global_identity("customers", "crm", "customers")
        .unwrap();
    fed.add_global_identity("orders", "mkt", "orders").unwrap();
    (Arc::new(fed), crm, mkt)
}

/// Runs `sql` with view matching disabled — the source-answered
/// baseline every view-answered result is diffed against.
fn source_path(fed: &Federation, sql: &str) -> QueryResult {
    let exec = ExecOptions {
        view_matching: false,
        ..fed.exec_options()
    };
    fed.query_with(sql, &fed.optimizer_options(), &exec)
        .unwrap()
}

const JOIN_SQL: &str = "SELECT c.region, sum(o.amount) AS revenue \
     FROM customers c JOIN orders o ON c.id = o.cust_id \
     GROUP BY c.region ORDER BY c.region";

#[test]
fn fresh_view_answers_bit_identical_with_zero_traffic() {
    let (fed, _crm, _mkt) = fed_with_adapters();
    let baseline = source_path(&fed, JOIN_SQL);
    assert!(baseline.metrics.bytes_shipped > 0);

    fed.create_materialized_view("rev_by_region", JOIN_SQL)
        .unwrap();

    let hit = fed.query(JOIN_SQL).unwrap();
    assert_eq!(hit.metrics.views_used, vec!["rev_by_region".to_string()]);
    assert_eq!(
        hit.metrics.bytes_shipped, 0,
        "a fresh exact match ships nothing"
    );
    assert_eq!(hit.batch.to_rows(), baseline.batch.to_rows());
    // The counters saw the hit.
    let (hits, _, refreshes, _) = fed.views().get("rev_by_region").unwrap().counters();
    assert_eq!(hits, 1);
    assert_eq!(refreshes, 1);
}

#[test]
fn subsumed_scan_is_compensated_bit_identically() {
    let (fed, _crm, _mkt) = fed_with_adapters();
    // The view is *wider* than the query: all customer columns, no
    // filter. The matcher must compensate with a residual filter and
    // projection over the materialized rows.
    fed.create_materialized_view("cust_all", "SELECT id, region FROM customers")
        .unwrap();
    for sql in [
        "SELECT region FROM customers WHERE id < 7 ORDER BY region",
        "SELECT id FROM customers WHERE region = 'east' ORDER BY id",
        "SELECT id, region FROM customers ORDER BY id LIMIT 5",
    ] {
        let baseline = source_path(&fed, sql);
        let via_view = fed.query(sql).unwrap();
        assert_eq!(
            via_view.metrics.views_used,
            vec!["cust_all".to_string()],
            "query should match the view: {sql}"
        );
        assert_eq!(
            via_view.batch.to_rows(),
            baseline.batch.to_rows(),
            "differential mismatch for: {sql}"
        );
        assert_eq!(via_view.metrics.bytes_shipped, 0);
    }
}

#[test]
fn post_write_staleness_falls_back_then_refresh_restores_the_hit() {
    let (fed, crm, _mkt) = fed_with_adapters();
    let sql = "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region";
    fed.create_materialized_view("cust_by_region", sql).unwrap();
    assert!(fed.query(sql).unwrap().metrics.bytes_shipped == 0);

    // A write behind the mediator's back: the view is now stale and a
    // Manual-policy view must NOT answer — rows come from the source
    // and reflect the write.
    crm.load(
        "customers",
        vec![vec![Value::Int64(100), Value::Utf8("east".into())]],
    )
    .unwrap();
    let after_write = fed.query(sql).unwrap();
    assert!(
        after_write.metrics.views_used.is_empty(),
        "stale view must not answer"
    );
    assert!(after_write.metrics.bytes_shipped > 0);
    assert_eq!(
        after_write.batch.to_rows(),
        source_path(&fed, sql).batch.to_rows()
    );
    let (_, stale_skips, _, _) = fed.views().get("cust_by_region").unwrap().counters();
    assert!(stale_skips >= 1);

    // REFRESH re-ships only this view's fragment and restores hits.
    fed.query("REFRESH MATERIALIZED VIEW cust_by_region")
        .unwrap();
    let warm = fed.query(sql).unwrap();
    assert_eq!(warm.metrics.bytes_shipped, 0);
    assert_eq!(warm.batch.to_rows(), after_write.batch.to_rows());
}

#[test]
fn on_query_if_stale_refreshes_lazily_and_stays_identical() {
    let (fed, crm, _mkt) = fed_with_adapters();
    let sql = "SELECT count(*) AS n FROM customers";
    fed.create_materialized_view_with("cust_count", sql, RefreshPolicy::OnQueryIfStale)
        .unwrap();
    crm.load(
        "customers",
        vec![vec![Value::Int64(200), Value::Utf8("west".into())]],
    )
    .unwrap();

    // The stale view refreshes synchronously, then answers — rows
    // must match the post-write source truth, not the stale snapshot.
    let r = fed.query(sql).unwrap();
    assert_eq!(r.metrics.views_used, vec!["cust_count".to_string()]);
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(21));
    assert_eq!(r.batch.to_rows(), source_path(&fed, sql).batch.to_rows());
    let (_, _, refreshes, _) = fed.views().get("cust_count").unwrap().counters();
    assert_eq!(refreshes, 2, "create + lazy refresh");

    // An unrelated query must not trigger a refresh of this view.
    crm.load(
        "customers",
        vec![vec![Value::Int64(201), Value::Utf8("west".into())]],
    )
    .unwrap();
    fed.query("SELECT cust_id FROM orders WHERE cust_id = 0")
        .unwrap();
    let (_, _, refreshes, _) = fed.views().get("cust_count").unwrap().counters();
    assert_eq!(refreshes, 2, "non-matching query must not refresh");
}

#[test]
fn mid_refresh_queries_always_see_a_consistent_snapshot() {
    let (fed, crm, _mkt) = fed_with_adapters();
    // Snapshot counts are 20, 30, 40, …: every valid answer is a
    // multiple of 10 (each load is one atomic chunk of 10 rows).
    let sql = "SELECT count(*) AS n FROM customers";
    fed.create_materialized_view_with("cc", sql, RefreshPolicy::Manual)
        .unwrap();

    let writer_fed = fed.clone();
    let writer = std::thread::spawn(move || {
        for chunk in 0..8i64 {
            let base = 1_000 + chunk * 10;
            crm.load(
                "customers",
                (base..base + 10).map(|i| vec![Value::Int64(i), Value::Utf8("east".into())]),
            )
            .unwrap();
            // Refresh racing the queries below: the swap is atomic, so
            // readers see the old rows or the new rows, never a mix.
            writer_fed.refresh_materialized_view("cc").unwrap();
        }
    });
    for _ in 0..24 {
        let n = match &fed.query(sql).unwrap().batch.row_values(0)[0] {
            Value::Int64(n) => *n,
            other => panic!("unexpected count value {other:?}"),
        };
        assert!(
            (20..=100).contains(&n) && n % 10 == 0,
            "count {n} is not a valid snapshot"
        );
    }
    writer.join().unwrap();
    // Settled: the view answers with the final snapshot, identically
    // to the sources.
    fed.refresh_materialized_view("cc").unwrap();
    let settled = fed.query(sql).unwrap();
    assert_eq!(settled.batch.row_values(0)[0], Value::Int64(100));
    assert_eq!(
        settled.batch.to_rows(),
        source_path(&fed, sql).batch.to_rows()
    );
}

#[test]
fn fresh_view_answers_completely_through_a_source_outage() {
    let (fed, crm, _mkt) = fed_with_adapters();
    fed.configure_breaker(gis::net::BreakerConfig::disabled());
    let sql = "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region";
    fed.create_materialized_view("cbr", sql).unwrap();
    let baseline = fed.query(sql).unwrap();

    // The source goes dark. The fresh view still answers — complete,
    // not degraded, zero traffic.
    fed.link("crm").unwrap().faults().partition();
    let mut exec = fed.exec_options();
    exec.partial_results = true;
    fed.set_exec_options(exec);
    let r = fed.query(sql).unwrap();
    assert!(!r.is_degraded(), "a fresh view is a complete answer");
    assert_eq!(r.metrics.bytes_shipped, 0);
    assert_eq!(r.batch.to_rows(), baseline.batch.to_rows());

    // A write makes the view stale; with the source still down the
    // fallback degrades (and the stale view must not silently answer).
    fed.link("crm").unwrap().faults().heal();
    crm.load(
        "customers",
        vec![vec![Value::Int64(300), Value::Utf8("east".into())]],
    )
    .unwrap();
    fed.link("crm").unwrap().faults().partition();
    let degraded = fed.query(sql).unwrap();
    assert!(degraded.is_degraded());
    assert!(degraded.metrics.views_used.is_empty());
}

#[test]
fn explain_analyze_names_the_view_span() {
    let (fed, _crm, _mkt) = fed_with_adapters();
    fed.create_materialized_view("rev", JOIN_SQL).unwrap();
    let rendered = fed
        .query(&format!("EXPLAIN ANALYZE {JOIN_SQL}"))
        .unwrap()
        .batch
        .to_table();
    assert!(
        rendered.contains("view[rev]"),
        "missing view span in:\n{rendered}"
    );
}

#[test]
fn ddl_round_trips_through_sql_and_sessions() {
    let (fed, _crm, _mkt) = fed_with_adapters();
    let created = fed
        .query(
            "CREATE MATERIALIZED VIEW east_ids AS SELECT id FROM customers WHERE region = 'east'",
        )
        .unwrap();
    assert!(created
        .batch
        .to_table()
        .contains("created materialized view east_ids"));
    assert_eq!(fed.views().len(), 1);

    // Errors: duplicate name, global-table shadowing, unknown view,
    // and a malformed statement with a byte-offset span.
    assert!(fed
        .query("CREATE MATERIALIZED VIEW east_ids AS SELECT id FROM customers")
        .is_err());
    assert!(fed
        .query("CREATE MATERIALIZED VIEW customers AS SELECT id FROM customers")
        .is_err());
    assert!(fed.query("REFRESH MATERIALIZED VIEW nope").is_err());
    let err = fed
        .query("CREATE MATERIALIZED VIEW x SELECT 1")
        .unwrap_err();
    assert!(err.to_string().contains("near byte"), "got: {err}");

    // The runtime session routes the same DDL.
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let session = runtime.session();
    session.query("REFRESH MATERIALIZED VIEW east_ids").unwrap();
    let dropped = session.query("DROP MATERIALIZED VIEW east_ids").unwrap();
    assert!(dropped
        .batch
        .to_table()
        .contains("dropped materialized view east_ids"));
    assert_eq!(fed.views().len(), 0);
}

#[test]
fn interval_policy_refreshes_on_the_virtual_clock() {
    let (fed, crm, _mkt) = fed_with_adapters();
    let sql = "SELECT count(*) AS n FROM customers";
    fed.create_materialized_view_with("cc_interval", sql, RefreshPolicy::Interval { every_us: 1 })
        .unwrap();
    crm.load(
        "customers",
        vec![vec![Value::Int64(400), Value::Utf8("east".into())]],
    )
    .unwrap();

    // The runtime's workers run maintenance between jobs; WAN traffic
    // advances the virtual clock past the interval.
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let session = runtime.session();
    session
        .query("SELECT cust_id FROM orders WHERE cust_id = 1")
        .unwrap();
    let r = session.query(sql).unwrap();
    assert_eq!(r.batch.row_values(0)[0], Value::Int64(21));
    let (_, _, refreshes, _) = fed.views().get("cc_interval").unwrap().counters();
    assert!(refreshes >= 2, "create + interval maintenance");
}

#[test]
fn runtime_renders_view_gauges() {
    let (fed, crm, _mkt) = fed_with_adapters();
    fed.create_materialized_view("gauge_view", "SELECT id FROM customers")
        .unwrap();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let session = runtime.session();
    session
        .query("SELECT id FROM customers ORDER BY id LIMIT 3")
        .unwrap();

    let text = runtime.render_text();
    assert!(
        text.contains("gis_view_fresh{view=\"gauge_view\""),
        "{text}"
    );
    assert!(text.contains("gis_view_hits_total{view=\"gauge_view\"}"));
    assert!(text.contains("gis_view_rows{view=\"gauge_view\"}"));
    assert!(text.contains("gis_view_refreshes_total{view=\"gauge_view\"} 1"));

    // Staleness shows up as fresh=0 with a lagging-source count.
    crm.load(
        "customers",
        vec![vec![Value::Int64(500), Value::Utf8("east".into())]],
    )
    .unwrap();
    let text = runtime.render_text();
    assert!(
        text.contains("gis_view_lagging_sources{view=\"gauge_view\"} 1"),
        "{text}"
    );
}

#[test]
fn view_matching_is_invisible_to_the_result_cache() {
    // The result cache pins the *source* versions a plan reads; a
    // view answering the same plan must not change those semantics.
    let (fed, crm, _mkt) = fed_with_adapters();
    let runtime = Runtime::new(fed.clone(), RuntimeConfig::default());
    let session = runtime.session();
    let sql = "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region";

    fed.create_materialized_view("cbr2", sql).unwrap();
    let cold = session.query(sql).unwrap();
    assert_eq!(cold.metrics.bytes_shipped, 0, "view answered");
    assert!(session.query(sql).unwrap().metrics.result_cache_hit);

    // A write invalidates the cached result AND staleness-gates the
    // view: rows must come back from the source, reflecting the write.
    crm.load(
        "customers",
        vec![vec![Value::Int64(600), Value::Utf8("west".into())]],
    )
    .unwrap();
    let after = session.query(sql).unwrap();
    assert!(!after.metrics.result_cache_hit);
    assert!(after.metrics.views_used.is_empty());
    assert_eq!(
        after.batch.to_rows(),
        source_path(&fed, sql).batch.to_rows()
    );
}
