//! Property-based end-to-end equivalence: randomly generated
//! predicates and query shapes must return identical results whether
//! the full optimizer + cost-based strategies run or the naive
//! mediator ships everything. This is the strongest invariant the
//! engine has — any pushdown/inversion/strategy bug breaks it.

use gis::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared tiny federation (building per-case would dominate).
fn fedmart() -> &'static FedMart {
    static FM: OnceLock<FedMart> = OnceLock::new();
    FM.get_or_init(|| build_fedmart(FedMartConfig::tiny()).expect("fedmart"))
}

/// A second federation reserved for the fault-equivalence test: it
/// scripts faults on the links, which would poison the other tests
/// (they run on parallel threads against the shared instance above).
/// Its breakers are disabled so failures can't accumulate across
/// proptest cases and flip error codes mid-run.
fn faulted_fedmart() -> &'static FedMart {
    static FM: OnceLock<FedMart> = OnceLock::new();
    FM.get_or_init(|| {
        let fm = build_fedmart(FedMartConfig::tiny()).expect("fedmart");
        fm.federation
            .configure_breaker(gis::net::BreakerConfig::disabled());
        fm
    })
}

/// A fault script the retry layer is guaranteed to absorb, encoded as
/// (fail_next, fail_every, slow_next). Exactly one kind per case:
/// combinations can stack into three consecutive drops (the periodic
/// counter persists across cases, so it may fire right after the
/// counted losses) and exhaust the attempt budget.
fn absorbable_fault() -> impl Strategy<Value = (u32, u32, u32)> {
    prop_oneof![
        // Counted transient loss strictly below the 3-attempt budget.
        (1u32..=2).prop_map(|n| (n, 0, 0)),
        // Periodic loss: a retried message shifts off the period.
        (4u32..=6).prop_map(|k| (0, k, 0)),
        // Latency brownout: everything delivered, just slower.
        (1u32..=10).prop_map(|n| (0, 0, n)),
    ]
}

/// A random conjunct over the `orders` global table.
fn order_predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..1000).prop_map(|k| format!("order_id < {k}")),
        (0i64..1000).prop_map(|k| format!("order_id >= {k}")),
        (0i64..100).prop_map(|k| format!("cust_id = {k}")),
        (1i64..20).prop_map(|q| format!("quantity >= {q}")),
        (0i64..2000).prop_map(|a| format!("amount > {a}.0")),
        Just("order_day >= DATE '2020-01-01'".to_string()),
        (0i64..100).prop_map(|k| format!("NOT (cust_id = {k})")),
        (0i64..50).prop_map(|k| format!("product_id IN ({k}, {}, {})", k + 1, k + 7)),
    ]
}

/// A random conjunct over `customers` (exercises mapping inversion:
/// balance is linear-transformed, tier is value-mapped).
fn customer_predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..100).prop_map(|k| format!("id < {k}")),
        (-500i64..50_000).prop_map(|b| format!("balance > {b}.0")),
        prop_oneof![
            Just("'bronze'".to_string()),
            Just("'silver'".to_string()),
            Just("'gold'".to_string()),
        ]
        .prop_map(|t| format!("tier = {t}")),
        Just("region LIKE '%th'".to_string()),
        Just("name IS NOT NULL".to_string()),
    ]
}

fn run_both(sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let fed = &fedmart().federation;
    fed.set_optimizer_options(OptimizerOptions::default());
    fed.set_exec_options(ExecOptions::default());
    let mut smart = fed.query(sql).expect("optimized run").batch.to_rows();
    fed.set_optimizer_options(OptimizerOptions::naive());
    fed.set_exec_options(ExecOptions::naive());
    let mut naive = fed.query(sql).expect("naive run").batch.to_rows();
    fed.set_optimizer_options(OptimizerOptions::default());
    fed.set_exec_options(ExecOptions::default());
    smart.sort();
    naive.sort();
    (smart, naive)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn filtered_scans_agree(p1 in order_predicate(), p2 in order_predicate()) {
        let sql = format!(
            "SELECT order_id, cust_id, amount FROM orders WHERE {p1} AND {p2}"
        );
        let (smart, naive) = run_both(&sql);
        prop_assert_eq!(smart, naive, "sql: {}", sql);
    }

    #[test]
    fn mapped_scans_agree(p in customer_predicate()) {
        let sql = format!("SELECT id, tier, balance FROM customers WHERE {p}");
        let (smart, naive) = run_both(&sql);
        prop_assert_eq!(smart, naive, "sql: {}", sql);
    }

    #[test]
    fn joins_agree(pc in customer_predicate(), po in order_predicate()) {
        let sql = format!(
            "SELECT c.id, o.order_id FROM customers c \
             JOIN orders o ON c.id = o.cust_id WHERE {pc} AND {po}"
        );
        let (smart, naive) = run_both(&sql);
        prop_assert_eq!(smart, naive, "sql: {}", sql);
    }

    #[test]
    fn aggregates_agree(p in order_predicate()) {
        let sql = format!(
            "SELECT cust_id, count(*) AS n, sum(amount) AS s \
             FROM orders WHERE {p} GROUP BY cust_id"
        );
        let (smart, naive) = run_both(&sql);
        // Float sums may differ in the last ulp across plans that add
        // in different orders; compare with tolerance.
        prop_assert_eq!(smart.len(), naive.len(), "sql: {}", sql);
        for (a, b) in smart.iter().zip(&naive) {
            prop_assert_eq!(&a[0], &b[0], "sql: {}", sql);
            prop_assert_eq!(&a[1], &b[1], "sql: {}", sql);
            match (&a[2], &b[2]) {
                (Value::Float64(x), Value::Float64(y)) => {
                    prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "sql: {}", sql)
                }
                (x, y) => prop_assert_eq!(x, y, "sql: {}", sql),
            }
        }
    }

    #[test]
    fn limits_agree(p in order_predicate(), limit in 1u64..50) {
        // LIMIT without ORDER BY is nondeterministic in general; our
        // engine is deterministic per plan but plans differ, so only
        // compare row COUNTS (and that each row actually satisfies
        // a recheck via count query).
        let sql = format!(
            "SELECT order_id FROM orders WHERE {p} LIMIT {limit}"
        );
        let (smart, naive) = run_both(&sql);
        prop_assert_eq!(smart.len(), naive.len(), "sql: {}", sql);
        let count_sql = format!("SELECT count(*) FROM orders WHERE {p}");
        let fed = &fedmart().federation;
        let total = match fed.query(&count_sql).unwrap().batch.row_values(0)[0] {
            Value::Int64(n) => n as usize,
            _ => unreachable!(),
        };
        prop_assert_eq!(smart.len(), total.min(limit as usize), "sql: {}", sql);
    }

    #[test]
    fn faults_change_metrics_but_never_rows(
        p in order_predicate(),
        fault in absorbable_fault(),
        target in 0usize..3,
    ) {
        let (fail_next, fail_every, slow_n) = fault;
        // Same query, faultless vs. under scripted absorbable faults:
        // retries and brownouts may change traffic and timing, but the
        // rows must be identical. This is the resilience layer's core
        // contract — faults the engine survives are invisible in data.
        let fed = &faulted_fedmart().federation;
        let sql = format!(
            "SELECT c.id, o.order_id, o.amount FROM customers c \
             JOIN orders o ON c.id = o.cust_id WHERE {p}"
        );
        let mut clean = fed.query(&sql).expect("faultless run").batch.to_rows();

        let source = ["crm", "sales", "inventory"][target];
        let link = fed.link(source).expect("link");
        link.faults().fail_next(fail_next);
        link.faults().fail_every(fail_every);
        link.faults().slow_next(slow_n, 7);
        let faulted = fed.query(&sql).expect("faulted run");
        // Clear the script so the next case starts clean.
        link.faults().fail_next(0);
        link.faults().fail_every(0);
        link.faults().slow_next(0, 1);

        let mut rows = faulted.batch.to_rows();
        clean.sort();
        rows.sort();
        prop_assert_eq!(rows, clean, "sql: {} faults on {}", sql, source);
        prop_assert!(faulted.degraded.is_none(), "absorbed faults are not degradation");
    }

    #[test]
    fn kv_scans_agree(lo in 0i64..50, width in 1i64..20) {
        let hi = lo + width;
        let sql = format!(
            "SELECT product_id, warehouse, qty FROM stock \
             WHERE product_id >= {lo} AND product_id < {hi} AND qty > 100"
        );
        let (smart, naive) = run_both(&sql);
        prop_assert_eq!(smart, naive, "sql: {}", sql);
    }
}
