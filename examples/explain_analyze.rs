//! EXPLAIN ANALYZE over a three-source federated join.
//!
//! Runs a revenue rollup that touches all three FedMart sources
//! (customers on `crm`, orders on `sales`, products on `inventory`)
//! and prints the annotated operator tree: per-operator rows in/out,
//! wire bytes, and wall time — including the spans each *source*
//! reported for its own work, shipped back over the metered links.
//!
//! ```sh
//! cargo run --example explain_analyze
//! ```

use gis::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    let fm = gis::datagen::build_fedmart(FedMartConfig::tiny())?;

    let sql = "SELECT c.region, p.category, sum(o.amount) AS revenue \
               FROM customers c \
               JOIN orders o ON c.id = o.cust_id \
               JOIN products p ON o.product_id = p.product_id \
               GROUP BY c.region, p.category \
               ORDER BY revenue DESC LIMIT 5";

    // 1. The annotated plan: every operator with rows/bytes/time,
    //    remote fragments with source-reported subtrees.
    println!("-- EXPLAIN ANALYZE {sql}\n");
    let explained = fm.federation.query(&format!("EXPLAIN ANALYZE {sql}"))?;
    for row in explained.batch.to_rows() {
        println!("{}", row[0]);
    }

    // 2. The same federation behind a serving runtime, with the
    //    slow-query log armed: anything over 1 ms is recorded with
    //    its span tree.
    let runtime = Runtime::new(
        Arc::new(fm.federation),
        RuntimeConfig::default()
            .with_workers(2)
            .with_slow_query_us(Some(1_000)),
    );
    let session = runtime.session();
    let result = session.query(sql)?;
    println!(
        "\n-- result ({}):\n{}",
        result.metrics.summary(),
        result.batch.to_table()
    );

    for entry in runtime.slow_queries() {
        println!("{}", entry.render());
    }

    // 3. The scrape surface: runtime, cache, and per-link counters.
    println!("-- metrics exposition\n{}", runtime.render_text());
    runtime.shutdown();
    Ok(())
}
