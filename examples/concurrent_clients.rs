//! Concurrent clients: wrap a federation in the serving runtime and
//! drive it from several threads at once — sessions, priorities,
//! caches, deadlines and admission control in one tour.
//!
//! ```sh
//! cargo run --example concurrent_clients
//! ```

use gis::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    // A ready-made three-source retail federation behind a runtime:
    // 4 workers, a bounded admission queue, plan + result caches.
    let fm = gis::datagen::build_fedmart(FedMartConfig::tiny())?;
    let fed = Arc::new(fm.federation);
    let runtime = Runtime::new(
        fed,
        RuntimeConfig::default()
            .with_workers(4)
            .with_queue_depth(64),
    );

    // 1. Four client threads, each with its own session. Sessions are
    //    cheap handles; per-session knobs never leak across clients.
    let queries = [
        "SELECT region, count(*) FROM customers GROUP BY region ORDER BY region",
        "SELECT count(*), sum(amount) FROM orders",
        "SELECT c.tier, sum(o.amount) AS rev FROM customers c \
         JOIN orders o ON c.id = o.cust_id GROUP BY c.tier ORDER BY rev DESC",
        "SELECT category, count(*) FROM products GROUP BY category ORDER BY category",
    ];
    std::thread::scope(|scope| {
        for (t, sql) in queries.iter().enumerate() {
            let runtime = &runtime;
            scope.spawn(move || {
                let mut session = runtime.session();
                if t == 0 {
                    // A dashboard client that must not wait behind
                    // analysts: the high lane is always served first.
                    session.set_priority(Priority::High);
                }
                for round in 0..3 {
                    let r = session.query(sql).expect("query");
                    println!(
                        "client {t} round {round}: {} rows, plan_hit={} result_hit={} \
                         queue_wait={}us",
                        r.batch.num_rows(),
                        r.metrics.plan_cache_hit,
                        r.metrics.result_cache_hit,
                        r.metrics.queue_wait_us,
                    );
                }
            });
        }
    });

    // 2. Deadlines: a session-scoped budget turns slow queries into
    //    fast `DEADLINE` errors instead of indefinite waits.
    let mut impatient = runtime.session();
    impatient.set_deadline(Some(Duration::ZERO));
    let err = impatient
        .query("SELECT count(*) FROM orders")
        .expect_err("a zero deadline always expires");
    println!("\nimpatient client: {err}");

    // 3. Ablation: caching is per-session, so one client can measure
    //    cold costs while the rest of the fleet stays warm.
    let mut cold = runtime.session();
    cold.set_caching(false);
    let r = cold.query(queries[0])?;
    println!(
        "ablated client: {} bytes shipped (caches off, query re-executed)",
        r.metrics.bytes_shipped
    );

    // 4. The runtime's own counters.
    println!("\n{}", runtime.stats().to_table());
    runtime.shutdown();
    Ok(())
}
