//! Quickstart: build a two-source federation by hand, declare a
//! global mapping, and run federated SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gis::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // 1. A federation: one global schema, a shared virtual clock, a
    //    metered simulated network per source.
    let fed = Federation::new();

    // 2. First component system: a relational CRM with a legacy
    //    export schema (int32 keys, balances in cents).
    let crm = RelationalAdapter::new("crm");
    let customers = Schema::new(vec![
        Field::required("cust_no", DataType::Int32),
        Field::new("nm", DataType::Utf8),
        Field::new("bal_cents", DataType::Int64),
    ])
    .into_ref();
    let mut store = RowStore::new("customers", customers, Some(0))?;
    for (i, (name, cents)) in [
        ("ada", 12000),
        ("grace", 8750),
        ("edsger", -325),
        ("barbara", 99000),
    ]
    .iter()
    .enumerate()
    {
        store.insert(vec![
            Value::Int32(i as i32),
            Value::Utf8((*name).into()),
            Value::Int64(*cents),
        ])?;
    }
    crm.add_table(store);
    fed.add_source(
        Arc::new(crm) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )?;

    // 3. Second component system: a scan-only column store of orders.
    let sales = ColumnarAdapter::new("sales");
    let orders = Schema::new(vec![
        Field::required("order_id", DataType::Int64),
        Field::new("cust_id", DataType::Int64),
        Field::new("amount", DataType::Float64),
    ])
    .into_ref();
    let mut ostore = ColumnStore::new("orders", orders);
    for (oid, cust, amount) in [
        (1, 0, 19.99),
        (2, 0, 5.00),
        (3, 1, 120.00),
        (4, 3, 7.25),
        (5, 3, 64.10),
        (6, 3, 1.99),
    ] {
        ostore.append(vec![
            Value::Int64(oid),
            Value::Int64(cust),
            Value::Float64(amount),
        ])?;
    }
    sales.add_table(ostore);
    fed.add_source(
        Arc::new(sales) as Arc<dyn SourceAdapter>,
        NetworkConditions::wan(),
    )?;

    // 4. The global schema: rename, widen and convert units so users
    //    never see the CRM's legacy representation.
    fed.add_global_mapping(TableMapping {
        global_name: "customers".into(),
        source: "crm".into(),
        source_table: "customers".into(),
        columns: vec![
            ColumnMapping {
                global: Field::required("id", DataType::Int64),
                source_column: "cust_no".into(),
                transform: Transform::Cast(DataType::Int64),
            },
            ColumnMapping {
                global: Field::new("name", DataType::Utf8),
                source_column: "nm".into(),
                transform: Transform::Identity,
            },
            ColumnMapping {
                global: Field::new("balance", DataType::Float64),
                source_column: "bal_cents".into(),
                transform: Transform::Linear {
                    factor: 0.01,
                    offset: 0.0,
                    to: DataType::Float64,
                },
            },
        ],
    })?;
    fed.add_global_identity("orders", "sales", "orders")?;

    // 5. Federated SQL. The mediator pushes what each source can run
    //    and joins at the mediator with a cost-chosen strategy.
    let sql = "SELECT c.name, c.balance, count(*) AS orders, sum(o.amount) AS spent \
               FROM customers c JOIN orders o ON c.id = o.cust_id \
               GROUP BY c.name, c.balance \
               ORDER BY spent DESC";
    println!("-- {sql}\n");
    let result = fed.query(sql)?;
    println!("{}", result.batch.to_table());
    println!("metrics: {}", result.metrics.summary());

    // 6. EXPLAIN shows the decomposition.
    println!("\n{}", fed.explain(sql)?);
    Ok(())
}
