//! Retail analytics over the FedMart federation: the workload the
//! evaluation section sweeps, run once, with per-query traffic
//! reporting — shows how strategy choice and pushdown change what
//! crosses the wire.
//!
//! ```sh
//! cargo run --example retail_analytics
//! ```

use gis::prelude::*;

fn main() -> Result<()> {
    let fm = build_fedmart(FedMartConfig::default())?;
    let fed = &fm.federation;
    println!(
        "FedMart: {} customers / {} orders / {} products\n",
        fm.sizes.customers, fm.sizes.orders, fm.sizes.products
    );

    let queries: &[(&str, &str)] = &[
        (
            "Q1: revenue by region (aggregate pushed to crm? no — join)",
            "SELECT c.region, round(sum(o.amount), 2) AS revenue \
             FROM customers c JOIN orders o ON c.id = o.cust_id \
             GROUP BY c.region ORDER BY revenue DESC",
        ),
        (
            "Q2: gold-tier big spenders (selective semijoin)",
            "SELECT c.name, sum(o.amount) AS spent \
             FROM customers c JOIN orders o ON c.id = o.cust_id \
             WHERE c.tier = 'gold' AND c.balance > 40000.0 \
             GROUP BY c.name ORDER BY spent DESC LIMIT 10",
        ),
        (
            "Q3: category revenue (three-way, KV products)",
            "SELECT p.category, round(sum(o.amount), 2) AS revenue \
             FROM orders o JOIN products p ON o.product_id = p.product_id \
             GROUP BY p.category ORDER BY revenue DESC",
        ),
        (
            "Q4: aggregate fully pushed to the relational source",
            "SELECT region, count(*) AS customers, round(avg(balance), 2) AS avg_balance \
             FROM customers GROUP BY region ORDER BY customers DESC",
        ),
        (
            "Q5: recent big orders (pushdown into the column store)",
            "SELECT order_id, amount FROM orders \
             WHERE order_day >= DATE '2021-06-01' AND amount > 800.0 \
             ORDER BY amount DESC LIMIT 5",
        ),
    ];

    for (title, sql) in queries {
        let result = fed.query(sql)?;
        println!("== {title}");
        println!("{}", result.batch.to_table());
        println!("   {}\n", result.metrics.summary());
    }

    // The same query under forced strategies: watch the bytes move.
    let sql = "SELECT c.name, o.amount FROM customers c \
               JOIN orders o ON c.id = o.cust_id WHERE c.balance > 49000.0";
    println!("== strategy comparison for:\n   {sql}");
    for strategy in [
        JoinStrategy::ShipWhole,
        JoinStrategy::SemiJoin,
        JoinStrategy::BindJoin,
        JoinStrategy::Auto,
    ] {
        fed.set_exec_options(ExecOptions {
            join_strategy: strategy,
            ..ExecOptions::default()
        });
        let r = fed.query(sql)?;
        println!(
            "   {:<10} rows={:<5} bytes={:<9} msgs={:<4} net_ms={:.1}",
            strategy.name(),
            r.batch.num_rows(),
            r.metrics.bytes_shipped,
            r.metrics.messages,
            r.metrics.virtual_network_ms()
        );
    }
    Ok(())
}
