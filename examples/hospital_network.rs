//! A hospital network federation — the classic GIS motivating
//! scenario: patient registries at independent sites, a shared lab
//! system, and a national drug catalog, each autonomous, queried
//! through one global schema.
//!
//! Demonstrates: multi-site UNION views, schema mappings with value
//! recodes (site-local sex codes → global strings), fault injection
//! (a site drops off the network mid-session), and per-source
//! traffic attribution.
//!
//! ```sh
//! cargo run --example hospital_network
//! ```

use gis::prelude::*;
use std::sync::Arc;

fn patients_site(name: &str, id_base: i64, n: i64) -> Result<RelationalAdapter> {
    let site = RelationalAdapter::new(name);
    let schema = Schema::new(vec![
        Field::required("pid", DataType::Int64),
        Field::new("surname", DataType::Utf8),
        Field::new("sex_code", DataType::Int32),
        Field::new("birth", DataType::Date),
    ])
    .into_ref();
    let mut store = RowStore::new("patients", schema, Some(0))?;
    for i in 0..n {
        store.insert(vec![
            Value::Int64(id_base + i),
            Value::Utf8(format!("{name}-fam{i}")),
            Value::Int32((i % 2 + 1) as i32),
            Value::Date(-(i * 137 % 20000) as i32),
        ])?;
    }
    site.add_table(store);
    Ok(site)
}

fn main() -> Result<()> {
    let fed = Federation::new();

    // Two patient registries at different hospitals (different
    // latencies: one regional, one overseas).
    for (name, base, n, conditions) in [
        ("st_olav", 1000, 40, NetworkConditions::with_latency_ms(10)),
        (
            "mercy_general",
            2000,
            60,
            NetworkConditions::with_latency_ms(120),
        ),
    ] {
        let site = patients_site(name, base, n)?;
        fed.add_source(Arc::new(site) as Arc<dyn SourceAdapter>, conditions)?;
        // Map each site's registry to a global view with recoded sex.
        let export = fed
            .catalog()
            .resolve(Some(name), "patients")?
            .table
            .export_schema
            .clone();
        let _ = &export;
        fed.add_global_mapping(TableMapping {
            global_name: format!("patients_{name}"),
            source: name.into(),
            source_table: "patients".into(),
            columns: vec![
                ColumnMapping {
                    global: Field::required("patient_id", DataType::Int64),
                    source_column: "pid".into(),
                    transform: Transform::Identity,
                },
                ColumnMapping {
                    global: Field::new("surname", DataType::Utf8),
                    source_column: "surname".into(),
                    transform: Transform::Identity,
                },
                ColumnMapping {
                    global: Field::new("sex", DataType::Utf8),
                    source_column: "sex_code".into(),
                    transform: Transform::ValueMap(vec![
                        (Value::Int32(1), Value::Utf8("F".into())),
                        (Value::Int32(2), Value::Utf8("M".into())),
                    ]),
                },
                ColumnMapping {
                    global: Field::new("birth", DataType::Date),
                    source_column: "birth".into(),
                    transform: Transform::Identity,
                },
            ],
        })?;
    }

    // A shared lab system (columnar, scan-only).
    let lab = ColumnarAdapter::new("lab");
    let lab_schema = Schema::new(vec![
        Field::required("sample_id", DataType::Int64),
        Field::new("patient_id", DataType::Int64),
        Field::new("assay", DataType::Utf8),
        Field::new("value", DataType::Float64),
    ])
    .into_ref();
    let mut results = ColumnStore::new("results", lab_schema);
    for s in 0..800i64 {
        let pid = if s % 2 == 0 {
            1000 + s % 40
        } else {
            2000 + s % 60
        };
        results.append(vec![
            Value::Int64(s),
            Value::Int64(pid),
            Value::Utf8(["hba1c", "ldl", "crp"][(s % 3) as usize].into()),
            Value::Float64((s % 90) as f64 / 10.0),
        ])?;
    }
    lab.add_table(results);
    fed.add_source(
        Arc::new(lab) as Arc<dyn SourceAdapter>,
        NetworkConditions::with_latency_ms(5),
    )?;
    fed.add_global_identity("lab_results", "lab", "results")?;

    // The global patient view: a UNION over the sites.
    let union_view =
        "SELECT * FROM patients_st_olav UNION ALL SELECT * FROM patients_mercy_general";

    println!("== Patients per sex across all sites");
    let r = fed.query(&format!(
        "SELECT sex, count(*) AS n FROM ({union_view}) AS patients GROUP BY sex ORDER BY sex"
    ))?;
    println!("{}", r.batch.to_table());
    println!("   per-source traffic:\n{}", r.metrics);

    println!("== Elevated HbA1c by site (federated join, selective)");
    let sql = format!(
        "SELECT p.surname, l.value \
         FROM ({union_view}) AS p JOIN lab_results l ON p.patient_id = l.patient_id \
         WHERE l.assay = 'hba1c' AND l.value > 8.0 \
         ORDER BY l.value DESC LIMIT 8"
    );
    let r = fed.query(&sql)?;
    println!("{}", r.batch.to_table());
    println!("   {}", r.metrics.summary());

    // A site becomes unreachable: queries that need it fail loudly
    // (after transparent retries); queries that don't, keep working.
    println!("\n== Partitioning mercy_general…");
    let link = fed.source_link("mercy_general").expect("registered source");
    link.faults().partition();
    match fed.query("SELECT count(*) FROM patients_mercy_general") {
        Ok(_) => println!("   unexpected success"),
        Err(e) => println!("   query through the partition fails: {e}"),
    }
    let q_ok = fed.query("SELECT count(*) FROM patients_st_olav")?;
    println!(
        "   st_olav still answers: {} patients",
        q_ok.batch.row_values(0)[0]
    );
    link.faults().heal();
    let back = fed.query("SELECT count(*) FROM patients_mercy_general")?;
    println!(
        "   healed; mercy_general answers again: {} patients",
        back.batch.row_values(0)[0]
    );
    Ok(())
}
