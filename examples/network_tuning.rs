//! Network sensitivity walkthrough: the same federated join executed
//! under different WAN conditions, showing how the cost-based planner
//! flips between strategies as latency grows — the intuition behind
//! experiment F3.
//!
//! ```sh
//! cargo run --example network_tuning
//! ```

use gis::prelude::*;

fn main() -> Result<()> {
    println!("latency_ms  strategy_auto_picked  bytes      msgs   net_ms");
    for latency_ms in [0u64, 1, 10, 40, 100, 400] {
        // Rebuild the federation with the new conditions (links are
        // fixed at registration, as in a real deployment).
        let fm = build_fedmart(FedMartConfig {
            scale: 0.5,
            conditions: if latency_ms == 0 {
                NetworkConditions::lan()
            } else {
                NetworkConditions::with_latency_ms(latency_ms)
            },
            ..FedMartConfig::default()
        })?;
        let fed = &fm.federation;
        let sql = "SELECT c.name, o.amount \
                   FROM customers c JOIN orders o ON c.id = o.cust_id \
                   WHERE c.balance > 45000.0";
        // What did Auto pick? Inspect the physical plan.
        let plan = fed.explain(sql)?;
        let picked = if plan.contains("BindJoin[semijoin") {
            "semijoin"
        } else if plan.contains("BindJoin[bind-join") {
            "bind-join"
        } else {
            "ship-whole"
        };
        let r = fed.query(sql)?;
        println!(
            "{:>10}  {:<20} {:<10} {:<6} {:.1}",
            latency_ms,
            picked,
            r.metrics.bytes_shipped,
            r.metrics.messages,
            r.metrics.virtual_network_ms()
        );
    }
    println!("\nLow latency favors chatty strategies that ship fewer bytes;");
    println!("high latency favors few-message strategies even when they ship more.");
    Ok(())
}
