//! Offline stand-in for the `criterion` crate.
//!
//! Provides the group/bench API surface the workspace's benches use
//! — `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`
//! — over a deliberately simple measurement loop: warm up briefly,
//! time `sample_size` samples of an adaptively sized batch, and print
//! median / min / mean per iteration (plus throughput when declared).
//! No statistics machinery, no HTML reports; the point is that
//! `cargo bench` runs and prints comparable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, scaling the printed rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// An id distinguished by `parameter` alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-iteration times of the collected samples.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for ~2ms per sample so fast
        // bodies are timed over many iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1_000_000 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / f64::from(warm_iters.max(1));
        let batch = ((0.002 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000) as u32;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.results.push(start.elapsed() / batch);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.results);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.results);
        self
    }

    fn report(&self, id: &str, results: &[Duration]) {
        if results.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = results.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let rate = self.throughput.map(|t| {
            let per_sec = match t {
                Throughput::Bytes(n) => (n as f64 / median.as_secs_f64(), "B/s"),
                Throughput::Elements(n) => (n as f64 / median.as_secs_f64(), "elem/s"),
            };
            match per_sec {
                (r, u) if r >= 1e9 => format!("  ({:.2} G{u})", r / 1e9),
                (r, u) if r >= 1e6 => format!("  ({:.2} M{u})", r / 1e6),
                (r, u) if r >= 1e3 => format!("  ({:.2} K{u})", r / 1e3),
                (r, u) => format!("  ({r:.1} {u})"),
            }
        });
        println!(
            "{}/{id}: median {} /iter (min {}){}",
            self.name,
            fmt_duration(median),
            fmt_duration(min),
            rate.unwrap_or_default(),
        );
    }

    /// Ends the group (printing is per-bench; nothing buffered).
    pub fn finish(&mut self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.benchmark_group(label.clone()).bench_function("", f);
        self
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0;
        g.bench_function("count", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
