//! A multi-producer multi-consumer channel with (a subset of) the
//! `crossbeam-channel` API: `bounded`, `unbounded`, cloneable senders
//! *and receivers*, `try_send` for fast-fail admission control, and
//! timeout-aware receives.
//!
//! Implementation: one mutex-guarded `VecDeque` plus two condvars
//! (not-empty / not-full). Disconnection follows crossbeam semantics:
//! a channel is closed when all senders or all receivers have been
//! dropped; pending messages remain receivable after the last sender
//! goes away.

#![allow(clippy::type_complexity)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `usize::MAX` means unbounded.
    capacity: usize,
}

/// Creates a channel with a queue bound of `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(cap)
}

/// Creates a channel with no queue bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// The sending half; clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends, blocking while a bounded queue is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(value);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).unwrap();
        }
    }

    /// Sends without blocking; fails fast when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message or disconnection.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A draining iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// A monotonically increasing id source, handy for naming consumers.
#[derive(Debug, Default)]
pub struct TicketCounter(AtomicUsize);

impl TicketCounter {
    /// Next id.
    pub fn next(&self) -> usize {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded::<usize>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_try_send_fails_fast() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn drained_after_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
