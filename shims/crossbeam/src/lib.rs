//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! two pieces the workspace uses:
//!
//! * [`thread::scope`] — crossbeam's scoped-thread API, implemented
//!   over `std::thread::scope` (stable since 1.63).
//! * [`channel`] — a multi-producer **multi-consumer** channel
//!   (bounded or unbounded), implemented with a mutex-guarded deque
//!   and condvars. `std::sync::mpsc` is single-consumer, which is not
//!   enough for a worker pool, hence the hand-rolled queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod thread;
