//! Scoped threads with the `crossbeam::thread` calling convention.
//!
//! `crossbeam::thread::scope(|s| ...)` returns
//! `Result<R, Box<dyn Any + Send>>` and hands the closure a scope
//! whose `spawn` passes the scope back into the thread closure. Both
//! quirks are preserved so call sites written against real crossbeam
//! compile unchanged; the implementation rides on `std::thread::scope`.

use std::any::Any;
use std::thread as stdthread;

/// Error type carried out of a panicked scope (matches crossbeam's).
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, 'env, T> {
    inner: stdthread::ScopedJoinHandle<'scope, T>,
    _marker: std::marker::PhantomData<&'env ()>,
}

impl<'scope, 'env, T> ScopedJoinHandle<'scope, 'env, T> {
    /// Waits for the thread to finish, returning its result or the
    /// panic payload.
    pub fn join(self) -> Result<T, ScopeError> {
        self.inner.join()
    }
}

/// The spawning surface handed to the `scope` closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope stdthread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. As in crossbeam, the closure
    /// receives the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, 'env, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be
/// spawned; all spawned threads are joined before `scope` returns.
///
/// Unlike `std::thread::scope`, unjoined panicking children do not
/// abort the process here: `std` re-raises the first child panic,
/// which this wrapper converts into the `Err` crossbeam reports.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stdthread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len() as i32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let r = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
