//! Offline stand-in for the `rand` crate.
//!
//! Vendors the subset the workspace uses: the [`Rng`] / [`RngExt`] /
//! [`SeedableRng`] traits, uniform sampling over integer and float
//! ranges, and a deterministic [`rngs::StdRng`] (xoshiro256++ seeded
//! via SplitMix64). Determinism per seed is the property the datagen
//! crate depends on; statistical quality is plenty for workload
//! synthesis and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// A source of random bits.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its standard distribution
    /// (uniform over the type; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range sampling and coin flips (rand 0.10 splits these off the core
/// trait; a blanket impl covers every [`Rng`]).
pub trait RngExt: Rng {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// True with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng> RngExt for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// A deterministic generator derived from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their whole domain (floats: `[0,1)`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: i32 = rng.random_range(1..=3);
            assert!((1..=3).contains(&w));
            let u: usize = rng.random_range(0..7);
            assert!(u < 7);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket {c}");
        }
    }
}
