//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: `Mutex`
//! and `RwLock` with non-poisoning guards. Lock poisoning is handled
//! the way `parking_lot` handles it — a panicking thread simply
//! releases the lock — by unwrapping into the inner guard and mapping
//! poison errors to the recovered guard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive with the `parking_lot` API: `lock()`
/// returns the guard directly (no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the `parking_lot` API: `read()`/`write()`
/// return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
