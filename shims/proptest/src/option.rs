//! Option strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::RngExt;

/// Produces `None` about a quarter of the time, otherwise
/// `Some(inner)` — mirroring proptest's default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
        if runner.rng().random_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(runner))
        }
    }
}
