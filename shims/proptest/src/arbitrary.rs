//! `any::<T>()` — whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::{Rng, RngExt};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng().random()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                // Bias toward small magnitudes and boundary values:
                // uniform 64-bit draws almost never produce the
                // off-by-one cases integer code tends to break on.
                let rng = runner.rng();
                match rng.random_range(0..8u32) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 | 4 => (rng.next_u64() % 256) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        let rng = runner.rng();
        match rng.random_range(0..8u32) {
            0 => 0.0,
            1 => f64::NAN,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => -0.0,
            // Any bit pattern at all.
            5 => f64::from_bits(rng.next_u64()),
            _ => (rng.random::<f64>() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(runner: &mut TestRunner) -> f32 {
        f64::arbitrary(runner) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(runner: &mut TestRunner) -> char {
        crate::string::arbitrary_char(runner)
    }
}

impl Arbitrary for String {
    fn arbitrary(runner: &mut TestRunner) -> String {
        crate::string::generate_matching(".*", runner)
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(runner: &mut TestRunner) -> Option<T> {
        if runner.rng().random_bool(0.25) {
            None
        } else {
            Some(T::arbitrary(runner))
        }
    }
}

impl<T: Arbitrary, U: Arbitrary> Arbitrary for (T, U) {
    fn arbitrary(runner: &mut TestRunner) -> (T, U) {
        (T::arbitrary(runner), U::arbitrary(runner))
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(runner: &mut TestRunner) -> Vec<T> {
        let n = runner.rng().random_range(0..9usize);
        (0..n).map(|_| T::arbitrary(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_show_up() {
        let mut r = TestRunner::new("arbitrary-boundaries");
        let s = any::<i64>();
        let mut saw_min = false;
        let mut saw_max = false;
        for _ in 0..500 {
            match s.generate(&mut r) {
                i64::MIN => saw_min = true,
                i64::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_min && saw_max);
    }

    #[test]
    fn options_mix_none_and_some() {
        let mut r = TestRunner::new("arbitrary-options");
        let s = any::<Option<bool>>();
        let nones = (0..200).filter(|_| s.generate(&mut r).is_none()).count();
        assert!(nones > 10 && nones < 190);
    }
}
