//! The per-test runner: config, RNG, and case failure plumbing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Knobs for one `proptest!` block (only the subset we honor).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not
    /// implemented, so this is ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 128,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property (non-panicking path used by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Holds the RNG strategies draw from.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner seeded deterministically from the test name, or from
    /// `PROPTEST_SEED` when set (for reproducing a CI failure).
    pub fn new(test_name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0),
            Err(_) => {
                let mut h = DefaultHasher::new();
                test_name.hash(&mut h);
                h.finish()
            }
        };
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Convenience: next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
