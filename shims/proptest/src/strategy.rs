//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRunner;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with one strategy, then derives a second strategy
    /// from the value and samples it.
    fn prop_flat_map<O, S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy<Value = O>,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A boxed, object-safe strategy (what [`crate::prop_oneof!`] stores).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy, unifying heterogeneous combinator types.
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        (**self).generate(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// A uniform choice among boxed sub-strategies.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let i = runner.rng().random_range(0..self.arms.len());
        self.arms[i].generate(runner)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as generator regexes (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        crate::string::generate_matching(self, runner)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        TestRunner::new("strategy-tests")
    }

    #[test]
    fn ranges_maps_unions() {
        let mut r = runner();
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
        let u = crate::prop_oneof![Just(1u32), Just(2u32), 5u32..8];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut r));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.iter().any(|v| *v >= 5));
    }

    #[test]
    fn tuples_and_flat_map() {
        let mut r = runner();
        let t = (0u8..5, Just("x")).prop_flat_map(|(n, _)| 0usize..(n as usize + 1));
        for _ in 0..50 {
            assert!(t.generate(&mut r) < 5);
        }
    }
}
