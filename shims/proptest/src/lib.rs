//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! strategy combinators and macros the workspace's property tests
//! use: `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `any`, `Just`, ranges and string regexes as strategies,
//! `collection::vec`, and `option::of`.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases
//! from a seed derived deterministically from the test name (override
//! with `PROPTEST_SEED`). There is **no shrinking** — a failing case
//! reports its inputs and panics — which keeps the runner ~200 lines
//! while preserving the bug-finding power the suite relies on.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut runner);)+
                let inputs = format!("{:?}", ($(&$arg),+,));
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest '{}' case {case}/{} failed: {e}\n  inputs: {inputs}",
                        stringify!($name),
                        config.cases,
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest '{}' case {case}/{} panicked\n  inputs: {inputs}",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Fails the current case (with an optional format message) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// A strategy choosing uniformly among the listed sub-strategies
/// (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
