//! A tiny generator-regex interpreter for string strategies.
//!
//! `"c_[a-z]{0,3}"` as a strategy produces strings matching that
//! pattern. Supported syntax — the subset the workspace's tests use,
//! plus the obvious neighbors: literal characters, `.` (any char),
//! `[a-z0-9_]` classes (ranges and singletons), and the repeaters
//! `*`, `+`, `?`, `{n}`, `{m,n}`, `{m,}` (unbounded tops are capped
//! at +8). Anything else is treated as a literal character.

use crate::test_runner::TestRunner;
use rand::RngExt;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or(chars.len());
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().unwrap_or(0);
                        let hi = hi.trim().parse().unwrap_or(lo + 8);
                        (lo, hi.max(lo))
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// An arbitrary Unicode scalar, biased toward printable ASCII (15%
/// of draws roam the whole scalar space to keep multi-byte encodings
/// and ordering edge cases in play).
pub fn arbitrary_char(runner: &mut TestRunner) -> char {
    let rng = runner.rng();
    if rng.random_bool(0.85) {
        char::from_u32(rng.random_range(0x20..0x7Fu32)).unwrap()
    } else {
        loop {
            if let Some(c) = char::from_u32(rng.random_range(0..0x11_0000u32)) {
                return c;
            }
        }
    }
}

fn gen_atom(atom: &Atom, runner: &mut TestRunner) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => arbitrary_char(runner),
        Atom::Class(ranges) => {
            let i = runner.rng().random_range(0..ranges.len());
            let (lo, hi) = ranges[i];
            char::from_u32(runner.rng().random_range(lo as u32..=hi as u32)).unwrap_or(lo)
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, runner: &mut TestRunner) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = runner.rng().random_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(gen_atom(&piece.atom, runner));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_prefix_and_class_repeat() {
        let mut r = TestRunner::new("regex-strings");
        for _ in 0..200 {
            let s = generate_matching("c_[a-z]{0,3}", &mut r);
            assert!(s.starts_with("c_"), "{s:?}");
            let tail = &s[2..];
            assert!(tail.len() <= 3 && tail.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn dot_star_varies() {
        let mut r = TestRunner::new("regex-dotstar");
        let distinct: std::collections::HashSet<String> =
            (0..100).map(|_| generate_matching(".*", &mut r)).collect();
        assert!(distinct.len() > 20);
    }

    #[test]
    fn bounded_repeat_range() {
        let mut r = TestRunner::new("regex-bounds");
        for _ in 0..100 {
            let s = generate_matching("t_[a-z]{1,5}", &mut r);
            assert!((3..=7).contains(&s.len()), "{s:?}");
        }
    }
}
