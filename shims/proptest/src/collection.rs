//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// An element-count range for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// A strategy producing vectors whose elements come from `element`
/// and whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let n = runner.rng().random_range(self.size.min..=self.size.max);
        (0..n).map(|_| self.element.generate(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_bounds() {
        let mut r = TestRunner::new("collection-vec");
        let s = vec(Just(7u8), 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
