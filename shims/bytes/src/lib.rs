//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an `Arc<[u8]>` plus a window, so clones and
//! [`Bytes::slice`] are O(1) and allocation-free — the property the
//! wire format relies on when response chunks share one buffer.
//! [`BytesMut`] is a growable buffer that freezes into [`Bytes`].
//! The [`Buf`]/[`BufMut`] traits carry exactly the accessor set the
//! workspace's encoders use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer over a static slice (copied once; the real crate
    /// borrows, but callers only rely on the value semantics).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Bytes remaining in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-window. `range` is relative to `self`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Splits off everything written so far, leaving `self` empty but
    /// holding equivalent capacity — the scratch-buffer reuse pattern
    /// encode loops rely on to avoid re-growing per frame.
    pub fn split(&mut self) -> BytesMut {
        let mut written = Vec::with_capacity(self.data.capacity());
        std::mem::swap(&mut self.data, &mut written);
        BytesMut { data: written }
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics when out of range.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics when exhausted (callers bound-check via
    /// `remaining`, matching the real crate's contract).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        i32::from_le_bytes(raw)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies the next `len` bytes out as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append access to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_i32_le(-5);
        w.put_i64_le(1 << 40);
        w.put_f64_le(2.5);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 2.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_storage_and_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(&s.slice(1..)[..], &[2, 3]);
        let mut c = s.clone();
        assert_eq!(c.copy_to_bytes(2), Bytes::from(vec![1, 2]));
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
