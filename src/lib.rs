//! # gis — a Global Information System
//!
//! A from-scratch Rust federated query engine in the spirit of
//! Kameny's ICDE 1989 vision paper *Global Information System
//! Issues*: one **global schema**, many **autonomous component
//! information systems**, and a mediator that decomposes SQL into
//! per-source fragments, ships as little as possible across a (here:
//! simulated, metered) wide-area network, and integrates the results.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`types`] | `gis-types` | values, arrays, schemas, batches |
//! | [`sql`] | `gis-sql` | lexer, parser, AST, unparser |
//! | [`catalog`] | `gis-catalog` | global schema, mappings, capabilities |
//! | [`storage`] | `gis-storage` | row store, column store, KV store |
//! | [`net`] | `gis-net` | simulated WAN, wire format, fault injection |
//! | [`observe`] | `gis-observe` | operator spans, EXPLAIN ANALYZE trees, metrics text |
//! | [`adapters`] | `gis-adapters` | source wrappers + fragment protocol |
//! | [`core`] | `gis-core` | binder, optimizer, executor, federation façade |
//! | [`views`] | `gis-views` | materialized views, staleness tracking, refresh policies |
//! | [`runtime`] | `gis-runtime` | sessions, scheduling, plan/result caches |
//! | [`datagen`] | `gis-datagen` | deterministic FedMart workloads |
//!
//! ## Quickstart
//!
//! ```
//! use gis::prelude::*;
//!
//! // A ready-made three-source federation with a retail workload.
//! let fm = gis::datagen::build_fedmart(FedMartConfig::tiny()).unwrap();
//! let result = fm
//!     .federation
//!     .query(
//!         "SELECT c.region, count(*) AS orders, sum(o.amount) AS revenue \
//!          FROM customers c JOIN orders o ON c.id = o.cust_id \
//!          GROUP BY c.region ORDER BY revenue DESC LIMIT 3",
//!     )
//!     .unwrap();
//! println!("{}", result.batch.to_table());
//! println!("shipped {} bytes in {} messages", result.metrics.bytes_shipped,
//!          result.metrics.messages);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gis_adapters as adapters;
pub use gis_catalog as catalog;
pub use gis_core as core;
pub use gis_datagen as datagen;
pub use gis_net as net;
pub use gis_observe as observe;
pub use gis_runtime as runtime;
pub use gis_sql as sql;
pub use gis_storage as storage;
pub use gis_types as types;
pub use gis_views as views;

/// The most common imports for downstream users.
pub mod prelude {
    pub use gis_adapters::{
        ColumnarAdapter, KvAdapter, RelationalAdapter, SourceAdapter, SourceGroup,
    };
    pub use gis_catalog::{CapabilityProfile, ColumnMapping, TableMapping, Transform};
    pub use gis_core::{
        DegradedReport, ExecOptions, Federation, JoinStrategy, OptimizerOptions, QueryMetrics,
        QueryResult,
    };
    pub use gis_datagen::{build_fedmart, FedMart, FedMartConfig};
    pub use gis_net::{BreakerConfig, BreakerState, NetworkConditions, RetryPolicy};
    pub use gis_observe::Span;
    pub use gis_runtime::{Priority, Runtime, RuntimeConfig, Session};
    pub use gis_storage::{ColumnStore, KvStore, RowStore};
    pub use gis_types::{Batch, DataType, Field, GisError, Result, Schema, Value};
    pub use gis_views::{RefreshPolicy, Staleness, ViewGauges};
}
